#!/usr/bin/env python
"""CI benchmark-regression gate.

Compares a fresh pytest-benchmark JSON report against the committed
``benchmarks/baseline.json`` and fails (exit code 1) when the median runtime
of any tracked benchmark *group* regresses by more than the threshold
(default 30 %).  Groups are the ``@pytest.mark.benchmark(group=...)`` labels;
comparing group medians (the median of each member benchmark's median)
rather than individual benchmarks keeps the gate robust to single-test noise
on shared CI runners.

Usage::

    python benchmarks/check_regression.py benchmark-results.json \
        benchmarks/baseline.json [--threshold 1.30]

Overriding
----------
A genuine, accepted slow-down (or a runner-hardware change) is recorded by
refreshing the baseline: download the ``benchmark-results`` artifact from the
CI run, trim it with ``--write-baseline``, and commit it::

    python benchmarks/check_regression.py benchmark-results.json \
        benchmarks/baseline.json --write-baseline

To merge a PR before the baseline refresh lands, apply the
``benchmark-override`` label to the pull request — CI skips this gate when
the label is present (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def group_medians(report: dict) -> dict:
    """Median-of-medians runtime per benchmark group, in seconds."""
    per_group: dict = {}
    for bench in report.get("benchmarks", []):
        group = bench.get("group")
        if group is None:
            continue
        per_group.setdefault(group, []).append(bench["stats"]["median"])
    return {group: statistics.median(values) for group, values in per_group.items()}


def trim_report(report: dict) -> dict:
    """Reduce a pytest-benchmark report to what the gate needs.

    Keeping only names, groups and median stats makes the committed baseline
    small and its diffs reviewable.
    """
    return {
        "machine_info": {
            key: report.get("machine_info", {}).get(key)
            for key in ("node", "processor", "machine", "python_version")
        },
        "benchmarks": [
            {
                "name": bench["name"],
                "group": bench.get("group"),
                "stats": {"median": bench["stats"]["median"]},
            }
            for bench in report.get("benchmarks", [])
            if bench.get("group") is not None
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="fresh pytest-benchmark JSON")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.30,
        help="maximum allowed result/baseline group-median ratio (default 1.30)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="trim the results file into a new baseline instead of comparing",
    )
    args = parser.parse_args(argv)

    results = json.loads(args.results.read_text())
    if args.write_baseline:
        args.baseline.write_text(json.dumps(trim_report(results), indent=2) + "\n")
        print(f"baseline refreshed: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    current = group_medians(results)
    reference = group_medians(baseline)

    failures = []
    width = max((len(group) for group in reference), default=5)
    print(f"{'group'.ljust(width)}  {'baseline':>12}  {'current':>12}  {'ratio':>7}")
    for group in sorted(reference):
        if group not in current:
            failures.append(f"tracked group '{group}' missing from the results")
            continue
        ratio = current[group] / reference[group]
        flag = "  <-- REGRESSION" if ratio > args.threshold else ""
        print(
            f"{group.ljust(width)}  {reference[group] * 1e3:>10.2f}ms  "
            f"{current[group] * 1e3:>10.2f}ms  {ratio:>6.2f}x{flag}"
        )
        if ratio > args.threshold:
            failures.append(
                f"group '{group}' regressed {ratio:.2f}x "
                f"(limit {args.threshold:.2f}x)"
            )
    for group in sorted(set(current) - set(reference)):
        print(f"{group.ljust(width)}  (untracked — add it to the baseline)")

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "\nIf the slow-down is intended, refresh benchmarks/baseline.json "
            "(--write-baseline) or apply the 'benchmark-override' PR label.",
            file=sys.stderr,
        )
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
