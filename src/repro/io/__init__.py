"""Serialisation of compressed frames for transmission and storage.

The motivating application of the paper is a camera node that delivers images
"over a network under a restricted data rate".  This package provides the
bit-level plumbing that such a node needs: packing the 20-bit compressed
samples into a byte stream, framing them together with the CA seed and the
handful of parameters the receiver requires, and parsing the stream back on
the other side.  The live-streaming layers (chunked wire protocol, asyncio
camera node and incremental receiver) build on this package from
:mod:`repro.stream`.
"""

from repro.io.bitstream import BitReader, BitWriter, pack_samples, unpack_samples
from repro.io.framing import (
    BadMagicError,
    FrameHeader,
    FramingError,
    HeaderMismatchError,
    TruncatedPayloadError,
    UnsupportedVersionError,
    decode_frame,
    encode_frame,
    encoded_size_bits,
    frame_overhead_bits,
)

__all__ = [
    "BitWriter",
    "BitReader",
    "pack_samples",
    "unpack_samples",
    "FrameHeader",
    "encode_frame",
    "decode_frame",
    "encoded_size_bits",
    "frame_overhead_bits",
    "FramingError",
    "TruncatedPayloadError",
    "BadMagicError",
    "UnsupportedVersionError",
    "HeaderMismatchError",
]
