"""Tests for the Eq. (2) sample-rate analysis and the overlap Monte-Carlo."""

import pytest

from repro.analysis.frame_rate import (
    compressed_sample_rate,
    max_compression_ratio,
    sample_rate_table,
    simulate_overlap_probability,
)
from repro.sensor.config import SensorConfig


class TestCompressedSampleRate:
    def test_prototype_operating_point(self):
        """Eq. (2): 0.4 * 64 * 64 * 30 fps ≈ 49.2 kHz (paper: ≈50 kHz)."""
        rate = compressed_sample_rate(64, 64, 30.0, 0.4)
        assert rate == pytest.approx(49152.0)

    def test_linear_in_each_factor(self):
        base = compressed_sample_rate(64, 64, 30.0, 0.2)
        assert compressed_sample_rate(64, 64, 60.0, 0.2) == pytest.approx(2 * base)
        assert compressed_sample_rate(64, 64, 30.0, 0.4) == pytest.approx(2 * base)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            compressed_sample_rate(64, 64, 30.0, 1.0)

    def test_max_compression_ratio_matches_config(self):
        assert max_compression_ratio(8, 64, 64) == pytest.approx(
            SensorConfig().max_compression_ratio
        )


class TestSampleRateTable:
    def test_contains_prototype_row(self):
        table = sample_rate_table()
        row = next(
            r
            for r in table
            if r["rows"] == 64 and r["frame_rate_fps"] == 30.0 and r["compression_ratio"] == 0.4
        )
        assert row["compressed_sample_rate_hz"] == pytest.approx(49152.0)
        assert row["sample_period_us"] == pytest.approx(20.3, rel=0.02)

    def test_table_size(self):
        table = sample_rate_table(
            frame_rates=(30.0,), compression_ratios=(0.1, 0.4), array_sizes=((64, 64),)
        )
        assert len(table) == 2


class TestOverlapMonteCarlo:
    def test_matches_analytic_pairwise_estimate(self):
        config = SensorConfig()
        simulated = simulate_overlap_probability(
            64, config.event_duration, config.conversion_time, n_trials=4000, seed=1
        )
        analytic = config.event_overlap_probability(64)
        assert simulated["p_event_overlaps"] == pytest.approx(analytic, rel=0.35)

    def test_paper_order_of_magnitude(self):
        """The paper quotes ~6.25 % for 64 events of 5 ns."""
        config = SensorConfig()
        simulated = simulate_overlap_probability(
            64, 5e-9, config.conversion_time, n_trials=4000, seed=2
        )
        assert 0.02 < simulated["p_event_overlaps"] < 0.12

    def test_longer_events_overlap_more(self):
        short = simulate_overlap_probability(32, 5e-9, 10e-6, n_trials=1500, seed=3)
        long = simulate_overlap_probability(32, 50e-9, 10e-6, n_trials=1500, seed=3)
        assert long["p_any_overlap"] > short["p_any_overlap"]

    def test_single_event_never_overlaps(self):
        result = simulate_overlap_probability(1, 5e-9, 10e-6, n_trials=200, seed=4)
        assert result["p_any_overlap"] == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_overlap_probability(0, 5e-9, 10e-6)
