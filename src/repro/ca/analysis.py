"""Statistical analysis of CA-generated sequences.

The paper relies on Rule 30 displaying *class III* (aperiodic, chaotic)
behaviour [Jen 1990] so that the selection patterns it produces behave like
i.i.d. Bernoulli(1/2) draws for the purposes of compressive sampling.  These
functions quantify that: cycle length of the register state, bit balance,
block entropy and autocorrelation of the generated streams.  The Fig. 3 / E5
benchmark uses them to contrast Rule 30 with structured rules (90, 184).
"""

from __future__ import annotations


import numpy as np

from repro.ca.automaton import ElementaryCellularAutomaton


def detect_cycle(
    automaton: ElementaryCellularAutomaton, max_steps: int
) -> tuple[int, int] | None:
    """Detect a state cycle within ``max_steps`` updates.

    Returns ``(tail, period)`` — the number of steps before the cycle is
    entered and the cycle length — or ``None`` if no repeat is observed
    within ``max_steps``.  A finite register always cycles eventually; the
    point of the class-III argument is that the cycle is astronomically long
    compared with the number of compressed samples per frame.
    """
    if max_steps <= 0:
        raise ValueError(f"max_steps must be positive, got {max_steps}")
    seen: dict[bytes, int] = {automaton.state.tobytes(): 0}
    for step in range(1, max_steps + 1):
        key = automaton.step().tobytes()
        if key in seen:
            first = seen[key]
            return first, step - first
        seen[key] = step
    return None


def bit_balance(bits: np.ndarray) -> float:
    """Fraction of ones in a bit array (0.5 for a balanced source)."""
    bits = np.asarray(bits)
    if bits.size == 0:
        raise ValueError("bit_balance requires a non-empty array")
    return float(np.count_nonzero(bits) / bits.size)


def sequence_entropy(bits: np.ndarray, block_length: int = 4) -> float:
    """Shannon entropy per bit of non-overlapping ``block_length``-bit words.

    A perfectly random source scores 1.0; periodic or heavily structured
    streams score lower.
    """
    bits = np.asarray(bits).astype(np.uint8).ravel()
    if block_length <= 0:
        raise ValueError(f"block_length must be positive, got {block_length}")
    n_blocks = bits.size // block_length
    if n_blocks == 0:
        raise ValueError(
            f"need at least {block_length} bits, got {bits.size}"
        )
    trimmed = bits[: n_blocks * block_length].reshape(n_blocks, block_length)
    powers = 1 << np.arange(block_length - 1, -1, -1)
    words = trimmed @ powers
    counts = np.bincount(words, minlength=1 << block_length).astype(float)
    probabilities = counts[counts > 0] / n_blocks
    entropy_bits = -np.sum(probabilities * np.log2(probabilities))
    return float(entropy_bits / block_length)


def spatial_entropy(space_time: np.ndarray, block_length: int = 4) -> float:
    """Average per-row block entropy of a space-time diagram."""
    space_time = np.asarray(space_time)
    if space_time.ndim != 2:
        raise ValueError("space_time must be a 2-D array (steps x cells)")
    return float(
        np.mean([sequence_entropy(row, block_length) for row in space_time])
    )


def temporal_autocorrelation(bits: np.ndarray, max_lag: int = 32) -> np.ndarray:
    """Normalised autocorrelation of a ±1-mapped bit stream for lags 1..max_lag.

    For a good pseudo-random stream every off-zero lag is close to 0; strong
    peaks reveal periodicity.
    """
    bits = np.asarray(bits, dtype=float).ravel()
    if bits.size <= max_lag:
        raise ValueError(
            f"need more than max_lag={max_lag} bits, got {bits.size}"
        )
    signal = 2.0 * bits - 1.0
    signal -= signal.mean()
    denom = float(np.dot(signal, signal))
    if denom == 0.0:
        return np.zeros(max_lag)
    correlations = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        correlations[lag - 1] = float(np.dot(signal[:-lag], signal[lag:]) / denom)
    return correlations


def run_length_histogram(bits: np.ndarray, max_length: int = 16) -> np.ndarray:
    """Histogram of run lengths (of both zeros and ones), clipped at ``max_length``.

    For an i.i.d. Bernoulli(1/2) stream the expected frequency of runs of
    length ``k`` decays as ``2**-k``.
    """
    bits = np.asarray(bits).astype(np.uint8).ravel()
    if bits.size == 0:
        raise ValueError("run_length_histogram requires a non-empty array")
    histogram = np.zeros(max_length, dtype=np.int64)
    run = 1
    for previous, current in zip(bits[:-1], bits[1:]):
        if current == previous:
            run += 1
        else:
            histogram[min(run, max_length) - 1] += 1
            run = 1
    histogram[min(run, max_length) - 1] += 1
    return histogram


def classify_behaviour(
    rule_number: int,
    n_cells: int = 128,
    n_steps: int = 2048,
    seed: int = 2018,
) -> dict[str, float]:
    """Summary statistics used to argue a rule's Wolfram class empirically.

    Returns bit balance, block entropy, maximum |autocorrelation| of the
    centre column and whether a cycle shorter than ``n_steps`` was found.
    """
    automaton = ElementaryCellularAutomaton(n_cells, rule_number, seed=seed)
    cycle = detect_cycle(
        ElementaryCellularAutomaton(n_cells, rule_number, seed=seed), n_steps
    )
    automaton.reset()
    center_bits = automaton.center_column(n_steps)
    correlations = temporal_autocorrelation(center_bits, max_lag=min(64, n_steps // 4))
    return {
        "rule": float(rule_number),
        "balance": bit_balance(center_bits),
        "entropy": sequence_entropy(center_bits, block_length=4),
        "max_autocorrelation": float(np.max(np.abs(correlations))),
        "cycle_found": float(cycle is not None),
        "cycle_period": float(cycle[1]) if cycle is not None else float("nan"),
    }
