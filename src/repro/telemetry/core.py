"""The ``Telemetry`` facade: one object wiring clock + registry + tracer.

Instrumented code takes ``telemetry: Telemetry | None = None`` and guards
every touch with ``if telemetry is not None`` — ``None`` (the default) is
the zero-cost path, a single identity check that the telemetry benchmark
pins below 2% overhead.  A constructed-but-disabled facade
(``Telemetry(enabled=False)``) additionally turns every recording method
into an early return, so a fleet can keep one wired object and flip
instrumentation without re-plumbing.

One facade spans one pipeline: pass the *same* object to the nodes and the
hub of a loopback fleet so the node-side halves of a frame trace (capture,
encode, transport-begin) join the hub-side halves (transport-end, decode,
queue-wait, solve) on one clock.
"""

from __future__ import annotations

from repro.telemetry.clock import MONOTONIC_CLOCK, Clock
from repro.telemetry.profile import SolverProfile
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.trace import FrameTracer

__all__ = ["STAGE_SECONDS", "Telemetry", "active"]

#: Histogram fed by every completed trace span, labelled ``{stage=...}``.
STAGE_SECONDS = "repro_stage_seconds"


class Telemetry:
    """Clock, metrics registry and frame tracer behind one enable switch."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        tracer: FrameTracer | None = None,
        max_trace_frames: int = 1024,
    ) -> None:
        self.enabled = enabled
        self.clock: Clock = clock if clock is not None else MONOTONIC_CLOCK
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else FrameTracer(clock=self.clock, max_frames=max_trace_frames)
        )
        self._stage_histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ span seam
    def _stage_histogram(self, stage: str) -> Histogram:
        histogram = self._stage_histograms.get(stage)
        if histogram is None:
            histogram = self.registry.histogram(
                STAGE_SECONDS,
                bounds=DEFAULT_LATENCY_BUCKETS,
                labels={"stage": stage},
                help="Seconds each frame spent in a pipeline stage.",
            )
            self._stage_histograms[stage] = histogram
        return histogram

    def begin_span(self, stream_id: int, frame_index: int, stage: str) -> None:
        """Open stage ``stage`` for a frame (no-op while disabled)."""
        if not self.enabled:
            return
        self.tracer.begin(stream_id, frame_index, stage)

    def end_span(self, stream_id: int, frame_index: int, stage: str) -> None:
        """Close a stage and feed its duration to the stage histogram.

        Ending a span whose begin this process never saw (the TCP transport
        half) is a silent no-op — nothing is observed.
        """
        if not self.enabled:
            return
        duration = self.tracer.end(stream_id, frame_index, stage)
        if duration is not None:
            self._stage_histogram(stage).observe(duration)

    def add_span(
        self, stream_id: int, frame_index: int, stage: str, start: float, end: float
    ) -> None:
        """Record an externally measured stage interval (e.g. per-GOP capture)."""
        if not self.enabled:
            return
        duration = self.tracer.add_span(stream_id, frame_index, stage, start, end)
        if duration is not None:
            self._stage_histogram(stage).observe(duration)

    # -------------------------------------------------------- profiling seam
    def solver_profile(self) -> SolverProfile | None:
        """A fresh profile when enabled, else ``None`` (solvers skip all work)."""
        return SolverProfile() if self.enabled else None

    # ------------------------------------------------------------- snapshots
    def metrics(self) -> MetricsSnapshot:
        """Collect the registry right now (collectors run first)."""
        return self.registry.collect()


def active(telemetry: Telemetry | None) -> Telemetry | None:
    """``telemetry`` when it is present *and* enabled, else ``None``.

    Collapses the two-level guard at instrumentation sites to one truthy
    check::

        tel = active(self._telemetry)
        if tel is not None:
            tel.begin_span(stream_id, frame_index, SPAN_DECODE)
    """
    if telemetry is not None and telemetry.enabled:
        return telemetry
    return None
