"""Tests for the ablation-study helpers."""

import pytest

from repro.analysis.ablation import (
    ablate_ca_rule,
    ablate_dictionary,
    ablate_event_duration,
    ablate_pixel_depth,
    ablate_steps_per_sample,
)


class TestAblateCaRule:
    def test_rule30_is_at_least_as_good_as_degenerate_rules(self):
        rows = ablate_ca_rule(rules=(30, 184), image_shape=(16, 16), max_iterations=80, seed=1)
        by_rule = {row["rule"]: row for row in rows}
        assert by_rule[30]["psnr_db"] >= by_rule[184]["psnr_db"] - 0.5
        # Rule 184 recycles patterns quickly; Rule 30 does not.
        assert by_rule[30]["distinct_rows"] >= by_rule[184]["distinct_rows"]

    def test_row_fields(self):
        rows = ablate_ca_rule(rules=(30,), image_shape=(16, 16), max_iterations=40, seed=2)
        assert set(rows[0]) == {"rule", "psnr_db", "distinct_rows", "n_samples"}


class TestAblateStepsPerSample:
    def test_extra_mixing_changes_little(self):
        rows = ablate_steps_per_sample((1, 4), image_shape=(16, 16), max_iterations=80, seed=3)
        psnrs = [row["psnr_db"] for row in rows]
        assert abs(psnrs[0] - psnrs[1]) < 6.0

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            ablate_steps_per_sample((0,), image_shape=(16, 16))


class TestAblatePixelDepth:
    def test_sample_bits_follow_eq1(self):
        rows = ablate_pixel_depth((6, 8), rows=16, cols=16, max_iterations=40, seed=4)
        by_depth = {row["pixel_bits"]: row for row in rows}
        assert by_depth[6]["sample_bits"] == 6 + 8
        assert by_depth[8]["sample_bits"] == 8 + 8
        assert by_depth[8]["bits_per_frame"] > by_depth[6]["bits_per_frame"]

    def test_reports_both_quality_domains(self):
        rows = ablate_pixel_depth((8,), rows=16, cols=16, max_iterations=40, seed=5)
        assert "psnr_code_domain_db" in rows[0]
        assert "psnr_normalised_db" in rows[0]


class TestAblateEventDuration:
    def test_longer_events_queue_more(self):
        rows = ablate_event_duration((1e-9, 80e-9), n_events=32, n_trials=60, seed=6)
        assert rows[1]["queued_fraction"] >= rows[0]["queued_fraction"]
        assert rows[1]["max_queue_delay_ns"] >= rows[0]["max_queue_delay_ns"]

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            ablate_event_duration((0.0,))


class TestAblateDictionary:
    def test_dct_wins_on_smooth_scene_identity_wins_on_points(self):
        rows = ablate_dictionary(
            dictionaries=("dct", "identity"),
            image_shape=(16, 16),
            scene_kinds=("blobs", "points"),
            max_iterations=100,
            seed=7,
        )
        table = {(row["scene"], row["dictionary"]): row["psnr_db"] for row in rows}
        assert table[("blobs", "dct")] > table[("blobs", "identity")]
        assert table[("points", "identity")] > table[("points", "dct")] - 3.0
