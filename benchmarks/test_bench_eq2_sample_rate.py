"""E7 — Eq. (2): compressed-sample rate and the event-overlap estimate.

Regenerates the ``f_cs = R * M * N * f_s`` design table, checks the
prototype's ≈50 kHz / 20 µs operating point, and reproduces the worked
example of Section III-B: with 5 ns events and 64 selected pixels per column
there is a ~6 % chance that a given event overlaps another — the reason the
token protocol exists.
"""

import pytest

from benchmarks.conftest import print_table
from repro.analysis.frame_rate import (
    compressed_sample_rate,
    sample_rate_table,
    simulate_overlap_probability,
)
from repro.sensor.config import SensorConfig


def test_eq2_sample_rate_table(benchmark):
    table = benchmark(sample_rate_table)
    rows = [r for r in table if (r["rows"], r["cols"]) == (64, 64) and r["frame_rate_fps"] == 30.0]
    print_table("Eq. (2) — compressed-sample rate (64x64, 30 fps)", rows)

    prototype = next(r for r in rows if r["compression_ratio"] == 0.4)
    assert prototype["compressed_sample_rate_hz"] == pytest.approx(49152.0)
    assert prototype["sample_period_us"] == pytest.approx(20.3, rel=0.02)
    # Linearity in R across the table.
    low = next(r for r in rows if r["compression_ratio"] == 0.1)
    assert prototype["compressed_sample_rate_hz"] == pytest.approx(
        4 * low["compressed_sample_rate_hz"]
    )


def test_eq2_operating_point_scaling(benchmark):
    """f_cs grows linearly with array area and frame rate."""
    rate = benchmark(compressed_sample_rate, 128, 128, 30.0, 0.4)
    assert rate == pytest.approx(4 * compressed_sample_rate(64, 64, 30.0, 0.4))


def test_eq2_event_overlap_probability(benchmark):
    """The paper's 6.25 % overlap estimate (5 ns events, 64 pixels per column)."""
    config = SensorConfig()

    simulated = benchmark.pedantic(
        lambda: simulate_overlap_probability(
            64, config.event_duration, config.conversion_time, n_trials=5000, seed=7
        ),
        rounds=1, iterations=1,
    )
    analytic = config.event_overlap_probability(64)
    rows = [
        {"estimate": "paper (worked example)", "probability": 0.0625},
        {"estimate": "analytic 1-(1-2d/T)^(n-1)", "probability": analytic},
        {"estimate": "Monte-Carlo (per-event)", "probability": simulated["p_event_overlaps"]},
        {"estimate": "Monte-Carlo (any pair in column)", "probability": simulated["p_any_overlap"]},
    ]
    print_table("Eq. (2) — event-overlap probability", rows)

    # Same order of magnitude as the paper's 6.25 % figure.
    assert 0.03 < analytic < 0.09
    assert 0.03 < simulated["p_event_overlaps"] < 0.12
