"""Sparse-recovery solvers.

All solvers share the same calling convention: they take a
:class:`~repro.cs.operators.SensingOperator` (or a dense matrix, which is
wrapped on the fly), the measurement vector ``y`` and solver-specific
parameters, and they return a :class:`SolverResult` whose ``coefficients``
attribute is the recovered sparse vector in the dictionary domain.

Available solvers:

* :func:`omp` — orthogonal matching pursuit (greedy, needs a sparsity target).
* :func:`cosamp` — compressive sampling matching pursuit.
* :func:`iht` — iterative hard thresholding.
* :func:`ista` / :func:`fista` — proximal-gradient l1 minimisation (the
  default for the image-scale benchmarks).
* :func:`basis_pursuit` — equality-constrained l1 minimisation via linear
  programming (small problems only; used as the convex-optimisation
  reference the paper alludes to).
"""

from repro.cs.solvers.result import SolverResult, as_operator
from repro.cs.solvers.greedy import cosamp, omp
from repro.cs.solvers.iterative import fista, iht, ista
from repro.cs.solvers.convex import basis_pursuit
from repro.cs.solvers.batched import (
    batched_operator_norms,
    batched_proximal_gradient,
)

__all__ = [
    "SolverResult",
    "as_operator",
    "omp",
    "cosamp",
    "iht",
    "ista",
    "fista",
    "basis_pursuit",
    "batched_operator_norms",
    "batched_proximal_gradient",
]
