"""The float32 behavioural fast mode and its documented accuracy contract.

The contract (:data:`repro.sensor.imager.FLOAT32_SAMPLE_ATOL`):

* with ``lsb_error=False`` a float32 capture is pinned to within
  ``FLOAT32_SAMPLE_ATOL`` compressed-sample codes of the float64 capture
  (exact in practice for tiles up to 128x128 — every partial sum stays
  below 2**24);
* with ``lsb_error=True`` the fast mode applies the *expected* LSB bump
  count instead of drawing per event, so the two dtypes additionally differ
  by the binomial noise of the exact path, bounded at six sigma.

The default dtype must remain byte-exact — the bit-fidelity invariant the
capture-equivalence suite pins is not allowed to move.
"""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import FLOAT32_SAMPLE_ATOL, CompressiveImager
from repro.sensor.video import VideoSequencer


def make_pair(rows=64, cols=64, seed=11):
    """Two identically seeded imagers (captures mutate generator state)."""
    return (
        CompressiveImager(SensorConfig(rows=rows, cols=cols), seed=seed),
        CompressiveImager(SensorConfig(rows=rows, cols=cols), seed=seed),
    )


def make_current(shape, seed=5, kind="natural"):
    scene = make_scene(kind, shape, seed=seed)
    return PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)


def lsb_noise_bound(imager, n_pixels):
    """Six-sigma binomial bound on the per-sample dtype difference."""
    probability = imager.config.event_overlap_probability(imager.config.rows // 2)
    return 6.0 * np.sqrt(probability * n_pixels) + FLOAT32_SAMPLE_ATOL


class TestAccuracyContract:
    @pytest.mark.parametrize("shape", [(16, 16), (32, 48), (64, 64)])
    def test_exact_without_lsb_error(self, shape):
        exact, fast = make_pair(*shape)
        current = make_current(shape)
        f64 = exact.capture(current, n_samples=128, lsb_error=False)
        f32 = fast.capture(
            current, n_samples=128, lsb_error=False, dtype="float32"
        )
        assert (
            np.abs(f64.samples - f32.samples).max() <= FLOAT32_SAMPLE_ATOL
        )

    def test_lsb_difference_within_binomial_noise(self):
        exact, fast = make_pair()
        current = make_current((64, 64))
        f64 = exact.capture(current, n_samples=256)
        f32 = fast.capture(current, n_samples=256, dtype="float32")
        difference = np.abs(f64.samples - f32.samples)
        assert difference.max() <= lsb_noise_bound(exact, 64 * 64)
        # The expectation matches the drawn total to within ~binomial spread.
        assert f32.metadata["n_lsb_errors"] == pytest.approx(
            f64.metadata["n_lsb_errors"], rel=0.05
        )

    def test_expected_bumps_exclude_saturated_pixels(self):
        # A dark scene saturates every pixel at max_code; neither path may
        # bump a saturated code, so both deliver the pure Φ @ x sums.
        exact, fast = make_pair(rows=16, cols=16)
        dark = np.full((16, 16), 1e-15)
        f64 = exact.capture(dark, n_samples=64, auto_expose=False)
        f32 = fast.capture(dark, n_samples=64, auto_expose=False, dtype="float32")
        assert np.array_equal(f64.samples, f32.samples)
        assert f32.metadata["n_lsb_errors"] == 0.0
        assert f64.metadata["n_lsb_errors"] == 0

    def test_metadata_flags_dtype(self):
        exact, fast = make_pair(rows=16, cols=16)
        current = make_current((16, 16))
        f64 = exact.capture(current, n_samples=32)
        f32 = fast.capture(current, n_samples=32, dtype="float32")
        assert f64.metadata["dtype"] == "float64"
        assert f32.metadata["dtype"] == "float32"
        assert isinstance(f32.metadata["n_lsb_errors"], float)
        assert isinstance(f64.metadata["n_lsb_errors"], int)


class TestDefaultPathUnchanged:
    def test_explicit_float64_matches_default(self):
        implicit, explicit = make_pair(rows=32, cols=32)
        current = make_current((32, 32))
        default = implicit.capture(current, n_samples=128)
        float64 = explicit.capture(current, n_samples=128, dtype="float64")
        assert default.samples.tobytes() == float64.samples.tobytes()
        assert default.metadata == float64.metadata


class TestOptionPlumbing:
    def test_event_fidelity_rejects_float32(self):
        imager, _ = make_pair(rows=16, cols=16)
        current = make_current((16, 16))
        with pytest.raises(ValueError, match="float32"):
            imager.capture(current, fidelity="event", dtype="float32")
        with pytest.raises(ValueError, match="float32"):
            imager.capture_batch([current], fidelity="event", dtype="float32")

    def test_unknown_dtype_rejected(self):
        imager, _ = make_pair(rows=16, cols=16)
        with pytest.raises(ValueError, match="dtype"):
            imager.capture(make_current((16, 16)), dtype="float16")

    def test_capture_batch_float32_tracks_float64_batch(self):
        fast_imager, exact_imager = make_pair(rows=32, cols=32)
        currents = [make_current((32, 32), seed=s) for s in range(3)]
        fast = fast_imager.capture_batch(currents, n_samples=64, dtype="float32")
        exact = exact_imager.capture_batch(currents, n_samples=64)
        bound = lsb_noise_bound(exact_imager, 32 * 32)
        for fast_frame, exact_frame in zip(fast, exact):
            assert fast_frame.metadata["dtype"] == "float32"
            assert np.array_equal(fast_frame.seed_state, exact_frame.seed_state)
            difference = np.abs(fast_frame.samples - exact_frame.samples)
            assert difference.max() <= bound

    def test_capture_batch_first_frame_matches_standalone_float32(self):
        batch_imager, single_imager = make_pair(rows=32, cols=32)
        current = make_current((32, 32))
        batch = batch_imager.capture_batch([current], n_samples=64, dtype="float32")
        single = single_imager.capture(current, n_samples=64, dtype="float32")
        assert np.array_equal(batch[0].samples, single.samples)

    def test_video_sequencer_passes_dtype_through(self):
        imager, _ = make_pair(rows=16, cols=16)
        sequencer = VideoSequencer(imager, samples_per_frame=32)
        scenes = [make_scene("blobs", (16, 16), seed=s) for s in range(2)]
        result = sequencer.capture_sequence(scenes, dtype="float32")
        assert all(
            frame.metadata["dtype"] == "float32" for frame in result.frames
        )
