"""A tiny asyncio scrape endpoint for the metrics registry.

``serve_metrics`` binds an HTTP/1.0 listener with exactly two routes:

* ``GET /metrics`` — Prometheus text exposition (version 0.0.4);
* ``GET /metrics.json`` — the same snapshot as JSON.

Each request collects a *fresh* snapshot (collectors run per scrape), so
the endpoint always reports live values.  The server is deliberately
minimal — stdlib asyncio only, one connection per request, no keep-alive —
because its job is to let ``curl``/Prometheus read a running hub, not to be
a web framework.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.telemetry.registry import MetricsSnapshot

__all__ = ["serve_metrics"]

_MAX_REQUEST_BYTES = 8192


def _response(status: str, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _handle(
    collect: Callable[[], MetricsSnapshot],
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = await reader.readline()
        if len(request_line) > _MAX_REQUEST_BYTES:
            return
        parts = request_line.decode("latin-1", "replace").split()
        # Drain headers so well-behaved clients see a clean close.
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
        if len(parts) < 2 or parts[0] != "GET":
            writer.write(
                _response("405 Method Not Allowed", "text/plain", b"GET only\n")
            )
        elif parts[1] in ("/metrics", "/metrics/"):
            body = collect().render_prometheus().encode("utf-8")
            writer.write(
                _response("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
            )
        elif parts[1] == "/metrics.json":
            body = collect().to_json().encode("utf-8")
            writer.write(_response("200 OK", "application/json", body))
        else:
            writer.write(
                _response(
                    "404 Not Found",
                    "text/plain",
                    b"try /metrics or /metrics.json\n",
                )
            )
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve_metrics(
    collect: Callable[[], MetricsSnapshot],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[asyncio.AbstractServer, int]:
    """Serve ``collect()`` over HTTP; returns ``(server, bound_port)``.

    ``collect`` is any zero-argument callable producing a
    :class:`~repro.telemetry.registry.MetricsSnapshot` — typically
    ``hub.metrics`` or ``registry.collect``.  ``port=0`` (the default) asks
    the OS for a free port, reported back in the second element.  Close with
    ``server.close(); await server.wait_closed()``.
    """

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle(collect, reader, writer)

    server = await asyncio.start_server(handler, host=host, port=port)
    sockets = server.sockets
    assert sockets, "asyncio.start_server returned no sockets"
    bound_port = int(sockets[0].getsockname()[1])
    return server, bound_port
