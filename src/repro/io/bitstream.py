"""Bit-exact packing of compressed samples.

Compressed samples are ``N_B``-bit unsigned integers (20 bits for the
prototype), which do not align to byte boundaries; transmitting them as 32-bit
words would waste 37 % of the channel the architecture worked so hard to save.
:class:`BitWriter`/:class:`BitReader` implement MSB-first bit packing, and
:func:`pack_samples`/:func:`unpack_samples` are the vector helpers the framing
layer uses.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_positive


class BitWriter:
    """Accumulates values of arbitrary bit width into a byte string (MSB first)."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_buffer = 0
        self._bits_pending = 0

    def write(self, value: int, n_bits: int) -> None:
        """Append ``value`` as ``n_bits`` bits."""
        check_positive("n_bits", n_bits)
        value = int(value)
        if value < 0 or value >= (1 << n_bits):
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        self._bit_buffer = (self._bit_buffer << n_bits) | value
        self._bits_pending += n_bits
        while self._bits_pending >= 8:
            self._bits_pending -= 8
            byte = (self._bit_buffer >> self._bits_pending) & 0xFF
            self._bytes.append(byte)
        self._bit_buffer &= (1 << self._bits_pending) - 1

    def write_many(self, values: Iterable[int], n_bits: int) -> None:
        """Append a sequence of equally-sized values."""
        for value in values:
            self.write(value, n_bits)

    @property
    def n_bits_written(self) -> int:
        """Total number of payload bits written so far."""
        return len(self._bytes) * 8 + self._bits_pending

    def getvalue(self) -> bytes:
        """Return the packed bytes, zero-padding the final partial byte."""
        result = bytearray(self._bytes)
        if self._bits_pending:
            result.append((self._bit_buffer << (8 - self._bits_pending)) & 0xFF)
        return bytes(result)


class BitReader:
    """Reads back values written by :class:`BitWriter` (MSB first)."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._position = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the buffer."""
        return len(self._data) * 8 - self._position

    def read(self, n_bits: int) -> int:
        """Read the next ``n_bits`` bits as an unsigned integer."""
        check_positive("n_bits", n_bits)
        if n_bits > self.bits_remaining:
            raise ValueError(
                f"requested {n_bits} bits but only {self.bits_remaining} remain"
            )
        value = 0
        remaining = n_bits
        while remaining > 0:
            byte_index, bit_offset = divmod(self._position, 8)
            take = min(8 - bit_offset, remaining)
            byte = self._data[byte_index]
            chunk = (byte >> (8 - bit_offset - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            self._position += take
            remaining -= take
        return value

    def read_many(self, n_values: int, n_bits: int) -> list[int]:
        """Read ``n_values`` equally-sized values (an empty list for zero)."""
        check_positive("n_values", n_values, allow_zero=True)
        return [self.read(n_bits) for _ in range(int(n_values))]


def pack_samples(samples: Sequence[int], n_bits: int) -> bytes:
    """Pack unsigned samples of ``n_bits`` each into a byte string.

    An empty sample vector packs to zero bytes.  (The frame codec itself
    never produces such a payload — headers require at least one sample, and
    the streaming bit-rate governor refuses budgets below its
    ``min_samples`` floor — but the packing layer stays total.)
    """
    writer = BitWriter()
    writer.write_many(np.asarray(samples, dtype=np.int64).tolist(), n_bits)
    return writer.getvalue()


def unpack_samples(data: bytes, n_samples: int, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_samples` (``n_samples=0`` yields an empty array)."""
    reader = BitReader(data)
    return np.array(reader.read_many(n_samples, n_bits), dtype=np.int64)
