"""Row/column selection-signal generation for the full-frame compressive strategy.

In the sensor of Fig. 2 a single 1-D cellular automaton of ``rows + cols``
cells surrounds the pixel array.  At every compressed sample the cells
assigned to the rows drive the row selection lines ``S_i`` and the cells
assigned to the columns drive the column selection lines ``S_j``; pixel
``(i, j)`` contributes to that compressed sample iff ``S_i XOR S_j`` is 1
(the 6-transistor XOR gate of Fig. 1).  Advancing the CA by one (or more)
clock cycles produces the next row of the measurement matrix Φ.

Because the CA is deterministic, the complete Φ is a pure function of the
seed — this is the property the paper exploits to avoid transmitting or
storing Φ.  :class:`CASelectionGenerator` is used both inside the sensor
simulator (to select pixels) and inside the reconstruction pipeline (to
rebuild the very same Φ at the receiver from the seed alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from repro.ca.automaton import BoundaryCondition, ElementaryCellularAutomaton
from repro.ca.rules import RuleTable
from repro.utils.rng import SeedLike, nonzero_seed_bits
from repro.utils.validation import check_binary_array, check_positive


@dataclass(frozen=True)
class SelectionPattern:
    """One pixel-selection pattern (one row of the measurement matrix).

    Attributes
    ----------
    index:
        Ordinal of the compressed sample this pattern belongs to.
    row_signals, col_signals:
        The CA cell states driving the row / column selection lines.
    mask:
        The ``rows x cols`` binary selection mask ``S_i XOR S_j``.
    """

    index: int
    row_signals: np.ndarray
    col_signals: np.ndarray
    mask: np.ndarray

    @property
    def density(self) -> float:
        """Fraction of selected pixels (the XOR construction targets ~1/2)."""
        return float(np.count_nonzero(self.mask) / self.mask.size)

    def as_vector(self) -> np.ndarray:
        """The mask flattened in raster order — one row of Φ."""
        return self.mask.reshape(-1)


class CASelectionGenerator:
    """Generates successive pixel-selection patterns from a seeded CA.

    Parameters
    ----------
    rows, cols:
        Pixel-array dimensions.  The CA register has ``rows + cols`` cells;
        the first ``rows`` cells drive the row lines, the rest the columns.
    seed_state:
        Explicit CA seed (``rows + cols`` bits).  This is the quantity the
        sensor would share with the receiver.  If omitted, a random non-zero
        seed is drawn from ``seed``.
    rule:
        CA rule; the paper uses Rule 30.
    steps_per_sample:
        How many CA clock cycles separate consecutive selection patterns.
        One step already decorrelates neighbouring patterns for Rule 30;
        larger values trade selection-update time for extra mixing.
    warmup_steps:
        CA clock cycles applied once, before the first pattern, to wash out
        the (possibly low-entropy) seed.
    boundary:
        CA boundary condition; the hardware ring is periodic.
    seed:
        RNG seed used only to draw ``seed_state`` when it is not supplied.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        seed_state: Optional[np.ndarray] = None,
        rule: Union[int, RuleTable] = 30,
        steps_per_sample: int = 1,
        warmup_steps: int = 0,
        boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
        seed: SeedLike = None,
    ) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        check_positive("steps_per_sample", steps_per_sample)
        check_positive("warmup_steps", warmup_steps, allow_zero=True)
        self.rows = int(rows)
        self.cols = int(cols)
        self.steps_per_sample = int(steps_per_sample)
        self.warmup_steps = int(warmup_steps)
        n_cells = self.rows + self.cols
        if seed_state is None:
            seed_state = nonzero_seed_bits(n_cells, seed)
        else:
            seed_state = check_binary_array("seed_state", np.asarray(seed_state))
            if seed_state.size != n_cells:
                raise ValueError(
                    f"seed_state must have rows + cols = {n_cells} bits, got {seed_state.size}"
                )
        self._seed_state = seed_state.copy()
        self._automaton = ElementaryCellularAutomaton(
            n_cells, rule, seed_state=seed_state, boundary=boundary
        )
        self._sample_index = 0
        if self.warmup_steps:
            self._automaton.step(self.warmup_steps)

    # ----------------------------------------------------------------- state
    @property
    def seed_state(self) -> np.ndarray:
        """The CA seed — the only thing that must be shared with the receiver."""
        return self._seed_state.copy()

    @property
    def rule(self) -> RuleTable:
        """The CA rule driving the register."""
        return self._automaton.rule

    @property
    def sample_index(self) -> int:
        """Index of the next pattern that :meth:`next_pattern` will produce."""
        return self._sample_index

    def reset(self) -> None:
        """Rewind to the state right after seeding (and warm-up)."""
        self._automaton.reset(self._seed_state)
        if self.warmup_steps:
            self._automaton.step(self.warmup_steps)
        self._sample_index = 0

    # -------------------------------------------------------------- patterns
    def _pattern_from_state(self, state: np.ndarray, index: int) -> SelectionPattern:
        row_signals = state[: self.rows].astype(np.uint8)
        col_signals = state[self.rows:].astype(np.uint8)
        mask = np.bitwise_xor.outer(row_signals, col_signals).astype(np.uint8)
        return SelectionPattern(
            index=index,
            row_signals=row_signals,
            col_signals=col_signals,
            mask=mask,
        )

    def next_pattern(self) -> SelectionPattern:
        """Return the selection pattern for the next compressed sample.

        The first pattern is derived from the post-warm-up seed state itself;
        subsequent patterns advance the CA by ``steps_per_sample`` cycles.
        """
        if self._sample_index > 0:
            self._automaton.step(self.steps_per_sample)
        pattern = self._pattern_from_state(self._automaton.state, self._sample_index)
        self._sample_index += 1
        return pattern

    def patterns(self, n_patterns: int) -> Iterator[SelectionPattern]:
        """Yield the next ``n_patterns`` selection patterns."""
        check_positive("n_patterns", n_patterns)
        for _ in range(int(n_patterns)):
            yield self.next_pattern()

    def measurement_matrix(self, n_samples: int) -> np.ndarray:
        """Return Φ as an ``n_samples x (rows*cols)`` binary matrix.

        This regenerates the matrix from scratch starting at the seed, which
        is exactly what the receiving end of the channel does; it does not
        disturb the generator's own position in the sequence.
        """
        check_positive("n_samples", n_samples)
        clone = CASelectionGenerator(
            self.rows,
            self.cols,
            seed_state=self._seed_state,
            rule=self._automaton.rule,
            steps_per_sample=self.steps_per_sample,
            warmup_steps=self.warmup_steps,
            boundary=self._automaton.boundary,
        )
        matrix = np.empty((int(n_samples), self.rows * self.cols), dtype=np.uint8)
        for i, pattern in enumerate(clone.patterns(int(n_samples))):
            matrix[i] = pattern.as_vector()
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CASelectionGenerator(rows={self.rows}, cols={self.cols}, "
            f"rule={self._automaton.rule.number}, steps_per_sample={self.steps_per_sample})"
        )
