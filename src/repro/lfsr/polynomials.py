"""Primitive polynomials over GF(2) for maximal-length LFSRs.

Tap positions are given as exponents of the feedback polynomial
``x^n + x^k + ... + 1`` (the degree-``n`` term is implicit).  A register of
``n`` bits wired with these taps cycles through all ``2**n - 1`` non-zero
states before repeating.
"""

from __future__ import annotations


#: Tap exponents (excluding the register length itself) of one primitive
#: polynomial per register length.  Standard table (Xilinx XAPP052 and
#: classic references).
PRIMITIVE_POLYNOMIALS: dict[int, tuple[int, ...]] = {
    2: (1,),
    3: (2,),
    4: (3,),
    5: (3,),
    6: (5,),
    7: (6,),
    8: (6, 5, 4),
    9: (5,),
    10: (7,),
    11: (9,),
    12: (11, 10, 4),
    13: (12, 11, 8),
    14: (13, 12, 2),
    15: (14,),
    16: (15, 13, 4),
    17: (14,),
    18: (11,),
    19: (18, 17, 14),
    20: (17,),
    21: (19,),
    22: (21,),
    23: (18,),
    24: (23, 22, 17),
    25: (22,),
    26: (25, 24, 20),
    27: (26, 25, 22),
    28: (25,),
    29: (27,),
    30: (29, 28, 7),
    31: (28,),
    32: (31, 30, 10),
}


def primitive_taps(n_bits: int) -> tuple[int, ...]:
    """Return the full tap tuple (including ``n_bits``) for a maximal LFSR.

    Raises ``ValueError`` for register lengths outside the table.
    """
    if n_bits not in PRIMITIVE_POLYNOMIALS:
        raise ValueError(
            f"no primitive polynomial tabulated for {n_bits}-bit registers "
            f"(supported: {sorted(PRIMITIVE_POLYNOMIALS)})"
        )
    return (n_bits,) + PRIMITIVE_POLYNOMIALS[n_bits]
