"""Sparsifying dictionaries Ψ.

Compressive sampling recovers an image from few samples because the image is
sparse (or compressible) in some basis.  The dictionaries here are the two
work-horses for natural images — the 2-D DCT and the 2-D Haar wavelet — plus
the identity (for scenes that are sparse in the pixel domain, e.g. point
sources).  All dictionaries are orthonormal, implemented with fast transforms
rather than explicit matrices, and expose the pair of maps the solvers need:

* ``synthesize(coefficients) -> image``  (Ψ applied to a coefficient vector)
* ``analyze(image) -> coefficients``     (Ψ* applied to an image vector)

Vectors are flattened images in raster order; the dictionary knows the image
shape so callers never juggle reshapes.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

import numpy as np
from scipy.fft import dctn, idctn

from repro.utils.validation import check_positive, check_power_of_two


class Dictionary(abc.ABC):
    """Abstract orthonormal sparsifying dictionary for images of a fixed shape."""

    #: Declares ``Ψ* Ψ = I``, which the operator-norm power iteration
    #: exploits (``σ(Φ Ψ) = σ(Φ)``).  Deliberately ``False`` on the abstract
    #: base — a wrongly-claimed identity would silently mis-size the solver
    #: steps — and opted into by each shipped (orthonormal) dictionary.
    orthonormal = False

    def __init__(self, shape: tuple[int, int]) -> None:
        rows, cols = shape
        check_positive("rows", rows)
        check_positive("cols", cols)
        self.shape = (int(rows), int(cols))

    @property
    def n_pixels(self) -> int:
        """Dimension of the signal space."""
        return self.shape[0] * self.shape[1]

    # -- the two maps -----------------------------------------------------
    @abc.abstractmethod
    def synthesize(self, coefficients: np.ndarray) -> np.ndarray:
        """Map a coefficient vector to an image vector (apply Ψ)."""

    @abc.abstractmethod
    def analyze(self, image: np.ndarray) -> np.ndarray:
        """Map an image vector to its coefficient vector (apply Ψ*)."""

    # -- helpers ----------------------------------------------------------
    def _check_vector(self, vector: np.ndarray, name: str) -> np.ndarray:
        vector = np.asarray(vector, dtype=float).reshape(-1)
        if vector.size != self.n_pixels:
            raise ValueError(
                f"{name} must have {self.n_pixels} entries, got {vector.size}"
            )
        return vector

    def to_image(self, vector: np.ndarray) -> np.ndarray:
        """Reshape a flat vector into the dictionary's image shape."""
        return self._check_vector(vector, "vector").reshape(self.shape)

    def atom(self, index: int) -> np.ndarray:
        """The ``index``-th dictionary atom as an image vector (a column of Ψ)."""
        if not 0 <= index < self.n_pixels:
            raise ValueError(f"atom index {index} outside 0..{self.n_pixels - 1}")
        coefficients = np.zeros(self.n_pixels)
        coefficients[index] = 1.0
        return self.synthesize(coefficients)

    # -- batched maps ------------------------------------------------------
    def _check_batch(self, batch: np.ndarray, name: str) -> np.ndarray:
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2 or batch.shape[1] != self.n_pixels:
            raise ValueError(
                f"{name} must have shape (k, {self.n_pixels}), got {batch.shape}"
            )
        return batch

    def synthesize_batch(self, coefficients: np.ndarray) -> np.ndarray:
        """Apply Ψ to a ``(k, n_pixels)`` stack of coefficient vectors at once.

        Subclasses override this with a genuinely vectorised transform (one
        ``idctn`` call, one lifting pass over the whole stack); the base
        implementation is the reference row loop.
        """
        coefficients = self._check_batch(coefficients, "coefficients")
        if coefficients.shape[0] == 0:
            return coefficients.copy()
        return np.stack([self.synthesize(row) for row in coefficients])

    def analyze_batch(self, images: np.ndarray) -> np.ndarray:
        """Apply Ψ* to a ``(k, n_pixels)`` stack of image vectors at once."""
        images = self._check_batch(images, "images")
        if images.shape[0] == 0:
            return images.copy()
        return np.stack([self.analyze(row) for row in images])

    def atoms(self, indices: Iterable[int]) -> np.ndarray:
        """Dense ``(n_pixels, k)`` sub-matrix of Ψ for the given atom indices.

        Synthesised as **one** batched transform over a stack of unit
        coefficient vectors — this is what lets the greedy solvers build
        their support sub-matrices without a per-column Python loop.
        """
        indices = [int(index) for index in indices]
        for index in indices:
            if not 0 <= index < self.n_pixels:
                raise ValueError(
                    f"atom index {index} outside 0..{self.n_pixels - 1}"
                )
        units = np.zeros((len(indices), self.n_pixels))
        units[np.arange(len(indices)), indices] = 1.0
        return self.synthesize_batch(units).T

    def dense(self) -> np.ndarray:
        """Explicit Ψ matrix (columns are atoms).  Only sensible for small shapes."""
        return self.atoms(range(self.n_pixels))

    def sparsity_profile(
        self,
        image: np.ndarray,
        fractions: Sequence[float] = (0.01, 0.05, 0.1, 0.2),
    ) -> dict[float, float]:
        """Energy captured by the largest coefficients — how compressible the image is."""
        coefficients = self.analyze(np.asarray(image, dtype=float).reshape(-1))
        energy = np.sort(coefficients ** 2)[::-1]
        total = energy.sum()
        profile = {}
        for fraction in fractions:
            k = max(1, int(round(fraction * energy.size)))
            profile[fraction] = float(energy[:k].sum() / total) if total > 0 else 1.0
        return profile


class IdentityDictionary(Dictionary):
    """The pixel basis — for signals sparse in the image domain itself."""

    orthonormal = True

    def synthesize(self, coefficients: np.ndarray) -> np.ndarray:
        return self._check_vector(coefficients, "coefficients").copy()

    def analyze(self, image: np.ndarray) -> np.ndarray:
        return self._check_vector(image, "image").copy()

    def synthesize_batch(self, coefficients: np.ndarray) -> np.ndarray:
        return self._check_batch(coefficients, "coefficients").copy()

    def analyze_batch(self, images: np.ndarray) -> np.ndarray:
        return self._check_batch(images, "images").copy()


class DCT2Dictionary(Dictionary):
    """Orthonormal 2-D discrete cosine transform (type II, 'ortho' scaling)."""

    orthonormal = True

    def synthesize(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._check_vector(coefficients, "coefficients")
        image = idctn(coefficients.reshape(self.shape), norm="ortho")
        return image.reshape(-1)

    def analyze(self, image: np.ndarray) -> np.ndarray:
        image = self._check_vector(image, "image")
        coefficients = dctn(image.reshape(self.shape), norm="ortho")
        return coefficients.reshape(-1)

    def synthesize_batch(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._check_batch(coefficients, "coefficients")
        if coefficients.shape[0] == 0:
            return coefficients.copy()
        stack = coefficients.reshape(-1, *self.shape)
        return idctn(stack, axes=(1, 2), norm="ortho").reshape(coefficients.shape)

    def analyze_batch(self, images: np.ndarray) -> np.ndarray:
        images = self._check_batch(images, "images")
        if images.shape[0] == 0:
            return images.copy()
        stack = images.reshape(-1, *self.shape)
        return dctn(stack, axes=(1, 2), norm="ortho").reshape(images.shape)


class Haar2Dictionary(Dictionary):
    """Orthonormal 2-D Haar wavelet transform (full decomposition).

    Implemented directly (separable lifting on rows then columns, repeated on
    the low-pass quadrant) so no external wavelet package is needed.  Image
    dimensions must be powers of two, which they are for the 64x64 sensor and
    the 8/16/32 block sizes used by the block-CS baseline.
    """

    orthonormal = True

    def __init__(self, shape: tuple[int, int]) -> None:
        super().__init__(shape)
        check_power_of_two("rows", self.shape[0])
        check_power_of_two("cols", self.shape[1])
        self.levels = int(np.log2(min(self.shape)))

    @staticmethod
    def _haar_forward_1d(data: np.ndarray, axis: int) -> np.ndarray:
        data = np.moveaxis(data, axis, 0)
        n = data.shape[0]
        averages = (data[0:n:2] + data[1:n:2]) / np.sqrt(2.0)
        details = (data[0:n:2] - data[1:n:2]) / np.sqrt(2.0)
        stacked = np.concatenate([averages, details], axis=0)
        return np.moveaxis(stacked, 0, axis)

    @staticmethod
    def _haar_inverse_1d(data: np.ndarray, axis: int) -> np.ndarray:
        data = np.moveaxis(data, axis, 0)
        n = data.shape[0]
        averages = data[: n // 2]
        details = data[n // 2:]
        evens = (averages + details) / np.sqrt(2.0)
        odds = (averages - details) / np.sqrt(2.0)
        interleaved = np.empty_like(data)
        interleaved[0:n:2] = evens
        interleaved[1:n:2] = odds
        return np.moveaxis(interleaved, 0, axis)

    def _analyze_stack(self, stack: np.ndarray) -> np.ndarray:
        """Forward transform on a ``(..., rows, cols)`` stack, in place."""
        coefficients = stack.astype(float).copy()
        rows, cols = self.shape
        for _ in range(self.levels):
            block = coefficients[..., :rows, :cols]
            block = self._haar_forward_1d(block, axis=-2)
            block = self._haar_forward_1d(block, axis=-1)
            coefficients[..., :rows, :cols] = block
            rows //= 2
            cols //= 2
            if rows < 2 or cols < 2:
                break
        return coefficients

    def _synthesize_stack(self, stack: np.ndarray) -> np.ndarray:
        """Inverse transform on a ``(..., rows, cols)`` stack, in place."""
        image = stack.astype(float).copy()
        # Determine the sizes visited by the forward pass, smallest first.
        sizes = []
        rows, cols = self.shape
        for _ in range(self.levels):
            sizes.append((rows, cols))
            rows //= 2
            cols //= 2
            if rows < 2 or cols < 2:
                break
        for rows, cols in reversed(sizes):
            block = image[..., :rows, :cols]
            block = self._haar_inverse_1d(block, axis=-1)
            block = self._haar_inverse_1d(block, axis=-2)
            image[..., :rows, :cols] = block
        return image

    def analyze(self, image: np.ndarray) -> np.ndarray:
        image = self._check_vector(image, "image")
        return self._analyze_stack(image.reshape(self.shape)).reshape(-1)

    def synthesize(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._check_vector(coefficients, "coefficients")
        return self._synthesize_stack(coefficients.reshape(self.shape)).reshape(-1)

    def synthesize_batch(self, coefficients: np.ndarray) -> np.ndarray:
        coefficients = self._check_batch(coefficients, "coefficients")
        if coefficients.shape[0] == 0:
            return coefficients.copy()
        stack = coefficients.reshape(-1, *self.shape)
        return self._synthesize_stack(stack).reshape(coefficients.shape)

    def analyze_batch(self, images: np.ndarray) -> np.ndarray:
        images = self._check_batch(images, "images")
        if images.shape[0] == 0:
            return images.copy()
        stack = images.reshape(-1, *self.shape)
        return self._analyze_stack(stack).reshape(images.shape)


_DICTIONARIES = {
    "identity": IdentityDictionary,
    "dct": DCT2Dictionary,
    "haar": Haar2Dictionary,
}


def make_dictionary(name: str, shape: tuple[int, int]) -> Dictionary:
    """Factory: build a dictionary by name (``identity``, ``dct`` or ``haar``)."""
    key = name.lower()
    if key not in _DICTIONARIES:
        raise ValueError(
            f"unknown dictionary {name!r}; choose from {sorted(_DICTIONARIES)}"
        )
    return _DICTIONARIES[key](shape)
