"""Tests for the bitstream and frame serialisation layer."""

import numpy as np
import pytest

from repro.io.bitstream import BitReader, BitWriter, pack_samples, unpack_samples
from repro.io.framing import FRAME_MAGIC, FrameHeader, decode_frame, encode_frame, encoded_size_bits
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


class TestBitWriterReader:
    def test_round_trip_mixed_widths(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0xABCDE, 20)
        writer.write(1, 1)
        writer.write(255, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 0b101
        assert reader.read(20) == 0xABCDE
        assert reader.read(1) == 1
        assert reader.read(8) == 255

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(256, 8)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 8)

    def test_bits_written_counter(self):
        writer = BitWriter()
        writer.write(3, 5)
        writer.write(1, 7)
        assert writer.n_bits_written == 12

    def test_reading_past_end_raises(self):
        writer = BitWriter()
        writer.write(1, 4)
        reader = BitReader(writer.getvalue())
        reader.read(8)  # padded byte is readable
        with pytest.raises(ValueError):
            reader.read(8)

    def test_bits_remaining(self):
        reader = BitReader(bytes([0xFF, 0x00]))
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11


class TestPackSamples:
    def test_round_trip_20_bit_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 1 << 20, size=137)
        packed = pack_samples(samples, 20)
        assert len(packed) == (137 * 20 + 7) // 8
        assert np.array_equal(unpack_samples(packed, 137, 20), samples)

    def test_packing_saves_space_vs_32_bit_words(self):
        samples = list(range(100))
        packed = pack_samples(samples, 20)
        assert len(packed) < 100 * 4

    def test_single_sample(self):
        packed = pack_samples([123456], 20)
        assert unpack_samples(packed, 1, 20)[0] == 123456


class TestFrameHeader:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameHeader(rows=0, cols=64, pixel_bits=8, sample_bits=20,
                        rule_number=30, steps_per_sample=1, warmup_steps=0, n_samples=1)
        with pytest.raises(ValueError):
            FrameHeader(rows=64, cols=64, pixel_bits=8, sample_bits=20,
                        rule_number=300, steps_per_sample=1, warmup_steps=0, n_samples=1)


class TestFrameCodec:
    @pytest.fixture
    def frame(self):
        config = SensorConfig(rows=32, cols=32)
        imager = CompressiveImager(config, seed=21)
        scene = make_scene("blobs", (32, 32), seed=6)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        return imager.capture(conversion.convert(scene), n_samples=300)

    def test_round_trip_preserves_samples_and_seed(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert np.array_equal(decoded.samples, frame.samples)
        assert np.array_equal(decoded.seed_state, frame.seed_state)
        assert decoded.rule_number == frame.rule_number
        assert decoded.steps_per_sample == frame.steps_per_sample
        assert decoded.warmup_steps == frame.warmup_steps
        assert (decoded.config.rows, decoded.config.cols) == (32, 32)

    def test_decoded_frame_reconstructs_identically(self, frame):
        decoded = decode_frame(encode_frame(frame))
        original = reconstruct_frame(frame, max_iterations=60)
        received = reconstruct_frame(decoded, reference=frame.digital_image, max_iterations=60)
        assert np.allclose(original.image, received.image)

    def test_payload_size_matches_prediction(self, frame):
        encoded = encode_frame(frame)
        assert len(encoded) * 8 == encoded_size_bits(frame.config, frame.n_samples)

    def test_magic_is_checked(self, frame):
        data = bytearray(encode_frame(frame))
        data[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_frame(bytes(data))
        assert data[0] != FRAME_MAGIC

    def test_version_is_checked(self, frame):
        data = bytearray(encode_frame(frame))
        data[1] = 99
        with pytest.raises(ValueError, match="version"):
            decode_frame(bytes(data))

    def test_measurement_matrix_recoverable_after_transport(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert np.array_equal(decoded.measurement_matrix(), frame.measurement_matrix())
