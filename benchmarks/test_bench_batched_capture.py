"""E13 — batched capture engine throughput.

Times the three layers the batched engine rewrote: the vectorised Φ builder
(one CA evolution + one broadcast XOR), the single-frame behavioural capture
(rank-structured matmul + one LSB draw per selected event) and the
multi-frame ``capture_batch`` fast path that shares one CA state stack across
a whole sequence.  Together with ``test_bench_throughput.py`` these numbers
make hot-path regressions visible; the capture-equivalence regression tests
guarantee the speed does not come at the cost of bit-fidelity.
"""

import numpy as np

from repro.ca.selection import ca_measurement_matrix
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer


def make_inputs(rows=64, cols=64, seed=2018):
    config = SensorConfig(rows=rows, cols=cols)
    imager = CompressiveImager(config, seed=seed)
    scene = make_scene("natural", (rows, cols), seed=seed)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    return imager, current


def test_batched_phi_build_full_frame(benchmark):
    """Φ for a full 64x64 frame (4096 samples) in one batched pass."""
    imager, _ = make_inputs()
    seed_state = imager.selection.seed_state
    phi = benchmark(
        lambda: ca_measurement_matrix(4096, 64, 64, seed_state, warmup_steps=8)
    )
    assert phi.shape == (4096, 4096)
    assert phi.dtype == np.uint8


def test_batched_behavioural_capture_no_lsb(benchmark):
    """The pure Φ@x path, isolating the matmul from the LSB draw cost."""
    imager, current = make_inputs()
    frame = benchmark(lambda: imager.capture(current, n_samples=512, lsb_error=False))
    assert frame.metadata["n_lsb_errors"] == 0


def test_batched_behavioural_capture_with_lsb(benchmark):
    """Same capture with the stochastic LSB error batched over every event."""
    imager, current = make_inputs()
    frame = benchmark(lambda: imager.capture(current, n_samples=512))
    assert frame.n_samples == 512


def test_capture_batch_eight_frames(benchmark):
    """Eight 512-sample frames through one shared CA state stack."""
    imager, current = make_inputs()
    currents = [current] * 8

    def run():
        frames = imager.capture_batch(currents, n_samples=512)
        return frames

    frames = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(frames) == 8
    assert all(frame.n_samples == 512 for frame in frames)


def test_video_sequencer_throughput(benchmark):
    """The video path end to end (conversion + batched multi-frame capture)."""
    imager, _ = make_inputs(rows=32, cols=32)
    sequencer = VideoSequencer(
        imager,
        conversion=PhotoConversion(prnu_sigma=0.0, shot_noise=False),
        samples_per_frame=256,
    )
    scenes = [make_scene("blobs", (32, 32), seed=s) for s in range(8)]
    result = benchmark.pedantic(
        lambda: sequencer.capture_sequence(scenes), rounds=3, iterations=1
    )
    assert result.n_frames == 8
