"""Global-counter time-to-digital conversion.

The sensor digitises the time-encoded pixel values with a single global
counter clocked at 24 MHz (Fig. 2): the counter starts at the global pixel
reset, and each time a pixel pulse reaches the foot of its column the current
8-bit count is sampled and handed to the column's 'Sample & Add'.  Because
pulses held back by the token protocol can slip into the following clock
period, a sampled code can be one LSB above the ideal value — the paper
verifies at system level that this error is negligible; benchmark E8 repeats
that verification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GlobalCounterTDC:
    """Free-running global counter sampled by column events.

    Attributes
    ----------
    clock_frequency:
        Counter clock (Table II: 24 MHz).
    n_bits:
        Counter width (8 bits → 256 codes).
    start_delay:
        Initial delay between the pixel reset and the counter start,
        "allocating some initial delay to allow the pulses to reach the
        bottom of the array" (Section III-B).
    """

    clock_frequency: float = 24.0e6
    n_bits: int = 8
    start_delay: float = 0.0

    def __post_init__(self) -> None:
        check_positive("clock_frequency", self.clock_frequency)
        check_positive("n_bits", self.n_bits)
        check_positive("start_delay", self.start_delay, allow_zero=True)

    @property
    def clock_period(self) -> float:
        """One counter tick (s)."""
        return 1.0 / self.clock_frequency

    @property
    def n_codes(self) -> int:
        """Number of representable codes, ``2**n_bits``."""
        return 1 << self.n_bits

    @property
    def max_code(self) -> int:
        """Largest code the counter can deliver."""
        return self.n_codes - 1

    @property
    def conversion_window(self) -> float:
        """Duration covered by one full counter sweep."""
        return self.n_codes * self.clock_period

    # ------------------------------------------------------------ conversion
    def sample(self, times) -> np.ndarray:
        """Sample the counter at the given absolute times (s since reset).

        Times earlier than ``start_delay`` sample code 0; times beyond the
        conversion window clip at the maximum code (the counter has stopped).
        """
        times = np.asarray(times, dtype=float)
        codes = np.floor((times - self.start_delay) / self.clock_period)
        codes = np.clip(codes, 0, self.max_code)
        return codes.astype(np.int64)

    def ideal_codes(self, firing_times) -> np.ndarray:
        """Codes the TDC would produce if every pulse arrived unqueued.

        Non-finite firing times (pixels that never cross the threshold)
        saturate at the maximum code.
        """
        firing_times = np.asarray(firing_times, dtype=float)
        finite = np.isfinite(firing_times)
        codes = np.full(firing_times.shape, self.max_code, dtype=np.int64)
        codes[finite] = self.sample(firing_times[finite])
        return codes

    def code_to_time(self, codes) -> np.ndarray:
        """Centre-of-bin time represented by a counter code."""
        codes = np.asarray(codes, dtype=float)
        return self.start_delay + (codes + 0.5) * self.clock_period

    def quantization_error_bound(self) -> float:
        """Worst-case time error of a single conversion (one clock period)."""
        return self.clock_period

    # ------------------------------------------------------ error modelling
    def late_detection_codes(self, emit_times, fire_times):
        """Codes actually sampled when pulses are emitted at ``emit_times``.

        ``emit_times`` are the bus-occupation times returned by the column
        arbiter; ``fire_times`` the ideal comparator-flip times.  Returns the
        ``(emit_codes, ideal_codes)`` pair; the difference between the two is
        exactly the ±1 LSB (or more, under heavy queueing) late-detection
        error discussed in Section III-B.  The batched event engine calls
        this once per frame over every delivered event.
        """
        emit_codes = self.sample(np.asarray(emit_times, dtype=float))
        ideal_codes = self.sample(np.asarray(fire_times, dtype=float))
        if emit_codes.shape != ideal_codes.shape:
            raise ValueError("emit_times and fire_times must have the same shape")
        return emit_codes, ideal_codes

    def lsb_error_statistics(self, emit_times, fire_times) -> dict:
        """Summary of the late-detection error over a set of events."""
        emit_codes, ideal_codes = self.late_detection_codes(emit_times, fire_times)
        error = emit_codes - ideal_codes
        return {
            "n_events": int(error.size),
            "n_errors": int(np.count_nonzero(error)),
            "max_error_lsb": int(error.max()) if error.size else 0,
            "mean_error_lsb": float(error.mean()) if error.size else 0.0,
            "error_rate": float(np.count_nonzero(error) / error.size) if error.size else 0.0,
        }


def draw_lsb_bumps(
    n_draws: int,
    probability: float,
    *,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_draws`` independent +1 LSB bump decisions as a boolean array.

    One uniform draw per selected event, taken from ``rng``'s stream in event
    order.  Because :meth:`numpy.random.Generator.random` fills arrays
    sequentially from the underlying bit stream, one batched call here
    consumes exactly the same draws as the per-pattern
    :func:`apply_stochastic_lsb_error` calls it replaces — this is what lets
    the batched capture engine reproduce the legacy per-pattern loop bit for
    bit (the property pinned by the capture-equivalence regression tests).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    if n_draws < 0:
        raise ValueError(f"n_draws must be non-negative, got {n_draws}")
    return rng.random(int(n_draws)) < probability


def apply_stochastic_lsb_error(
    codes: np.ndarray,
    probability: float,
    *,
    max_code: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Add a +1 LSB error to each code independently with the given probability.

    Used by the fast (vectorised) imager path to emulate the late-detection
    error without running the full event-level arbitration.
    """
    codes = np.asarray(codes, dtype=np.int64)
    bumps = draw_lsb_bumps(codes.size, probability, rng=rng).reshape(codes.shape)
    return np.minimum(codes + bumps.astype(np.int64), int(max_code))
