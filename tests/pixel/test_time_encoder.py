"""Tests for the light-to-time conversion chain."""

import numpy as np
import pytest

from repro.pixel.comparator import Comparator
from repro.pixel.photodiode import Photodiode
from repro.pixel.time_encoder import TimeEncoder


def ideal_encoder() -> TimeEncoder:
    return TimeEncoder(
        photodiode=Photodiode(capacitance=10e-15, reset_voltage=3.3),
        comparator=Comparator(offset_sigma=0.0, delay=0.0),
        reference_voltage=1.0,
    )


class TestConstruction:
    def test_reference_must_be_below_reset(self):
        with pytest.raises(ValueError):
            TimeEncoder(reference_voltage=3.3)

    def test_voltage_swing(self):
        assert ideal_encoder().voltage_swing == pytest.approx(2.3)

    def test_set_reference_validates(self):
        encoder = ideal_encoder()
        with pytest.raises(ValueError):
            encoder.set_reference(5.0)
        encoder.set_reference(2.0)
        assert encoder.voltage_swing == pytest.approx(1.3)

    def test_set_reset_voltage_validates(self):
        encoder = ideal_encoder()
        with pytest.raises(ValueError):
            encoder.set_reset_voltage(0.5)
        encoder.set_reset_voltage(2.5)
        assert encoder.photodiode.reset_voltage == pytest.approx(2.5)


class TestTransferCurve:
    def test_time_inversely_proportional_to_current(self):
        encoder = ideal_encoder()
        currents = np.array([[1e-9, 2e-9, 4e-9]])
        times = encoder.ideal_firing_times(currents)
        assert times[0, 0] == pytest.approx(2 * times[0, 1], rel=1e-9)
        assert times[0, 1] == pytest.approx(2 * times[0, 2], rel=1e-9)

    def test_known_firing_time(self):
        encoder = ideal_encoder()
        # t = swing * C / I = 2.3 * 10 fF / 1 nA = 23 us.
        times = encoder.ideal_firing_times(np.array([[1e-9]]))
        assert times[0, 0] == pytest.approx(23e-6, rel=1e-6)

    def test_zero_current_never_fires(self):
        encoder = ideal_encoder()
        assert np.isinf(encoder.ideal_firing_times(np.array([[0.0]]))[0, 0])

    def test_delay_adds_to_firing_time(self):
        no_delay = ideal_encoder()
        with_delay = TimeEncoder(
            photodiode=Photodiode(),
            comparator=Comparator(offset_sigma=0.0, delay=50e-9),
            reference_voltage=1.0,
        )
        current = np.array([[1e-9]])
        assert with_delay.firing_times(current)[0, 0] == pytest.approx(
            no_delay.firing_times(current)[0, 0] + 50e-9
        )

    def test_offset_changes_firing_times_but_not_on_average(self):
        noisy = TimeEncoder(
            photodiode=Photodiode(),
            comparator=Comparator(offset_sigma=20e-3, autozero=False, delay=0.0, seed=1),
            reference_voltage=1.0,
        )
        clean = ideal_encoder()
        currents = np.full((32, 32), 2e-9)
        noisy_times = noisy.firing_times(currents)
        clean_times = clean.firing_times(currents)
        assert not np.allclose(noisy_times, clean_times)
        assert np.isclose(noisy_times.mean(), clean_times.mean(), rtol=0.02)

    def test_inverse_transfer_recovers_current(self):
        encoder = ideal_encoder()
        currents = np.array([[0.5e-9, 1e-9], [2e-9, 8e-9]])
        times = encoder.ideal_firing_times(currents)
        assert np.allclose(encoder.photocurrent_from_time(times), currents)

    def test_inverse_rejects_non_positive_times(self):
        with pytest.raises(ValueError):
            ideal_encoder().photocurrent_from_time(np.array([0.0]))


class TestAdaptation:
    def test_adapt_places_dim_pixel_near_end_of_window(self):
        encoder = ideal_encoder()
        window = 10e-6
        dim_current = 1e-9
        encoder.adapt_to_range(dim_current, window, margin=0.9)
        time = encoder.ideal_firing_times(np.array([[dim_current]]))[0, 0]
        assert time == pytest.approx(0.9 * window, rel=1e-6)

    def test_adapt_keeps_swing_physical(self):
        encoder = ideal_encoder()
        encoder.adapt_to_range(1e-3, 1.0)  # absurdly bright and slow
        assert encoder.voltage_swing <= encoder.photodiode.reset_voltage * 0.9 + 1e-12
        encoder2 = ideal_encoder()
        encoder2.adapt_to_range(1e-15, 1e-9)  # absurdly dim and fast
        assert encoder2.voltage_swing >= 1e-3 - 1e-12

    def test_adapt_margin_validated(self):
        with pytest.raises(ValueError):
            ideal_encoder().adapt_to_range(1e-9, 1e-5, margin=1.5)

    def test_full_scale_time(self):
        encoder = ideal_encoder()
        assert encoder.full_scale_time(1e-9) == pytest.approx(23e-6, rel=1e-6)
