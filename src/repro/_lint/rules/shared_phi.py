"""REPRO001 — shared-Φ: one builder for every CA measurement matrix.

The ROADMAP contract: every CA measurement matrix — dense *and* the factor
pair ``(R, C)`` — comes from the one batched builder in
:mod:`repro.ca.selection` (``ca_measurement_matrix`` / ``ca_selection_factors``
and their ``selection_*_from_states`` primitives).  A second Φ assembly path
is exactly how the capture and reconstruction ends of the channel drift
apart, so this rule flags the two ways one gets written:

* **outer-XOR assembly** — ``np.bitwise_xor.outer(rows, cols)`` or the
  broadcast form ``np.bitwise_xor(r[:, :, None], c[:, None, :])`` anywhere in
  library code outside ``ca/selection.py``;
* **direct CA-state expansion** — calling ``evolve_states`` on an automaton
  outside ``ca/selection.py``: pattern-batch evolution must ride
  :class:`~repro.ca.selection.CASelectionGenerator` or the module-level
  builders, which own warm-up/step bookkeeping.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro._lint.engine import Finding, ModuleContext
from repro._lint.rules.base import Rule, dotted_name, has_none_subscript

#: The one module allowed to assemble selection masks and expand CA states.
ALLOWED_MODULES = frozenset({"repro/ca/selection.py"})

#: XOR callables whose *outer* product is a Φ row assembly.
_XOR_NAMES = frozenset({"bitwise_xor", "logical_xor"})


class SharedPhiRule(Rule):
    rule_id = "REPRO001"
    contract = (
        "shared-Φ: CA measurement matrices are built only by repro.ca.selection"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library or context.module_rel in ALLOWED_MODULES:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None:
                terminal = name.split(".")
                if (
                    len(terminal) >= 2
                    and terminal[-1] == "outer"
                    and terminal[-2] in _XOR_NAMES
                ):
                    yield self.finding(
                        context,
                        node,
                        "outer-XOR selection-mask assembly outside "
                        "ca/selection.py (a second Φ code path)",
                        hint=(
                            "route through repro.ca.selection."
                            "selection_masks_from_states / ca_measurement_matrix "
                            "so capture and reconstruction share one builder"
                        ),
                    )
                    continue
                if terminal[-1] == "evolve_states":
                    yield self.finding(
                        context,
                        node,
                        "direct CA-state expansion (evolve_states) outside "
                        "ca/selection.py",
                        hint=(
                            "use CASelectionGenerator.next_states / "
                            "ca_selection_factors, which own the warm-up and "
                            "steps-per-sample bookkeeping the receiver replays"
                        ),
                    )
                    continue
                if terminal[-1] in _XOR_NAMES and any(
                    has_none_subscript(arg) for arg in node.args
                ):
                    yield self.finding(
                        context,
                        node,
                        "broadcast-XOR Φ assembly (xor over None-expanded "
                        "factors) outside ca/selection.py",
                        hint=(
                            "expand factors with repro.ca.selection."
                            "selection_masks_from_states instead of a local "
                            "broadcast XOR"
                        ),
                    )


RULE = SharedPhiRule()
