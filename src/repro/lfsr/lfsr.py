"""Fibonacci and Galois LFSR implementations and an LFSR-driven selection generator.

These are the baselines the paper positions its CA against: an LFSR is the
conventional on-chip pseudo-random source for compressive-sampling
measurement matrices [13][14].  The :class:`LFSRSelectionGenerator` mirrors
the interface of :class:`repro.ca.selection.CASelectionGenerator` so the two
strategies are drop-in interchangeable in the sensor simulator and in the
matrix-quality benchmark (E10).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.ca.selection import selection_masks_from_states
from repro.lfsr.polynomials import primitive_taps
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


class FibonacciLFSR:
    """A Fibonacci (external-XOR) linear-feedback shift register.

    Parameters
    ----------
    n_bits:
        Register length.
    taps:
        Tap exponents including ``n_bits`` (e.g. ``(8, 6, 5, 4)``).  Defaults
        to a primitive polynomial for maximal period.
    state:
        Initial register value (non-zero).  Drawn at random when omitted.
    seed:
        RNG seed for the random initial state.
    """

    def __init__(
        self,
        n_bits: int,
        taps: Sequence[int] | None = None,
        *,
        state: int | None = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive("n_bits", n_bits)
        self.n_bits = int(n_bits)
        self.taps: tuple[int, ...] = (
            tuple(taps) if taps is not None else primitive_taps(self.n_bits)
        )
        for tap in self.taps:
            if not 1 <= tap <= self.n_bits:
                raise ValueError(f"tap {tap} outside register of {self.n_bits} bits")
        mask = (1 << self.n_bits) - 1
        if state is None:
            rng = new_rng(seed)
            state = int(rng.integers(1, mask + 1))
        state = int(state) & mask
        if state == 0:
            raise ValueError("LFSR state must be non-zero")
        self._initial_state = state
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents as an unsigned integer."""
        return self._state

    @property
    def period(self) -> int:
        """Maximal period for a primitive polynomial: ``2**n_bits - 1``."""
        return (1 << self.n_bits) - 1

    def reset(self, state: int | None = None) -> None:
        """Reload the initial state (or a new non-zero ``state``)."""
        if state is not None:
            state = int(state) & ((1 << self.n_bits) - 1)
            if state == 0:
                raise ValueError("LFSR state must be non-zero")
            self._initial_state = state
        self._state = self._initial_state

    def step(self) -> int:
        """Advance one cycle and return the output bit (the last stage).

        Stages are numbered 1..n with stage ``n`` as the output; the feedback
        into stage 1 is the XOR of the tapped stages, which realises the
        tabulated primitive polynomial and hence the maximal period.
        """
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        output = (self._state >> (self.n_bits - 1)) & 1
        self._state = ((self._state << 1) | feedback) & ((1 << self.n_bits) - 1)
        return output

    def bits(self, n_bits: int) -> np.ndarray:
        """Return the next ``n_bits`` output bits as a ``uint8`` array."""
        check_positive("n_bits", n_bits)
        return np.array([self.step() for _ in range(int(n_bits))], dtype=np.uint8)

    def state_bits(self) -> np.ndarray:
        """Current register contents as an MSB-first bit array (parallel read-out)."""
        return np.array(
            [(self._state >> shift) & 1 for shift in range(self.n_bits - 1, -1, -1)],
            dtype=np.uint8,
        )


class GaloisLFSR:
    """A Galois (internal-XOR) LFSR — same sequence family, different structure.

    Galois form toggles the tapped bits as the register shifts, which is the
    layout usually preferred in silicon because the XORs are not chained.
    """

    def __init__(
        self,
        n_bits: int,
        taps: Sequence[int] | None = None,
        *,
        state: int | None = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive("n_bits", n_bits)
        self.n_bits = int(n_bits)
        self.taps: tuple[int, ...] = (
            tuple(taps) if taps is not None else primitive_taps(self.n_bits)
        )
        mask = (1 << self.n_bits) - 1
        self._tap_mask = 0
        for tap in self.taps:
            if not 1 <= tap <= self.n_bits:
                raise ValueError(f"tap {tap} outside register of {self.n_bits} bits")
            if tap != self.n_bits:
                self._tap_mask |= 1 << (tap - 1)
        if state is None:
            rng = new_rng(seed)
            state = int(rng.integers(1, mask + 1))
        state = int(state) & mask
        if state == 0:
            raise ValueError("LFSR state must be non-zero")
        self._initial_state = state
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents as an unsigned integer."""
        return self._state

    @property
    def period(self) -> int:
        """Maximal period for a primitive polynomial: ``2**n_bits - 1``."""
        return (1 << self.n_bits) - 1

    def reset(self, state: int | None = None) -> None:
        """Reload the initial state (or a new non-zero ``state``)."""
        if state is not None:
            state = int(state) & ((1 << self.n_bits) - 1)
            if state == 0:
                raise ValueError("LFSR state must be non-zero")
            self._initial_state = state
        self._state = self._initial_state

    def step(self) -> int:
        """Advance one cycle and return the output bit."""
        output = self._state & 1
        self._state >>= 1
        if output:
            self._state ^= self._tap_mask | (1 << (self.n_bits - 1))
        return output

    def bits(self, n_bits: int) -> np.ndarray:
        """Return the next ``n_bits`` output bits as a ``uint8`` array."""
        check_positive("n_bits", n_bits)
        return np.array([self.step() for _ in range(int(n_bits))], dtype=np.uint8)


class LFSRSelectionGenerator:
    """Selection-pattern generator driven by an LFSR instead of the Rule 30 CA.

    Produces, for every compressed sample, a fresh ``rows + cols`` bit window
    from the LFSR output stream; rows and columns are then combined by the
    same XOR construction as the CA generator, so only the pseudo-random
    source differs.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        n_bits: int = 32,
        taps: Iterable[int] | None = None,
        state: int | None = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        self.rows = int(rows)
        self.cols = int(cols)
        self._lfsr = FibonacciLFSR(n_bits, taps, state=state, seed=seed)
        self._initial_state = self._lfsr.state
        self._sample_index = 0

    @property
    def sample_index(self) -> int:
        """Index of the next pattern to be generated."""
        return self._sample_index

    @property
    def seed_value(self) -> int:
        """The LFSR seed — the information the receiver needs to rebuild Φ."""
        return self._initial_state

    def reset(self) -> None:
        """Rewind to the seed."""
        self._lfsr.reset(self._initial_state)
        self._sample_index = 0

    def next_pattern(self) -> np.ndarray:
        """Return the next ``rows x cols`` binary selection mask.

        The LFSR output window plays the role of the CA state — the first
        ``rows`` bits drive the row lines, the rest the columns — and the
        mask expansion rides the one shared XOR builder in
        :func:`repro.ca.selection.selection_masks_from_states` (the shared-Φ
        invariant covers the LFSR path too).
        """
        window = self._lfsr.bits(self.rows + self.cols)
        self._sample_index += 1
        return selection_masks_from_states(
            window[None, :], self.rows, self.cols
        ).reshape(self.rows, self.cols)

    def measurement_matrix(self, n_samples: int) -> np.ndarray:
        """Return Φ as an ``n_samples x (rows*cols)`` binary matrix (from the seed)."""
        check_positive("n_samples", n_samples)
        clone = LFSRSelectionGenerator(
            self.rows,
            self.cols,
            n_bits=self._lfsr.n_bits,
            taps=self._lfsr.taps,
            state=self._initial_state,
        )
        # One contiguous bit pull from the re-seeded clone, expanded in a
        # single batched pass through the shared builder — bit-identical to
        # per-pattern iteration and non-destructive to this generator.
        window = clone._lfsr.bits(int(n_samples) * (self.rows + self.cols))
        states = window.reshape(int(n_samples), self.rows + self.cols)
        return selection_masks_from_states(states, self.rows, self.cols)
