"""Chunked wire protocol for live compressive-sample streams.

The frame codec (:mod:`repro.io.framing`) serialises *one* capture; a camera
node needs to put many of them — tile by tile, frame by frame — onto one
byte channel and let the receiver cut the stream back apart while it is still
flowing.  This module is that layer:

* every transmission unit is a :class:`Chunk`: a fixed 12-byte header (magic,
  chunk type, stream id, sequence number, payload length) followed by the
  payload, so a receiver can re-synchronise and detect truncation without
  decoding payloads;
* :class:`ChunkDecoder` performs incremental parsing: feed it whatever byte
  slices the transport delivers (TCP segments, queue items) and it yields
  complete chunks, buffering partials;
* typed payload codecs for the chunk kinds: the stream header
  (:class:`StreamHeader` — kind, scene/tile geometry, GOP size: everything a
  receiver needs to derive the tile grid and pre-size its reconstruction),
  frame/tile data (grid position + an embedded v2 frame from
  :func:`repro.io.framing.encode_frame`), the per-frame completion barrier,
  and the end-of-stream marker;
* the loss-resilience extension (additive — the original four type bytes and
  their layouts are frozen): :class:`FrameSegment` splits one frame's sample
  vector across several chunks so a lost chunk costs a *row subset* of Φ
  instead of the frame, :class:`FrameParity` is an XOR erasure-code chunk
  over a frame's segment group, and the two **control payloads**
  (:class:`ControlAck`, :class:`RateAdvice`) flow receiver→node over the
  feedback path to close the :class:`~repro.stream.node.BitrateGovernor`
  loop;
* the session-durability extension (additive again — types 9 and 10):
  :class:`NackRequest` carries a missing-sequence list receiver→node down
  the feedback path (the selective-repeat trigger), and
  :class:`SessionResume` lets a reconnecting node re-attach a live stream
  id on a fresh connection, announcing where its forward sequence and frame
  counters stand so the hub can splice the new connection onto the parked
  session state;
* :func:`advance_seed_state` — the GOP resynchronisation rule.  The
  free-running selection CA overlaps consecutive frames by one pattern, so
  frame ``k+1``'s seed is frame ``k``'s seed evolved through ``k``'s warm-up
  and its ``n_samples - 1`` pattern steps.  A GOP therefore carries the
  128-bit seed once (its keyframe); every later frame ships samples only and
  the receiver walks the chain.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.ca.automaton import ElementaryCellularAutomaton
from repro.ca.rules import RuleTable

#: First byte of every chunk ("CC": compressed chunk).
CHUNK_MAGIC = 0xCC
#: Version of the chunk layer itself (independent of the frame versions).
PROTOCOL_VERSION = 1
#: struct layout of the chunk header: magic, type, stream id, sequence, length.
_CHUNK_HEADER = struct.Struct(">BBHII")
#: Hard cap on a single chunk payload (a 64x64 v2 frame is ~10 kB; 16 MiB is
#: far beyond any legal frame and bounds a corrupt length field).
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

#: Stream kinds announced by the stream header.
STREAM_KINDS = ("frame", "video", "tiled", "tiled-video")


class StreamProtocolError(ValueError):
    """A malformed, out-of-order or impossible chunk was encountered."""


class ChunkType(enum.IntEnum):
    """Discriminator carried in every chunk header.

    Types 1–4 are the frozen original protocol; 5–8 are the additive
    loss-resilience extension (segments, parity, and the receiver→node
    control payloads); 9–10 are the additive session-durability extension
    (NACK-driven selective repeat and reconnect-with-resume).  A v1 stream
    never contains types above 4, so every previously-written stream still
    decodes unchanged.
    """

    STREAM_START = 1
    FRAME_DATA = 2
    FRAME_COMPLETE = 3
    STREAM_END = 4
    FRAME_SEGMENT = 5
    FRAME_PARITY = 6
    CONTROL_ACK = 7
    CONTROL_RATE = 8
    CONTROL_NACK = 9
    SESSION_RESUME = 10


#: Chunk types that flow receiver → node on the feedback path (never on the
#: forward data path).
CONTROL_CHUNK_TYPES = (
    ChunkType.CONTROL_ACK,
    ChunkType.CONTROL_RATE,
    ChunkType.CONTROL_NACK,
)

#: Valid chunk-type byte values (what the resynchronising decoder scans for).
_CHUNK_TYPE_VALUES = frozenset(int(member) for member in ChunkType)


@dataclass(frozen=True)
class Chunk:
    """One wire chunk: typed header plus opaque payload bytes."""

    chunk_type: ChunkType
    stream_id: int
    sequence: int
    payload: bytes

    @property
    def n_bytes(self) -> int:
        """Size of the chunk on the wire, header included."""
        return _CHUNK_HEADER.size + len(self.payload)


def encode_chunk(chunk: Chunk) -> bytes:
    """Serialise a :class:`Chunk` (header + payload)."""
    if len(chunk.payload) > MAX_PAYLOAD_BYTES:
        raise StreamProtocolError(
            f"chunk payload of {len(chunk.payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap"
        )
    return (
        _CHUNK_HEADER.pack(
            CHUNK_MAGIC,
            int(chunk.chunk_type),
            chunk.stream_id,
            chunk.sequence,
            len(chunk.payload),
        )
        + chunk.payload
    )


class ChunkDecoder:
    """Incremental chunk parser over an arbitrary byte-slice stream.

    Transports deliver bytes in whatever granularity they like (a TCP read
    may end mid-header); :meth:`feed` buffers partial input and returns every
    chunk completed so far.  By default malformed input raises
    :class:`StreamProtocolError` — the decoder never resynchronises silently.
    With ``resync=True`` (the lossy-channel mode) a corrupt header instead
    triggers a scan for the next plausible chunk boundary: the skipped bytes
    are counted in :attr:`bytes_skipped`/:attr:`resync_count` and decoding
    continues, so one truncated chunk costs its neighbours at worst, never
    the connection.
    """

    def __init__(self, *, resync: bool = False) -> None:
        self._buffer = bytearray()
        self.resync = bool(resync)
        #: Number of times a corrupt header forced a boundary scan.
        self.resync_count = 0
        #: Total bytes discarded while resynchronising.
        self.bytes_skipped = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete chunk."""
        return len(self._buffer)

    def _resynchronise(self) -> bool:
        """Drop bytes up to the next plausible header; False if none buffered."""
        self.resync_count += 1
        for offset in range(1, len(self._buffer) - _CHUNK_HEADER.size + 1):
            magic, chunk_type, _, _, length = _CHUNK_HEADER.unpack_from(
                self._buffer, offset
            )
            if (
                magic == CHUNK_MAGIC
                and chunk_type in _CHUNK_TYPE_VALUES
                and length <= MAX_PAYLOAD_BYTES
            ):
                self.bytes_skipped += offset
                del self._buffer[:offset]
                return True
        # No candidate header: keep a headers-worth of tail (a boundary may
        # straddle the next feed) and discard the rest.
        keep = min(len(self._buffer), _CHUNK_HEADER.size - 1)
        self.bytes_skipped += len(self._buffer) - keep
        del self._buffer[: len(self._buffer) - keep]
        return False

    def feed(self, data: bytes) -> list[Chunk]:
        """Absorb ``data`` and return the chunks it completed."""
        self._buffer.extend(data)
        chunks: list[Chunk] = []
        while len(self._buffer) >= _CHUNK_HEADER.size:
            magic, chunk_type, stream_id, sequence, length = _CHUNK_HEADER.unpack_from(
                self._buffer
            )
            if magic != CHUNK_MAGIC:
                if self.resync:
                    if self._resynchronise():
                        continue
                    break
                raise StreamProtocolError(
                    f"bad chunk magic 0x{magic:02X} (stream corrupt or misaligned)"
                )
            try:
                chunk_type = ChunkType(chunk_type)
            except ValueError as error:
                if self.resync:
                    if self._resynchronise():
                        continue
                    break
                raise StreamProtocolError(
                    f"unknown chunk type {chunk_type}"
                ) from error
            if length > MAX_PAYLOAD_BYTES:
                if self.resync:
                    if self._resynchronise():
                        continue
                    break
                raise StreamProtocolError(
                    f"chunk announces an impossible payload of {length} bytes"
                )
            end = _CHUNK_HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_CHUNK_HEADER.size : end])
            del self._buffer[:end]
            chunks.append(
                Chunk(
                    chunk_type=chunk_type,
                    stream_id=stream_id,
                    sequence=sequence,
                    payload=payload,
                )
            )
        return chunks


# ---------------------------------------------------------------- payloads
@dataclass(frozen=True)
class StreamHeader:
    """Stream-level announcement: everything needed before the first frame.

    Attributes
    ----------
    kind:
        One of :data:`STREAM_KINDS`.  ``frame``/``video`` are single-sensor
        streams (one frame per :class:`~repro.stream.protocol.FrameData`
        chunk); the ``tiled`` kinds ship one chunk per mosaic tile and the
        receiver derives the grid from the two shapes below.
    scene_shape, tile_shape:
        Scene dimensions and nominal tile dimensions.  For single-sensor
        streams the two coincide.
    gop_size:
        Frames per group-of-pictures: the CA seed rides only on each GOP's
        first frame (``0``/``1`` mean every frame is a keyframe).
    n_frames:
        Announced sequence length, ``0`` when unbounded.
    """

    kind: str
    scene_shape: tuple[int, int]
    tile_shape: tuple[int, int]
    gop_size: int = 1
    n_frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STREAM_KINDS:
            raise StreamProtocolError(f"unknown stream kind {self.kind!r}")

    @property
    def tiled(self) -> bool:
        """True for mosaic streams (one chunk per tile)."""
        return self.kind in ("tiled", "tiled-video")


_STREAM_START = struct.Struct(">BBHHHHHI")
# 16-bit grid positions: anything tile_grid can produce from the 16-bit
# scene/tile shapes of the stream header is representable.
_FRAME_DATA = struct.Struct(">IHHB")
_FRAME_COMPLETE = struct.Struct(">IH")
_STREAM_END = struct.Struct(">I")


def encode_stream_header(header: StreamHeader) -> bytes:
    """Payload of a :data:`ChunkType.STREAM_START` chunk."""
    return _STREAM_START.pack(
        PROTOCOL_VERSION,
        STREAM_KINDS.index(header.kind),
        header.scene_shape[0],
        header.scene_shape[1],
        header.tile_shape[0],
        header.tile_shape[1],
        header.gop_size,
        header.n_frames,
    )


def decode_stream_header(payload: bytes) -> StreamHeader:
    """Inverse of :func:`encode_stream_header`."""
    try:
        version, kind, srows, scols, trows, tcols, gop, n_frames = _STREAM_START.unpack(
            payload
        )
    except struct.error as error:
        raise StreamProtocolError(f"malformed stream header: {error}") from error
    if version != PROTOCOL_VERSION:
        raise StreamProtocolError(f"unsupported stream protocol version {version}")
    if kind >= len(STREAM_KINDS):
        raise StreamProtocolError(f"unknown stream kind index {kind}")
    return StreamHeader(
        kind=STREAM_KINDS[kind],
        scene_shape=(srows, scols),
        tile_shape=(trows, tcols),
        gop_size=gop,
        n_frames=n_frames,
    )


@dataclass(frozen=True)
class FrameData:
    """One frame-data payload: grid position plus an embedded encoded frame.

    ``keyframe`` marks frames that carry their CA seed inline; non-keyframes
    are seedless v2 frames decoded against the receiver's seed chain.
    """

    frame_index: int
    grid_row: int
    grid_col: int
    keyframe: bool
    frame_bytes: bytes


def encode_frame_data(data: FrameData) -> bytes:
    """Payload of a :data:`ChunkType.FRAME_DATA` chunk."""
    return (
        _FRAME_DATA.pack(
            data.frame_index, data.grid_row, data.grid_col, int(data.keyframe)
        )
        + data.frame_bytes
    )


def decode_frame_data(payload: bytes) -> FrameData:
    """Inverse of :func:`encode_frame_data`."""
    if len(payload) < _FRAME_DATA.size:
        raise StreamProtocolError(
            f"frame-data payload of {len(payload)} bytes is shorter than its "
            f"{_FRAME_DATA.size}-byte header"
        )
    frame_index, grid_row, grid_col, keyframe = _FRAME_DATA.unpack_from(payload)
    return FrameData(
        frame_index=frame_index,
        grid_row=grid_row,
        grid_col=grid_col,
        keyframe=bool(keyframe),
        frame_bytes=payload[_FRAME_DATA.size :],
    )


def encode_frame_complete(frame_index: int, n_tiles: int) -> bytes:
    """Payload of a :data:`ChunkType.FRAME_COMPLETE` chunk."""
    return _FRAME_COMPLETE.pack(frame_index, n_tiles)


def decode_frame_complete(payload: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_frame_complete` → ``(frame_index, n_tiles)``."""
    try:
        return _FRAME_COMPLETE.unpack(payload)
    except struct.error as error:
        raise StreamProtocolError(f"malformed frame-complete payload: {error}") from error


def encode_stream_end(n_frames: int) -> bytes:
    """Payload of a :data:`ChunkType.STREAM_END` chunk."""
    return _STREAM_END.pack(n_frames)


def decode_stream_end(payload: bytes) -> int:
    """Inverse of :func:`encode_stream_end` → total frames sent."""
    try:
        return _STREAM_END.unpack(payload)[0]
    except struct.error as error:
        raise StreamProtocolError(f"malformed stream-end payload: {error}") from error


# ------------------------------------------- loss-resilience payloads (5–8)
# Segment prefix: frame index, grid position, keyframe flag, segment index,
# segment count, first sample index, samples in this segment, length of the
# replicated frame prefix, CRC-32 of the body (prefix + packed samples).
_FRAME_SEGMENT = struct.Struct(">IHHBBBIIHI")
# Parity prefix: frame index, grid position, segment-group size; followed by
# one u32 per segment (the encoded payload lengths) and the XOR body.
_FRAME_PARITY = struct.Struct(">IHHB")
_PARITY_LENGTH = struct.Struct(">I")
# Receiver→node delivery report for one finalised frame.
_CONTROL_ACK = struct.Struct(">IHHHII")
# Receiver→node explicit rate advice.
_CONTROL_RATE = struct.Struct(">IId")


@dataclass(frozen=True)
class FrameSegment:
    """One contiguous slice of a frame's sample vector, independently decodable.

    Every segment replicates the frame's encoded *prefix* (header, optional
    statistics block, keyframe seed — everything
    :func:`repro.io.framing.encode_frame` emits before the packed samples),
    so any surviving segment carries enough to rebuild Φ; the samples of lost
    segments become masked rows.  ``sample_bytes`` is the slice bit-packed
    on its own (:func:`repro.io.bitstream.pack_samples`), so segments unpack
    independently of their neighbours.
    """

    frame_index: int
    grid_row: int
    grid_col: int
    keyframe: bool
    segment_index: int
    n_segments: int
    start_sample: int
    n_samples: int
    prefix_bytes: bytes
    sample_bytes: bytes


def encode_frame_segment(segment: FrameSegment) -> bytes:
    """Payload of a :data:`ChunkType.FRAME_SEGMENT` chunk."""
    if not 0 <= segment.segment_index < segment.n_segments <= 255:
        raise StreamProtocolError(
            f"segment index {segment.segment_index} outside its group of "
            f"{segment.n_segments}"
        )
    body = segment.prefix_bytes + segment.sample_bytes
    return (
        _FRAME_SEGMENT.pack(
            segment.frame_index,
            segment.grid_row,
            segment.grid_col,
            int(segment.keyframe),
            segment.segment_index,
            segment.n_segments,
            segment.start_sample,
            segment.n_samples,
            len(segment.prefix_bytes),
            zlib.crc32(body),
        )
        + body
    )


def decode_frame_segment(payload: bytes) -> FrameSegment:
    """Inverse of :func:`encode_frame_segment`.

    The CRC guards the body: a segment whose tail was corrupted in flight
    (e.g. a truncated chunk that swallowed its neighbour's header) raises
    here instead of delivering garbage samples into the solve.
    """
    if len(payload) < _FRAME_SEGMENT.size:
        raise StreamProtocolError(
            f"frame-segment payload of {len(payload)} bytes is shorter than "
            f"its {_FRAME_SEGMENT.size}-byte header"
        )
    (
        frame_index,
        grid_row,
        grid_col,
        keyframe,
        segment_index,
        n_segments,
        start_sample,
        n_samples,
        prefix_length,
        checksum,
    ) = _FRAME_SEGMENT.unpack_from(payload)
    body = payload[_FRAME_SEGMENT.size :]
    if segment_index >= n_segments:
        raise StreamProtocolError(
            f"segment index {segment_index} outside its group of {n_segments}"
        )
    if prefix_length > len(body):
        raise StreamProtocolError(
            f"frame segment announces a {prefix_length}-byte prefix but "
            f"carries only {len(body)} body bytes"
        )
    if zlib.crc32(body) != checksum:
        raise StreamProtocolError(
            f"frame segment {segment_index} of frame {frame_index} failed "
            "its checksum (payload corrupted in flight)"
        )
    return FrameSegment(
        frame_index=frame_index,
        grid_row=grid_row,
        grid_col=grid_col,
        keyframe=bool(keyframe),
        segment_index=segment_index,
        n_segments=n_segments,
        start_sample=start_sample,
        n_samples=n_samples,
        prefix_bytes=body[:prefix_length],
        sample_bytes=body[prefix_length:],
    )


@dataclass(frozen=True)
class FrameParity:
    """XOR erasure code across one frame's segment group.

    ``parity_bytes`` is the bytewise XOR of the group's encoded segment
    payloads, each zero-padded to the longest; ``payload_lengths`` records
    the true lengths so a single missing segment can be recovered exactly
    (XOR the parity with every surviving payload, truncate to the missing
    length).  One parity chunk repairs **one** lost segment per frame —
    the classic RAID-4 trade.
    """

    frame_index: int
    grid_row: int
    grid_col: int
    payload_lengths: tuple[int, ...]
    parity_bytes: bytes


def xor_payloads(payloads: list[bytes]) -> bytes:
    """Bytewise XOR of byte strings, zero-padded to the longest."""
    if not payloads:
        raise StreamProtocolError("cannot XOR an empty payload group")
    width = max(len(payload) for payload in payloads)
    accumulator = np.zeros(width, dtype=np.uint8)
    for payload in payloads:
        padded = np.frombuffer(payload.ljust(width, b"\x00"), dtype=np.uint8)
        accumulator ^= padded
    return accumulator.tobytes()


def build_frame_parity(
    frame_index: int,
    grid_row: int,
    grid_col: int,
    segment_payloads: list[bytes],
) -> FrameParity:
    """Compute the parity chunk for a frame's encoded segment payloads."""
    return FrameParity(
        frame_index=frame_index,
        grid_row=grid_row,
        grid_col=grid_col,
        payload_lengths=tuple(len(payload) for payload in segment_payloads),
        parity_bytes=xor_payloads(segment_payloads),
    )


def recover_missing_payload(
    parity: FrameParity, surviving: dict[int, bytes], missing_index: int
) -> bytes:
    """Rebuild exactly one missing segment payload from the parity chunk."""
    if len(surviving) != len(parity.payload_lengths) - 1:
        raise StreamProtocolError(
            f"parity recovery needs all {len(parity.payload_lengths) - 1} "
            f"surviving segments, got {len(surviving)}"
        )
    recovered = xor_payloads([parity.parity_bytes, *surviving.values()])
    return recovered[: parity.payload_lengths[missing_index]]


def encode_frame_parity(parity: FrameParity) -> bytes:
    """Payload of a :data:`ChunkType.FRAME_PARITY` chunk."""
    if not 1 <= len(parity.payload_lengths) <= 255:
        raise StreamProtocolError(
            f"parity group of {len(parity.payload_lengths)} segments "
            "(must be 1–255)"
        )
    lengths = b"".join(
        _PARITY_LENGTH.pack(length) for length in parity.payload_lengths
    )
    return (
        _FRAME_PARITY.pack(
            parity.frame_index,
            parity.grid_row,
            parity.grid_col,
            len(parity.payload_lengths),
        )
        + lengths
        + parity.parity_bytes
    )


def decode_frame_parity(payload: bytes) -> FrameParity:
    """Inverse of :func:`encode_frame_parity`."""
    if len(payload) < _FRAME_PARITY.size:
        raise StreamProtocolError(
            f"frame-parity payload of {len(payload)} bytes is shorter than "
            f"its {_FRAME_PARITY.size}-byte header"
        )
    frame_index, grid_row, grid_col, n_segments = _FRAME_PARITY.unpack_from(payload)
    if n_segments < 1:
        raise StreamProtocolError("frame-parity chunk announces an empty group")
    offset = _FRAME_PARITY.size
    end = offset + n_segments * _PARITY_LENGTH.size
    if len(payload) < end:
        raise StreamProtocolError(
            f"frame-parity chunk truncated inside its {n_segments}-entry "
            "length table"
        )
    lengths = tuple(
        _PARITY_LENGTH.unpack_from(payload, offset + i * _PARITY_LENGTH.size)[0]
        for i in range(n_segments)
    )
    parity_bytes = payload[end:]
    if len(parity_bytes) < max(lengths):
        raise StreamProtocolError(
            f"frame-parity body of {len(parity_bytes)} bytes cannot cover "
            f"its longest segment of {max(lengths)}"
        )
    return FrameParity(
        frame_index=frame_index,
        grid_row=grid_row,
        grid_col=grid_col,
        payload_lengths=lengths,
        parity_bytes=parity_bytes,
    )


@dataclass(frozen=True)
class ControlAck:
    """Receiver→node delivery report for one finalised frame.

    The closed-loop :class:`~repro.stream.node.BitrateGovernor` reads these:
    a frame whose ``n_samples_received`` fell short of ``n_samples_expected``
    is the AIMD *decrease* signal, a clean frame the *increase* signal.
    ``n_recovered_chunks`` counts parity repairs (the chunks were lost on the
    wire but their samples were not).
    """

    frame_index: int
    n_expected_chunks: int
    n_received_chunks: int
    n_recovered_chunks: int
    n_samples_expected: int
    n_samples_received: int

    @property
    def clean(self) -> bool:
        """True when every expected sample of the frame was delivered.

        An ack whose expectation is unknown (``n_samples_expected == 0`` —
        the receiver could not even parse how many samples the frame
        carried) is never clean: the governor must treat it as loss.
        """
        return (
            self.n_samples_expected > 0
            and self.n_samples_received >= self.n_samples_expected
        )

    @property
    def loss_fraction(self) -> float:
        """Fraction of the frame's samples lost in flight."""
        if self.n_samples_expected <= 0:
            return 0.0
        return 1.0 - self.n_samples_received / self.n_samples_expected


def encode_control_ack(ack: ControlAck) -> bytes:
    """Payload of a :data:`ChunkType.CONTROL_ACK` chunk."""
    return _CONTROL_ACK.pack(
        ack.frame_index,
        ack.n_expected_chunks,
        ack.n_received_chunks,
        ack.n_recovered_chunks,
        ack.n_samples_expected,
        ack.n_samples_received,
    )


def decode_control_ack(payload: bytes) -> ControlAck:
    """Inverse of :func:`encode_control_ack`."""
    try:
        (
            frame_index,
            n_expected_chunks,
            n_received_chunks,
            n_recovered_chunks,
            n_samples_expected,
            n_samples_received,
        ) = _CONTROL_ACK.unpack(payload)
    except struct.error as error:
        raise StreamProtocolError(f"malformed control-ack payload: {error}") from error
    if n_received_chunks > n_expected_chunks:
        raise StreamProtocolError(
            f"control ack reports {n_received_chunks} received chunks of "
            f"{n_expected_chunks} expected"
        )
    return ControlAck(
        frame_index=frame_index,
        n_expected_chunks=n_expected_chunks,
        n_received_chunks=n_received_chunks,
        n_recovered_chunks=n_recovered_chunks,
        n_samples_expected=n_samples_expected,
        n_samples_received=n_samples_received,
    )


@dataclass(frozen=True)
class RateAdvice:
    """Receiver→node explicit rate advice: "the channel carried this many".

    Emitted alongside the ack when a frame saw loss — ``advised_samples`` is
    the sample count that actually made it through, a direct measurement of
    the channel's current capacity the governor can clamp to without probing
    its way down multiplicatively.
    """

    frame_index: int
    advised_samples: int
    loss_fraction: float


def encode_rate_advice(advice: RateAdvice) -> bytes:
    """Payload of a :data:`ChunkType.CONTROL_RATE` chunk."""
    return _CONTROL_RATE.pack(
        advice.frame_index, advice.advised_samples, advice.loss_fraction
    )


def decode_rate_advice(payload: bytes) -> RateAdvice:
    """Inverse of :func:`encode_rate_advice`."""
    try:
        frame_index, advised_samples, loss_fraction = _CONTROL_RATE.unpack(payload)
    except struct.error as error:
        raise StreamProtocolError(
            f"malformed rate-advice payload: {error}"
        ) from error
    if not 0.0 <= loss_fraction <= 1.0:
        raise StreamProtocolError(
            f"rate advice carries an impossible loss fraction {loss_fraction}"
        )
    return RateAdvice(
        frame_index=frame_index,
        advised_samples=advised_samples,
        loss_fraction=float(loss_fraction),
    )


# ------------------------------------- session-durability payloads (9–10)
# Receiver→node selective-repeat request: the frame whose deadline fired and
# the count of missing-sequence entries (one u32 each) that follow.
_CONTROL_NACK = struct.Struct(">IH")
_NACK_SEQUENCE = struct.Struct(">I")
# Node→hub re-attach announcement on a fresh connection: the node's next
# forward sequence number, the last frame index it sent, and the reconnect
# epoch (1 = first resume).
_SESSION_RESUME = struct.Struct(">IIH")

#: Cap on missing sequences one NACK may carry.  A deeper loss backlog than
#: this is not selective-repeat territory (the retransmission buffer will
#: not cover it either); later NACKs pick up the remainder.
MAX_NACK_SEQUENCES = 64


@dataclass(frozen=True)
class NackRequest:
    """Receiver→node request to retransmit specific lost chunks.

    ``frame_index`` names the frame whose reassembly deadline triggered the
    request (informational — the node answers by *sequence*, not by frame);
    ``sequences`` are forward-path sequence numbers the receiver's gap
    tracking proved missing.  The node replies by re-sending whatever it
    still holds in its retransmission buffer, verbatim and under the
    original sequence numbers, so the session's reorder reclaim path absorbs
    the repairs with no new FSM states.
    """

    frame_index: int
    sequences: tuple[int, ...]


def encode_nack_request(request: NackRequest) -> bytes:
    """Payload of a :data:`ChunkType.CONTROL_NACK` chunk."""
    if not 1 <= len(request.sequences) <= MAX_NACK_SEQUENCES:
        raise StreamProtocolError(
            f"a NACK must carry 1–{MAX_NACK_SEQUENCES} missing sequences, "
            f"got {len(request.sequences)}"
        )
    return _CONTROL_NACK.pack(request.frame_index, len(request.sequences)) + b"".join(
        _NACK_SEQUENCE.pack(sequence) for sequence in request.sequences
    )


def decode_nack_request(payload: bytes) -> NackRequest:
    """Inverse of :func:`encode_nack_request`."""
    try:
        frame_index, count = _CONTROL_NACK.unpack_from(payload)
    except struct.error as error:
        raise StreamProtocolError(f"malformed NACK payload: {error}") from error
    if count < 1:
        raise StreamProtocolError("NACK chunk announces an empty sequence list")
    expected = _CONTROL_NACK.size + count * _NACK_SEQUENCE.size
    if len(payload) != expected:
        raise StreamProtocolError(
            f"NACK chunk announces {count} sequences ({expected} bytes) but "
            f"carries {len(payload)}"
        )
    sequences = tuple(
        _NACK_SEQUENCE.unpack_from(payload, _CONTROL_NACK.size + i * _NACK_SEQUENCE.size)[0]
        for i in range(count)
    )
    return NackRequest(frame_index=frame_index, sequences=sequences)


@dataclass(frozen=True)
class SessionResume:
    """Node→hub announcement re-attaching a stream id on a fresh connection.

    Sent as the *first* chunk of a reconnected transport, under the node's
    normal (monotonic) forward sequence numbering.  ``next_sequence`` is the
    sequence the resume chunk itself occupies — the receiving session's gap
    tracking then marks everything lost in flight as missing, and the
    node's follow-up retransmission of its unacknowledged buffer reclaims
    them.  ``frame_index`` is the last frame the node started sending;
    ``epoch`` counts reconnects (1 = first resume).
    """

    next_sequence: int
    frame_index: int
    epoch: int = 1


def encode_session_resume(resume: SessionResume) -> bytes:
    """Payload of a :data:`ChunkType.SESSION_RESUME` chunk."""
    if resume.epoch < 1:
        raise StreamProtocolError(
            f"session resume epoch must be >= 1, got {resume.epoch}"
        )
    return _SESSION_RESUME.pack(resume.next_sequence, resume.frame_index, resume.epoch)


def decode_session_resume(payload: bytes) -> SessionResume:
    """Inverse of :func:`encode_session_resume`."""
    try:
        next_sequence, frame_index, epoch = _SESSION_RESUME.unpack(payload)
    except struct.error as error:
        raise StreamProtocolError(
            f"malformed session-resume payload: {error}"
        ) from error
    if epoch < 1:
        raise StreamProtocolError(
            f"session resume carries an impossible epoch {epoch}"
        )
    return SessionResume(
        next_sequence=next_sequence, frame_index=frame_index, epoch=epoch
    )


# ------------------------------------------------------------ seed chaining
def advance_seed_state(
    seed_state: np.ndarray,
    rule: int | RuleTable,
    *,
    n_samples: int,
    steps_per_sample: int = 1,
    warmup_steps: int = 0,
) -> np.ndarray:
    """Derive the next frame's CA seed from the current frame's.

    The hardware CA free-runs across frames: a frame's last selection pattern
    *is* the next frame's seed (with no further warm-up — the register is
    already mixed).  Given frame ``k``'s seed and header parameters, the next
    seed is the state after ``warmup_steps`` plus ``n_samples - 1`` pattern
    advances of ``steps_per_sample`` generations each.  This is the receiver
    side of the seed-once GOP encoding: only keyframes spend channel bits on
    the seed, every other frame's measurement matrix is derived by walking
    this chain — and it matches
    :meth:`repro.sensor.imager.CompressiveImager.capture_batch` exactly (the
    streaming tests pin the chain against captured ``seed_state`` values).
    """
    seed_state = np.asarray(seed_state)
    automaton = ElementaryCellularAutomaton(
        seed_state.size, rule, seed_state=seed_state
    )
    total_steps = int(warmup_steps) + (int(n_samples) - 1) * int(steps_per_sample)
    if total_steps:
        automaton.step(total_steps)
    return automaton.state
