"""Tests for the parametric power/area model (Table II regeneration)."""

import pytest

from repro.sensor.config import SensorConfig
from repro.sensor.power import PAPER_TABLE_II, PowerAreaModel, chip_feature_summary


class TestPowerModel:
    def test_total_is_sum_of_blocks(self):
        model = PowerAreaModel()
        breakdown = model.power_breakdown(SensorConfig())
        blocks = {k: v for k, v in breakdown.items() if k != "total"}
        assert breakdown["total"] == pytest.approx(sum(blocks.values()))

    def test_default_power_below_paper_bound(self):
        """Table II predicts < 100 mW for the prototype."""
        power = PowerAreaModel().total_power(SensorConfig())
        assert power < 100e-3

    def test_power_scales_with_array_size(self):
        model = PowerAreaModel()
        small = model.total_power(SensorConfig(rows=32, cols=32))
        large = model.total_power(SensorConfig(rows=64, cols=64))
        assert large > small

    def test_power_scales_with_clock(self):
        model = PowerAreaModel()
        slow = model.total_power(SensorConfig(clock_frequency=12e6))
        fast = model.total_power(SensorConfig(clock_frequency=48e6))
        assert fast > slow

    def test_pixel_array_dominates(self):
        """Comparator bias across 4096 pixels is the dominant contribution."""
        breakdown = PowerAreaModel().power_breakdown(SensorConfig())
        assert breakdown["pixel_array"] == max(
            v for k, v in breakdown.items() if k != "total"
        )

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PowerAreaModel(pixel_static_power=-1.0)


class TestAreaModel:
    def test_die_larger_than_array(self):
        model = PowerAreaModel()
        config = SensorConfig()
        area = model.area_breakdown(config)
        assert area["die_width"] > config.array_width
        assert area["die_height"] > config.array_height

    def test_die_size_in_same_ballpark_as_prototype(self):
        """The estimate should land within ~40 % of the 3.17 x 2.23 mm die."""
        area = PowerAreaModel().area_breakdown(SensorConfig())
        paper_area = 3.174e-3 * 2.227e-3
        assert 0.6 * paper_area < area["die_area"] < 1.4 * paper_area


class TestChipFeatureSummary:
    def test_architectural_rows_match_paper_exactly(self):
        summary = chip_feature_summary()
        assert summary["technology"] == PAPER_TABLE_II["technology"]
        assert summary["resolution"] == PAPER_TABLE_II["resolution"]
        assert summary["pixel_size_um"] == PAPER_TABLE_II["pixel_size_um"]
        assert summary["fill_factor_percent"] == pytest.approx(
            PAPER_TABLE_II["fill_factor_percent"]
        )
        assert summary["frame_rate_fps"] == PAPER_TABLE_II["frame_rate_fps"]
        assert summary["clock_frequency_mhz"] == PAPER_TABLE_II["clock_frequency_mhz"]
        assert summary["photodiode_type"] == PAPER_TABLE_II["photodiode_type"]

    def test_max_sample_rate_close_to_50khz(self):
        summary = chip_feature_summary()
        assert summary["max_compressed_sample_rate_khz"] == pytest.approx(49.152)

    def test_power_prediction_below_bound(self):
        summary = chip_feature_summary()
        assert summary["predicted_power_mw"] < PAPER_TABLE_II["predicted_power_mw"]

    def test_includes_derived_bit_width(self):
        assert chip_feature_summary()["compressed_sample_bits"] == 20
