"""The pixel-selection XOR unit (``V_2`` in Fig. 1).

A pixel contributes to the current compressed sample iff its row and column
selection signals differ: ``selected = S_i XOR S_j``.  The schematic places
this 6-transistor XOR right after the comparator so that, in unselected
pixels, the activation front does not propagate into the event logic — a
power saving the paper calls out explicitly.  Functionally, ``V_2`` is stuck
high when the pixel is deselected and follows ``NOT V_1`` when selected.
"""

from __future__ import annotations

import numpy as np


def xor_select(row_signal, col_signal):
    """Selection decision of the XOR gate: 1 when ``S_i != S_j``.

    Accepts scalars or aligned arrays and returns the same shape.
    """
    row_signal = np.asarray(row_signal)
    col_signal = np.asarray(col_signal)
    if not np.isin(row_signal, (0, 1)).all() or not np.isin(col_signal, (0, 1)).all():
        raise ValueError("selection signals must be binary")
    result = np.bitwise_xor(row_signal.astype(np.uint8), col_signal.astype(np.uint8))
    if result.ndim == 0:
        return int(result)
    return result


def v2_output(v1: int, row_signal: int, col_signal: int) -> int:
    """Logic level of node ``V_2`` given ``V_1`` and the selection signals.

    ``V_2`` is stuck at logic '1' (``V_dd``) when the pixel is deselected
    (``S_i == S_j``); when selected it is the inverse of ``V_1``, so the
    comparator's rising edge becomes the active-low edge the event latch
    responds to.
    """
    for name, value in (("v1", v1), ("row_signal", row_signal), ("col_signal", col_signal)):
        if value not in (0, 1):
            raise ValueError(f"{name} must be 0 or 1, got {value}")
    if row_signal == col_signal:
        return 1
    return 1 - v1


def selection_density(mask: np.ndarray) -> float:
    """Fraction of pixels selected by a mask (the XOR construction targets 1/2)."""
    mask = np.asarray(mask)
    if mask.size == 0:
        raise ValueError("mask must be non-empty")
    return float(np.count_nonzero(mask) / mask.size)
