"""Frame-level encoding: everything the receiver needs, nothing more.

A transmitted compressive frame consists of a small fixed header (array
geometry, pixel depth, CA rule and sequencing parameters, sample count), the
CA seed (``rows + cols`` bits) and the bit-packed compressed samples.  The
measurement matrix itself is never part of the payload — that is the
architectural point of the paper.

Two wire versions coexist:

* **v1** — the original format: header, seed, samples.  Its byte layout is
  frozen; v1 streams produced by earlier releases decode unchanged.
* **v2** — the streaming format used by :mod:`repro.stream`.  It adds a flags
  byte and two optional sections: a *capture-statistics block* (fidelity,
  event/LSB counters — so the receiver can weigh a frame without a side
  channel) and the option to **omit the CA seed**.  A seedless frame is how a
  video GOP carries the seed once: the free-running CA overlaps consecutive
  frames by one pattern, so the receiver re-derives frame ``k+1``'s seed from
  frame ``k``'s (see :func:`advance_seed_state` in
  :mod:`repro.stream.protocol`) and the channel never pays for it again.

Decoding failures raise typed errors (:class:`FramingError` and subclasses),
never garbage frames: truncated payloads, wrong magic, unknown versions and
header/configuration mismatches are all distinguished.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.io.bitstream import BitReader, BitWriter, pack_samples, unpack_samples
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame
from repro.utils.validation import check_positive

#: Magic number marking the start of an encoded frame ("CS").
FRAME_MAGIC = 0xC5
#: Highest wire version this module encodes and decodes.
FRAME_VERSION = 2
#: Wire versions :func:`decode_frame` accepts.
SUPPORTED_VERSIONS = (1, 2)

#: v2 flags-byte bits.
FLAG_HAS_SEED = 0x01
FLAG_HAS_STATS = 0x02

#: Fixed header fields shared by both versions (everything between the
#: version byte and the seed), as ``(name, bit width)`` pairs.
_HEADER_FIELDS = (
    ("rows", 12),
    ("cols", 12),
    ("pixel_bits", 5),
    ("sample_bits", 6),
    ("rule_number", 8),
    ("steps_per_sample", 8),
    ("warmup_steps", 8),
    ("n_samples", 24),
)
_HEADER_BITS = sum(width for _, width in _HEADER_FIELDS)

#: Numeric capture-statistics keys carried by the v2 stats block, in wire
#: order.  Each is one presence bit, one int/float type bit and 64 value
#: bits; integers round-trip exactly and floats are IEEE-754 doubles.
STAT_KEYS = (
    "lsb_error_probability",
    "n_lsb_errors",
    "n_lost_events",
    "n_queued_events",
    "max_queue_delay",
    "n_saturated_pixels",
)
#: Categorical capture-statistics keys (one presence + one value bit each).
_CATEGORICAL_KEYS = (
    ("fidelity", ("behavioural", "event")),
    ("event_statistics", ("modelled", "exact")),
    ("dtype", ("float64", "float32")),
)


class FramingError(ValueError):
    """Base class for every frame-decoding failure."""


class TruncatedPayloadError(FramingError):
    """The byte string ends before the structure it announces is complete."""


class BadMagicError(FramingError):
    """The payload does not start with the compressed-frame magic byte."""


class UnsupportedVersionError(FramingError):
    """The frame announces a wire version this decoder does not speak."""


class HeaderMismatchError(FramingError):
    """The decoded header contradicts the receiver's expectations.

    Raised when the header disagrees with an ``expected_config`` (the stream
    header already announced different geometry) or when a seedless frame
    arrives without a seed to decode against.
    """


@dataclass(frozen=True)
class FrameHeader:
    """Fixed-size descriptor preceding the seed and the sample payload."""

    rows: int
    cols: int
    pixel_bits: int
    sample_bits: int
    rule_number: int
    steps_per_sample: int
    warmup_steps: int
    n_samples: int

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "pixel_bits", "sample_bits", "n_samples"):
            check_positive(name, getattr(self, name))
        check_positive("steps_per_sample", self.steps_per_sample)
        check_positive("warmup_steps", self.warmup_steps, allow_zero=True)
        if not 0 <= self.rule_number <= 255:
            raise ValueError(f"rule_number must fit in 8 bits, got {self.rule_number}")


def _header_from_frame(frame: CompressedFrame) -> FrameHeader:
    return FrameHeader(
        rows=frame.config.rows,
        cols=frame.config.cols,
        pixel_bits=frame.config.pixel_bits,
        sample_bits=frame.config.compressed_sample_bits,
        rule_number=frame.rule_number,
        steps_per_sample=frame.steps_per_sample,
        warmup_steps=frame.warmup_steps,
        n_samples=frame.n_samples,
    )


def _write_stats(writer: BitWriter, metadata: dict[str, object]) -> None:
    """Serialise the capture-statistics block (presence-coded, 64-bit values)."""
    for key, values in _CATEGORICAL_KEYS:
        value = metadata.get(key)
        if value in values:
            writer.write(1, 1)
            writer.write(values.index(value), 1)
        else:
            writer.write(0, 1)
    for key in STAT_KEYS:
        value = metadata.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
            writer.write(0, 1)
            continue
        writer.write(1, 1)
        if isinstance(value, (float, np.floating)):
            writer.write(1, 1)
            writer.write(int.from_bytes(struct.pack(">d", float(value)), "big"), 64)
        else:
            writer.write(0, 1)
            writer.write(int(value), 64)


def _read_stats(reader: BitReader) -> dict[str, object]:
    """Inverse of :func:`_write_stats`."""
    metadata: dict[str, object] = {}
    for key, values in _CATEGORICAL_KEYS:
        if reader.read(1):
            metadata[key] = values[reader.read(1)]
    for key in STAT_KEYS:
        if not reader.read(1):
            continue
        is_float = reader.read(1)
        raw = reader.read(64)
        if is_float:
            metadata[key] = float(struct.unpack(">d", raw.to_bytes(8, "big"))[0])
        else:
            metadata[key] = int(raw)
    return metadata


def encode_frame(
    frame: CompressedFrame,
    *,
    version: int = 1,
    include_seed: bool = True,
    include_stats: bool = True,
) -> bytes:
    """Serialise a :class:`CompressedFrame` into the transmission format.

    Parameters
    ----------
    frame:
        The capture to serialise.
    version : {1, 2}
        Wire version.  The default v1 byte layout is frozen (header + seed +
        samples, exactly as earlier releases produced).  v2 adds a flags byte
        and the optional statistics block, and can omit the seed.
    include_seed : bool
        v2 only: when false the CA seed is left out and the receiver must
        supply it (``decode_frame(..., seed_state=...)``) — the seed-once GOP
        encoding of :mod:`repro.stream`.
    include_stats : bool
        v2 only: carry the capture-statistics block so event counters and the
        fidelity/dtype markers survive the wire.
    """
    if version not in SUPPORTED_VERSIONS:
        raise UnsupportedVersionError(f"cannot encode frame version {version}")
    if version == 1 and not include_seed:
        raise ValueError("version 1 frames always carry the seed")
    header = _header_from_frame(frame)
    writer = BitWriter()
    writer.write(FRAME_MAGIC, 8)
    writer.write(version, 8)
    if version == 2:
        flags = (FLAG_HAS_SEED if include_seed else 0) | (
            FLAG_HAS_STATS if include_stats else 0
        )
        writer.write(flags, 8)
    for name, width in _HEADER_FIELDS:
        writer.write(getattr(header, name), width)
    if version == 2 and include_stats:
        _write_stats(writer, frame.metadata)
    if version == 1 or include_seed:
        for bit in frame.seed_state:
            writer.write(int(bit), 1)
    packed_header = writer.getvalue()
    packed_samples = pack_samples(frame.samples, header.sample_bits)
    return packed_header + packed_samples


def decode_frame(
    data: bytes,
    *,
    seed_state: np.ndarray | None = None,
    expected_config: SensorConfig | None = None,
) -> CompressedFrame:
    """Parse the transmission format back into a :class:`CompressedFrame`.

    The reconstructed frame has no ``digital_image`` (the receiver never sees
    it) and a fresh :class:`SensorConfig` built from the header geometry.

    Parameters
    ----------
    data : bytes
        One encoded frame (v1 or v2; the version byte dispatches).
    seed_state : numpy.ndarray, optional
        CA seed to decode a **seedless** v2 frame against (the receiver's
        seed chain in a GOP).  Ignored for frames that carry their own seed.
    expected_config : SensorConfig, optional
        When given, the header geometry (rows, columns, pixel and sample bit
        widths) must match it; a disagreement raises
        :class:`HeaderMismatchError` instead of silently decoding a frame
        that cannot belong to this stream.

    Raises
    ------
    TruncatedPayloadError
        ``data`` ends before the header, seed or sample payload it announces.
    BadMagicError
        ``data`` does not start with :data:`FRAME_MAGIC`.
    UnsupportedVersionError
        The version byte is not one of :data:`SUPPORTED_VERSIONS`.
    HeaderMismatchError
        Header/configuration disagreement, or a seedless frame with no
        ``seed_state`` supplied.
    FramingError
        The header decodes to impossible field values (corrupt payload).
    """
    data = bytes(data)
    prefix = decode_frame_prefix(
        data, seed_state=seed_state, expected_config=expected_config
    )
    header = prefix.header
    sample_bytes = (header.n_samples * header.sample_bits + 7) // 8
    if len(data) < prefix.n_bytes + sample_bytes:
        raise TruncatedPayloadError(
            f"frame announces {header.n_samples} samples "
            f"({sample_bytes} bytes) but only {len(data) - prefix.n_bytes} "
            "payload bytes follow the header"
        )
    samples = unpack_samples(
        data[prefix.n_bytes :], header.n_samples, header.sample_bits
    )
    config = SensorConfig(
        rows=header.rows,
        cols=header.cols,
        pixel_bits=header.pixel_bits,
    )
    metadata = dict(prefix.metadata)
    metadata["decoded_from_bytes"] = len(data)
    return CompressedFrame(
        samples=samples,
        seed_state=prefix.seed_state,
        rule_number=header.rule_number,
        steps_per_sample=header.steps_per_sample,
        warmup_steps=header.warmup_steps,
        config=config,
        digital_image=None,
        metadata=metadata,
    )


@dataclass(frozen=True)
class FramePrefix:
    """Everything an encoded frame carries *before* its packed samples.

    Produced by :func:`decode_frame_prefix`.  The streaming loss-resilience
    layer replicates this prefix into every :class:`~repro.stream.protocol.
    FrameSegment`, so a receiver that lost some segments can still rebuild
    the header, seed and statistics — and with them Φ — from any survivor.
    """

    header: FrameHeader
    seed_state: np.ndarray
    metadata: dict[str, object]
    #: Length of the prefix in bytes (samples start at this offset).
    n_bytes: int


def decode_frame_prefix(
    data: bytes,
    *,
    seed_state: np.ndarray | None = None,
    expected_config: SensorConfig | None = None,
) -> FramePrefix:
    """Parse a frame's header/stats/seed prefix without touching its samples.

    Accepts either a full encoded frame or just its prefix bytes (what
    :func:`repro.stream.protocol.encode_frame_segment` replicates per
    segment).  Raises the same typed errors as :func:`decode_frame`.
    """
    data = bytes(data)
    if len(data) < 3:
        raise TruncatedPayloadError(
            f"frame needs at least 3 bytes, got {len(data)}"
        )
    reader = BitReader(data)
    magic = reader.read(8)
    version = reader.read(8)
    if magic != FRAME_MAGIC:
        raise BadMagicError(f"not a compressed-frame stream (magic 0x{magic:02X})")
    if version not in SUPPORTED_VERSIONS:
        raise UnsupportedVersionError(f"unsupported frame version {version}")
    flags = FLAG_HAS_SEED
    if version == 2:
        flags = reader.read(8)
    if reader.bits_remaining < _HEADER_BITS:
        raise TruncatedPayloadError(
            f"frame truncated inside the header ({reader.bits_remaining} bits "
            f"remain of the {_HEADER_BITS}-bit fixed header)"
        )
    fields = {name: reader.read(width) for name, width in _HEADER_FIELDS}
    try:
        header = FrameHeader(**fields)
    except ValueError as error:
        raise FramingError(f"corrupt frame header: {error}") from error
    if expected_config is not None:
        _check_expected(header, expected_config)

    metadata: dict[str, object] = {}
    if version == 2 and flags & FLAG_HAS_STATS:
        stats_bits = 2 * len(_CATEGORICAL_KEYS)  # lower bound: all absent
        if reader.bits_remaining < stats_bits:
            raise TruncatedPayloadError("frame truncated inside the statistics block")
        try:
            metadata = _read_stats(reader)
        except ValueError as error:
            raise TruncatedPayloadError(
                f"frame truncated inside the statistics block: {error}"
            ) from error

    n_seed_bits = header.rows + header.cols
    if version == 1 or flags & FLAG_HAS_SEED:
        if reader.bits_remaining < n_seed_bits:
            raise TruncatedPayloadError(
                f"frame truncated inside the CA seed ({reader.bits_remaining} bits "
                f"remain of {n_seed_bits})"
            )
        seed = np.array(reader.read_many(n_seed_bits, 1), dtype=np.uint8)
    else:
        if seed_state is None:
            raise HeaderMismatchError(
                "frame carries no CA seed; pass seed_state= (the receiver's "
                "GOP seed chain) to decode it"
            )
        seed = np.asarray(seed_state, dtype=np.uint8).reshape(-1)
        if seed.size != n_seed_bits:
            raise HeaderMismatchError(
                f"supplied seed_state has {seed.size} bits, header needs {n_seed_bits}"
            )

    # The sample payload starts at the next byte boundary (the header writer
    # zero-pads its final byte).
    bits_consumed = len(data) * 8 - reader.bits_remaining
    header_bytes = (bits_consumed + 7) // 8
    return FramePrefix(
        header=header,
        seed_state=seed,
        metadata=metadata,
        n_bytes=header_bytes,
    )


def _check_expected(header: FrameHeader, config: SensorConfig) -> None:
    expectations: tuple[tuple[str, int, int], ...] = (
        ("rows", header.rows, config.rows),
        ("cols", header.cols, config.cols),
        ("pixel_bits", header.pixel_bits, config.pixel_bits),
        ("sample_bits", header.sample_bits, config.compressed_sample_bits),
    )
    for name, got, expected in expectations:
        if got != expected:
            raise HeaderMismatchError(
                f"frame header {name}={got} does not match the expected "
                f"configuration ({name}={expected})"
            )


def encoded_size_bits(config: SensorConfig, n_samples: int) -> int:
    """Exact payload size of a v1 encoded frame (header + seed + samples)."""
    check_positive("n_samples", n_samples)
    header_bits = 16 + _HEADER_BITS + config.rows + config.cols
    header_bytes = (header_bits + 7) // 8
    sample_bytes = (n_samples * config.compressed_sample_bits + 7) // 8
    return (header_bytes + sample_bytes) * 8


def frame_overhead_bits(
    config: SensorConfig, *, version: int = 1, include_seed: bool = True
) -> int:
    """Worst-case non-sample bits of one encoded frame.

    The bit-rate governor of :mod:`repro.stream.node` subtracts this from the
    per-frame channel budget before dividing the remainder into compressed
    samples.  For v2 the statistics block is counted at its full width (every
    key present), so the estimate never under-charges the channel.
    """
    if version not in SUPPORTED_VERSIONS:
        raise UnsupportedVersionError(f"unknown frame version {version}")
    bits = 16 + _HEADER_BITS  # magic, version, fixed header
    if version == 2:
        bits += 8  # flags
        bits += 2 * len(_CATEGORICAL_KEYS) + 66 * len(STAT_KEYS)
    if include_seed:
        bits += config.rows + config.cols
    # Byte-align the header block and the final sample byte, as the codec does.
    return ((bits + 7) // 8) * 8 + 7
