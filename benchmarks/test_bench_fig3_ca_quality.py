"""E5 — Fig. 3 / §III-A: Rule 30 cell and class-III behaviour.

The paper chooses Rule 30 because it "has been demonstrated to display
aperiodic (class III) behavior" [10].  This benchmark (i) verifies the
gate-level cell ring of Fig. 3 against the vectorised engine, and (ii)
regenerates the empirical class comparison: balance, block entropy,
autocorrelation and short-cycle behaviour of Rule 30 versus structured rules
(90, 110, 184) at the ring size the chip uses (128 cells).
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.ca.analysis import classify_behaviour
from repro.ca.automaton import ElementaryCellularAutomaton
from repro.ca.rule30 import Rule30Register


def test_fig3_gate_level_ring_matches_engine(benchmark):
    seed_bits = np.random.default_rng(3).integers(0, 2, 64).tolist()
    if not any(seed_bits):
        seed_bits[0] = 1

    def run_both():
        register = Rule30Register(seed_state=seed_bits)
        engine = ElementaryCellularAutomaton(64, 30, seed_state=seed_bits)
        register.clock(64)
        engine.step(64)
        return register.state, engine.state

    gate_state, engine_state = benchmark.pedantic(run_both, rounds=3, iterations=1)
    assert np.array_equal(gate_state, engine_state)


def test_fig3_rule30_is_class_iii_at_chip_ring_size(benchmark):
    stats = benchmark.pedantic(
        lambda: classify_behaviour(30, n_cells=128, n_steps=4096, seed=2018),
        rounds=1, iterations=1,
    )
    comparison = [stats] + [
        classify_behaviour(rule, n_cells=128, n_steps=1024, seed=2018) for rule in (90, 110, 184)
    ]
    print_table("Fig. 3 — empirical rule comparison (centre-column statistics)", comparison)

    # Rule 30: balanced, near-maximal entropy, no visible autocorrelation, no
    # cycle within thousands of compressed samples.
    assert 0.45 < stats["balance"] < 0.55
    assert stats["entropy"] > 0.95
    assert stats["max_autocorrelation"] < 0.1
    assert stats["cycle_found"] == 0.0

    # And it is at least as unstructured as every other rule tested.
    for other in comparison[1:]:
        assert stats["entropy"] >= other["entropy"] - 0.02
