"""Block-based compressive sampling — the baseline the paper argues against.

Block-based CS (Gan 2007; the paper's refs [6][7][8][11]) divides the image
into ``B x B`` macro-blocks and applies an independent (usually shared)
measurement matrix to each block.  It slashes the size of Φ and the dynamic
range of the samples, at the cost of reconstruction quality: each block is
less sparse relative to its dimension than the full frame, and block
boundaries show.  The paper's conclusions frame the full-frame-vs-block
comparison as the experiment the prototype enables; benchmark E9 runs it in
simulation.

:class:`BlockCompressiveSampler` implements measurement and reconstruction:

* measurement: the same Bernoulli(1/2) 0/1 matrix applied to every block
  (sharing the matrix is what real block-CS imagers do to save storage);
* reconstruction: per-block sparse recovery in a per-block DCT dictionary,
  with measurement centring (the DC of each block is estimated from the
  sample mean, exactly as in the full-frame pipeline) and optional smoothing
  of block seams.
"""

from __future__ import annotations


import numpy as np

from repro.ca.selection import ca_measurement_matrix
from repro.cs.dictionaries import Dictionary, make_dictionary
from repro.cs.matrices import bernoulli_matrix
from repro.cs.operators import SensingOperator
from repro.cs.solvers import fista, omp
from repro.utils.images import block_view, unblock_view
from repro.utils.rng import SeedLike, nonzero_seed_bits
from repro.utils.validation import check_choice, check_in_range, check_positive


class BlockCompressiveSampler:
    """Block-based compressive sampling of a full image.

    Parameters
    ----------
    image_shape:
        Full image dimensions; must be divisible by ``block_size``.
    block_size:
        Macro-block side; the paper notes 8x8 as the minimum practical size.
    compression_ratio:
        Measurements per pixel (the same budget definition as the full-frame
        strategy, so comparisons are per-bit fair at the sample level).
    dictionary:
        Per-block sparsifying dictionary name (``dct`` by default).
    matrix:
        Shared per-block measurement ensemble: ``"bernoulli"`` (the classic
        block-CS choice) or ``"ca"`` — a Rule 30 selection matrix built by
        the same batched Φ builder the full-frame sensor and receiver use
        (:func:`repro.ca.selection.ca_measurement_matrix`), so block-CS can
        be compared against the paper's strategy with an identical ensemble.
    seed:
        Seed for the shared per-block measurement matrix.
    dtype:
        Measurement arithmetic width: ``"float64"`` (default) or
        ``"float32"`` — the same fast-mode trade the tiled sensor offers,
        halving the measurement memory traffic for very large images.
        Reconstruction always solves in float64.
    """

    def __init__(
        self,
        image_shape: tuple[int, int] = (64, 64),
        *,
        block_size: int = 8,
        compression_ratio: float = 0.4,
        dictionary: str = "dct",
        matrix: str = "bernoulli",
        seed: SeedLike = 2018,
        dtype: str = "float64",
    ) -> None:
        rows, cols = image_shape
        check_positive("rows", rows)
        check_positive("cols", cols)
        check_positive("block_size", block_size)
        check_in_range("compression_ratio", compression_ratio, 0.0, 1.0, inclusive=False)
        if rows % block_size or cols % block_size:
            raise ValueError(
                f"image shape {image_shape} is not divisible by block_size {block_size}"
            )
        self.image_shape = (int(rows), int(cols))
        self.block_size = int(block_size)
        self.compression_ratio = float(compression_ratio)
        self.n_block_pixels = self.block_size ** 2
        self.samples_per_block = max(1, int(round(self.compression_ratio * self.n_block_pixels)))
        self.dictionary: Dictionary = make_dictionary(
            dictionary, (self.block_size, self.block_size)
        )
        check_choice("matrix", matrix, ("bernoulli", "ca"))
        check_choice("dtype", dtype, ("float64", "float32"))
        self.matrix = matrix
        self.dtype = np.dtype(dtype)
        if matrix == "ca" and self.block_size < 2:
            raise ValueError(
                "matrix='ca' needs block_size >= 2: the selection CA ring has "
                "2 * block_size cells and a cellular automaton needs at least 3"
            )
        if matrix == "ca":
            self.phi_block = ca_measurement_matrix(
                self.samples_per_block,
                self.block_size,
                self.block_size,
                nonzero_seed_bits(2 * self.block_size, seed),
                warmup_steps=8,
            ).astype(self.dtype)
        else:
            self.phi_block = bernoulli_matrix(
                self.samples_per_block, self.n_block_pixels, density=0.5, seed=seed
            ).astype(self.dtype)

    # ---------------------------------------------------------------- sizes
    @property
    def n_blocks(self) -> int:
        """Number of macro-blocks in the image."""
        rows, cols = self.image_shape
        return (rows // self.block_size) * (cols // self.block_size)

    @property
    def total_samples(self) -> int:
        """Total measurements over the whole image."""
        return self.n_blocks * self.samples_per_block

    # -------------------------------------------------------------- measure
    def measure(self, image: np.ndarray) -> np.ndarray:
        """Measure every block; returns an ``(n_blocks, samples_per_block)`` array.

        The matmul runs in the sampler's ``dtype``; with ``"float32"`` the
        result carries that width (cast up for reconstruction as needed).
        """
        image = np.asarray(image, dtype=self.dtype)
        if image.shape != self.image_shape:
            raise ValueError(
                f"image shape {image.shape} does not match {self.image_shape}"
            )
        blocks = block_view(image, self.block_size)
        flattened = blocks.reshape(self.n_blocks, self.n_block_pixels)
        return flattened @ self.phi_block.T

    # --------------------------------------------------------- reconstruct
    def reconstruct(
        self,
        samples: np.ndarray,
        *,
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int = 150,
    ) -> np.ndarray:
        """Reconstruct the full image from per-block samples.

        Parameters
        ----------
        solver:
            ``"fista"`` (l1) or ``"omp"`` (greedy, needs ``sparsity``).
        regularization:
            FISTA l1 weight.  When omitted it is scaled to each block's
            centred sample magnitude, which keeps one default working across
            pixel depths and compression ratios.
        sparsity:
            OMP sparsity target per block; defaults to a quarter of the
            per-block measurement count.
        """
        check_choice("solver", solver, ("fista", "omp"))
        samples = np.asarray(samples, dtype=float)
        if samples.shape != (self.n_blocks, self.samples_per_block):
            raise ValueError(
                f"samples must have shape {(self.n_blocks, self.samples_per_block)}, "
                f"got {samples.shape}"
            )
        # Solvers always run in float64, whatever width measured the blocks.
        phi = self.phi_block.astype(np.float64)
        density = float(phi.mean())
        centered_phi = phi - density
        operator = SensingOperator(centered_phi, self.dictionary)
        if sparsity is None:
            sparsity = max(1, self.samples_per_block // 4)

        reconstructed_blocks = np.empty((self.n_blocks, self.block_size, self.block_size))
        for index in range(self.n_blocks):
            block_samples = samples[index]
            # Estimate the block DC from the sample mean: E[y] = density * sum(x).
            dc_sum = float(block_samples.mean() / density) if density > 0 else 0.0
            centered = block_samples - density * dc_sum
            if solver == "fista":
                block_regularization = regularization
                if block_regularization is None:
                    block_regularization = 0.02 * float(np.abs(centered).max() + 1.0)
                result = fista(
                    operator,
                    centered,
                    regularization=block_regularization,
                    max_iterations=max_iterations,
                )
            else:
                result = omp(operator, centered, sparsity=int(sparsity))
            block_image = operator.coefficients_to_image(result.coefficients)
            # Restore the DC level removed by the centring step.
            block_image = block_image - block_image.mean() + dc_sum / self.n_block_pixels
            reconstructed_blocks[index] = block_image
        return unblock_view(reconstructed_blocks, self.image_shape)

    # ------------------------------------------------------------ reporting
    def describe(self) -> dict[str, float]:
        """Summary of the block-CS configuration (used by the E9 benchmark)."""
        return {
            "block_size": float(self.block_size),
            "n_blocks": float(self.n_blocks),
            "samples_per_block": float(self.samples_per_block),
            "total_samples": float(self.total_samples),
            "compression_ratio": float(
                self.total_samples / (self.image_shape[0] * self.image_shape[1])
            ),
            "phi_storage_bits": float(self.phi_block.size),
        }
