"""The autonomous camera node: capture in workers, chunks on the wire.

This is the paper's motivating system turned into a service: a node that
captures compressively at the focal plane and "delivers images over a network
under a restricted data rate", shipping compressed samples plus only the
128-bit CA seed.  :class:`CameraNode` drives any of the repo's capture
engines — a single :class:`~repro.sensor.imager.CompressiveImager`, a
:class:`~repro.sensor.video.VideoSequencer`, or a whole
:class:`~repro.sensor.shard.TiledSensorArray` mosaic — through a worker
executor (capture is numpy/BLAS work; the event loop only moves bytes),
encodes each result as v2 wire chunks and sends them over any transport from
:mod:`repro.stream.transport`.

Two flow-control mechanisms compose:

* **Backpressure** — every ``transport.send`` is awaited, so a bounded
  channel (full loopback queue, full TCP socket buffer) suspends the node's
  capture loop.  Buffering is bounded by the transport, never by the node.
* **Bit-rate governor** — :class:`BitrateGovernor` fits each frame's sample
  count to a bits-per-frame channel budget *before* capturing (fewer samples
  = fewer bits = graceful quality degradation), exactly the sweep
  ``examples/camera_node_streaming.py`` demonstrates.  Seed-once GOPs lower
  the per-frame overhead the governor has to charge.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
from concurrent.futures import Executor
from dataclasses import dataclass, field
from collections.abc import Awaitable, Callable, Iterable
from typing import Any, TypeVar, cast

import numpy as np

from repro.io.bitstream import pack_samples
from repro.io.framing import encode_frame, frame_overhead_bits
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame, CompressiveImager
from repro.sensor.shard import TiledSensorArray
from repro.sensor.video import VideoSequencer
from repro.stream.protocol import (
    Chunk,
    ChunkDecoder,
    ChunkType,
    ControlAck,
    FrameData,
    FrameSegment,
    NackRequest,
    RateAdvice,
    SessionResume,
    StreamHeader,
    StreamProtocolError,
    build_frame_parity,
    decode_control_ack,
    decode_nack_request,
    decode_rate_advice,
    encode_chunk,
    encode_frame_complete,
    encode_frame_data,
    encode_frame_parity,
    encode_frame_segment,
    encode_session_resume,
    encode_stream_end,
    encode_stream_header,
)
from repro.stream.transport import Transport
from repro.telemetry import (
    MONOTONIC_CLOCK,
    SPAN_CAPTURE,
    SPAN_ENCODE,
    SPAN_TRANSPORT,
    Clock,
    Telemetry,
    active,
)
from repro.utils.rng import derive_seed, new_rng
from repro.utils.validation import check_positive


class ChannelBudgetError(ValueError):
    """The per-frame bit budget cannot fit even one compressed sample."""


#: Wire cost of wrapping one frame as a chunk: the 12-byte chunk header plus
#: the 9-byte frame-data prefix (frame index, grid position, keyframe flag).
CHUNK_OVERHEAD_BITS = (12 + 9) * 8


_StreamMethod = TypeVar("_StreamMethod", bound=Callable[..., Awaitable[Any]])


def _close_on_error(method: _StreamMethod) -> _StreamMethod:
    """Close the transport when a stream method dies mid-stream.

    A capture-side failure (governor rejection, bad scene shape, solver
    error) must not strand the peer: closing the channel turns the
    receiver's blocking ``recv`` into end-of-stream, so it raises its own
    "transport closed before the stream-end chunk" protocol error instead of
    waiting forever on a stream that will never finish — and the node's
    exception still propagates to whoever awaits the stream task.
    """

    @functools.wraps(method)
    async def wrapper(self: CameraNode, *args: Any, **kwargs: Any) -> Any:
        try:
            return await method(self, *args, **kwargs)
        except BaseException:
            with contextlib.suppress(Exception):
                await self._stop_feedback()
            with contextlib.suppress(Exception):
                await self.transport.close()
            raise

    return cast("_StreamMethod", wrapper)


@dataclass
class BitrateGovernor:
    """Fits each frame's sample count to a bits-per-frame channel budget.

    Parameters
    ----------
    bits_per_frame:
        Channel budget for one frame, headers and seed included.  ``None``
        disables governing (the configured sample count is used as-is).
    min_samples:
        Floor below which the governor refuses to degrade and raises
        :class:`ChannelBudgetError` instead — a frame with almost no samples
        reconstructs to noise, and a node should fail loudly rather than
        stream garbage.
    closed_loop:
        Steer the sample count from receiver feedback (AIMD, below).  Off by
        default — the open-loop governor is the bit-reproducible path, and
        with zero loss the closed loop provably never deviates from it: the
        target starts *at* the open-loop count, increases are capped there,
        and only a lossy frame can pull it down.
    aimd_increase:
        Samples added back per clean frame (additive increase).
    aimd_decrease:
        Multiplicative factor applied to the target when the receiver
        reports a lossy frame — the classic congestion-control asymmetry:
        back off fast, probe back slowly.

    Notes
    -----
    The feedback callbacks (:meth:`on_feedback`, :meth:`on_rate_advice`) run
    on the node's feedback task while ``samples_for_frame`` runs inside the
    capture worker; both only read/assign small ints, so the loop needs no
    lock.
    """

    bits_per_frame: int | None = None
    min_samples: int = 1
    closed_loop: bool = False
    aimd_increase: int = 32
    aimd_decrease: float = 0.5
    #: Receiver reports processed (both kinds) — observability counters.
    n_feedback: int = field(default=0, init=False)
    n_loss_events: int = field(default=0, init=False)
    #: Target after each adjustment, the trace a rate plot reads.
    rate_trace: list[int] = field(default_factory=list, init=False)
    _target: int | None = field(default=None, init=False, repr=False)
    _ceiling: int | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bits_per_frame is not None:
            check_positive("bits_per_frame", self.bits_per_frame)
        check_positive("min_samples", self.min_samples)
        check_positive("aimd_increase", self.aimd_increase)
        if not 0.0 < self.aimd_decrease < 1.0:
            raise ValueError(
                f"aimd_decrease must be in (0, 1), got {self.aimd_decrease}"
            )

    # ----------------------------------------------------- feedback (AIMD)
    def on_feedback(self, ack: ControlAck) -> None:
        """Absorb a receiver delivery report (additive-increase half).

        A clean frame earns ``aimd_increase`` samples back, never beyond the
        open-loop ceiling; a lossy frame multiplies the target by
        ``aimd_decrease``, never below ``min_samples``.
        """
        self.n_feedback += 1
        if not self.closed_loop or self._target is None:
            return
        if ack.n_samples_received < ack.n_samples_expected:
            self.n_loss_events += 1
            self._target = max(
                self.min_samples, int(self._target * self.aimd_decrease)
            )
        else:
            ceiling = self._ceiling if self._ceiling is not None else self._target
            self._target = min(ceiling, self._target + self.aimd_increase)
        self.rate_trace.append(self._target)

    def on_rate_advice(self, advice: RateAdvice) -> None:
        """Clamp the target to the receiver's measured channel capacity.

        Advice only ever *lowers* the target (the additive increase is how
        it recovers), so a stale advice chunk cannot burst the rate.
        """
        self.n_feedback += 1
        if not self.closed_loop or self._target is None:
            return
        advised = max(self.min_samples, int(advice.advised_samples))
        if advised < self._target:
            self._target = advised
            self.rate_trace.append(self._target)

    def samples_for_frame(
        self,
        config: SensorConfig,
        *,
        max_samples: int | None = None,
        include_seed: bool = True,
    ) -> int:
        """Samples that fit the budget after the frame overhead is charged.

        ``include_seed=False`` models a non-keyframe of a GOP, whose seed
        bits the channel never pays — the governor then fits more samples
        into the same budget.
        """
        if max_samples is None:
            max_samples = config.samples_per_frame
        if self.bits_per_frame is None:
            return self._governed(int(max_samples))
        overhead = CHUNK_OVERHEAD_BITS + frame_overhead_bits(
            config, version=2, include_seed=include_seed
        )
        usable = self.bits_per_frame - overhead
        n_samples = min(int(max_samples), usable // config.compressed_sample_bits)
        if n_samples < self.min_samples:
            raise ChannelBudgetError(
                f"budget of {self.bits_per_frame} bits leaves room for "
                f"{max(0, n_samples)} samples (< min_samples={self.min_samples})"
            )
        return self._governed(int(n_samples))

    def _governed(self, base: int) -> int:
        """Apply the closed-loop target on top of the open-loop count."""
        if not self.closed_loop:
            return base
        if self._target is None:
            self._target = base
        # The open-loop count is the ceiling the additive increase probes
        # back towards — feedback can only ever *lower* the rate.
        self._ceiling = base
        return max(self.min_samples, min(base, self._target))

    def ratio_for_frame(
        self,
        config: SensorConfig,
        n_pixels: int,
        *,
        n_tiles: int = 1,
        include_seed: bool = True,
    ) -> float | None:
        """Per-tile compression-ratio override fitting a tiled frame's budget.

        A mosaic frame pays the per-frame overhead once per tile; the
        remaining bits spread over ``n_pixels`` scene pixels give the ratio
        handed to :meth:`TiledSensorArray.capture
        <repro.sensor.shard.TiledSensorArray.capture>`.  Returns ``None``
        when ungoverned.
        """
        if self.bits_per_frame is None:
            return None
        overhead = n_tiles * (
            CHUNK_OVERHEAD_BITS
            + frame_overhead_bits(config, version=2, include_seed=include_seed)
        )
        usable = self.bits_per_frame - overhead
        n_samples = usable // config.compressed_sample_bits
        if n_samples < self.min_samples * n_tiles:
            raise ChannelBudgetError(
                f"budget of {self.bits_per_frame} bits leaves room for "
                f"{max(0, n_samples)} samples over {n_tiles} tiles"
            )
        # A generous budget never *upgrades* the capture beyond its
        # configured ratio — the budget is a ceiling, not a target.
        return min(0.999, config.compression_ratio, float(n_samples) / float(n_pixels))


@dataclass
class StreamStats:
    """What one streaming run put on the wire."""

    n_frames: int = 0
    n_chunks: int = 0
    n_bytes: int = 0
    samples_per_frame: list[int] = field(default_factory=list)
    #: Wire bytes of each frame's data chunks (excluding the one-time
    #: stream-start/stream-end bookends) — what a per-frame budget governs.
    bytes_per_frame: list[int] = field(default_factory=list)


class ReconnectExhaustedError(ConnectionError):
    """Every reconnect attempt failed; the stream cannot be resumed."""


@dataclass
class _RetransmitEntry:
    """One sent chunk held for selective repeat: the exact wire bytes."""

    sequence: int
    frame_index: int | None
    encoded: bytes
    sent_at: float


class RetransmitBuffer:
    """Bounded window of recently sent chunks, keyed by sequence number.

    The node answers a ``CONTROL_NACK`` by re-sending the buffered bytes
    *verbatim* — original sequence numbers and all — so the session's
    reorder/duplicate handling absorbs them without any special casing.
    Entries leave the window three ways:

    * **ACK** — a ``CONTROL_ACK`` for frame *f* means every chunk of frames
      ``<= f`` settled at the receiver; :meth:`evict_acked` drops them.
    * **age** — entries older than ``max_age`` (by the injected clock's
      seconds) are useless for repair and are dropped lazily.
    * **capacity** — the window never holds more than ``capacity`` entries;
      inserting past that evicts the oldest (sequences only grow, so oldest
      is first-inserted).
    """

    def __init__(self, capacity: int, *, max_age: float | None = None) -> None:
        check_positive("capacity", capacity)
        if max_age is not None:
            check_positive("max_age", max_age)
        self.capacity = int(capacity)
        self.max_age = max_age
        self._entries: dict[int, _RetransmitEntry] = {}
        self.n_evicted_capacity = 0
        self.n_evicted_acked = 0
        self.n_evicted_aged = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        sequence: int,
        encoded: bytes,
        *,
        frame_index: int | None,
        now: float,
    ) -> None:
        """Record a chunk as it goes on the wire (call *before* the send)."""
        self.evict_aged(now)
        self._entries[sequence] = _RetransmitEntry(
            sequence=sequence, frame_index=frame_index, encoded=encoded, sent_at=now
        )
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.n_evicted_capacity += 1

    def get(self, sequence: int, *, now: float) -> _RetransmitEntry | None:
        """Look up a sequence for repair; an over-age entry counts as gone."""
        entry = self._entries.get(sequence)
        if entry is None:
            return None
        if self.max_age is not None and now - entry.sent_at > self.max_age:
            self._entries.pop(sequence)
            self.n_evicted_aged += 1
            return None
        return entry

    def evict_acked(self, frame_index: int) -> int:
        """Drop every buffered chunk belonging to frames ``<= frame_index``."""
        stale = [
            sequence
            for sequence, entry in self._entries.items()
            if entry.frame_index is not None and entry.frame_index <= frame_index
        ]
        for sequence in stale:
            self._entries.pop(sequence)
        self.n_evicted_acked += len(stale)
        return len(stale)

    def evict_aged(self, now: float) -> int:
        """Drop entries older than ``max_age`` (no-op when age-unbounded)."""
        if self.max_age is None:
            return 0
        stale = [
            sequence
            for sequence, entry in self._entries.items()
            if now - entry.sent_at > self.max_age
        ]
        for sequence in stale:
            self._entries.pop(sequence)
        self.n_evicted_aged += len(stale)
        return len(stale)

    def pending(self) -> list[_RetransmitEntry]:
        """Unacked entries in send (= sequence) order, for a resume replay."""
        return sorted(self._entries.values(), key=lambda entry: entry.sequence)

    def clear(self) -> None:
        """Forget everything (a new stream restarts sequences from 0)."""
        self._entries.clear()


class ReconnectSupervisor:
    """Exponential-backoff reconnect policy with seeded jitter.

    Wraps a ``connect`` coroutine factory (anything returning a fresh
    :class:`~repro.stream.transport.Transport`) and retries it through a
    capped exponential schedule: attempt *k* (0-based) waits
    ``min(max_delay, base_delay * 2**(k-1)) * (1 + jitter * u)`` before
    running, where ``u`` is drawn from the supervisor's own seeded RNG —
    the first attempt fires immediately.  Jitter decorrelates fleet-wide
    reconnect stampedes yet stays reproducible: same seed, same schedule.

    Every timer flows through the injectable ``clock`` / ``sleep`` seam
    (defaults: the process monotonic clock and :func:`asyncio.sleep`), so
    tests pin exact firing times under
    :class:`~repro.telemetry.ManualClock` with no wall-clock waits.
    ``retryable`` defaults to ``(OSError,)``, which covers refused/reset
    connections *and* the hub's typed
    :class:`~repro.stream.hub.HubPortInUseError`.
    """

    def __init__(
        self,
        connect: Callable[[], Awaitable[Transport]],
        *,
        max_attempts: int = 8,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        clock: Clock | None = None,
        sleep: Callable[[float], Awaitable[None]] | None = None,
        retryable: tuple[type[BaseException], ...] = (OSError,),
    ) -> None:
        check_positive("max_attempts", max_attempts)
        check_positive("base_delay", base_delay)
        check_positive("max_delay", max_delay)
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self._connect = connect
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.retryable = retryable
        self.clock: Clock = clock if clock is not None else MONOTONIC_CLOCK
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._rng = new_rng(derive_seed(seed, "reconnect-supervisor"))
        self.n_attempts = 0
        self.n_reconnects = 0
        #: Backoff delay before each non-first attempt, in schedule order.
        self.delays: list[float] = []
        #: Clock reading at the start of every connect attempt.
        self.attempt_times: list[float] = []

    def backoff_delay(self, attempt: int) -> float:
        """Jittered delay before 0-based ``attempt`` (attempt 0 is free)."""
        if attempt <= 0:
            return 0.0
        base = min(self.max_delay, self.base_delay * 2.0 ** (attempt - 1))
        return base * (1.0 + self.jitter * float(self._rng.random()))

    async def acquire(self) -> Transport:
        """Connect, retrying through the backoff schedule until exhausted."""
        last_error: BaseException | None = None
        for attempt in range(self.max_attempts):
            delay = self.backoff_delay(attempt)
            if delay > 0.0:
                self.delays.append(delay)
                await self._sleep(delay)
            self.n_attempts += 1
            self.attempt_times.append(self.clock.now())
            try:
                transport = await self._connect()
            except self.retryable as error:
                last_error = error
                continue
            self.n_reconnects += 1
            return transport
        raise ReconnectExhaustedError(
            f"reconnect failed after {self.max_attempts} attempts"
        ) from last_error


class CameraNode:
    """An asyncio camera node streaming captures over a transport.

    Parameters
    ----------
    transport:
        Any transport from :mod:`repro.stream.transport` (loopback, TCP).
    stream_id:
        Identifier stamped into every chunk header.
    governor:
        Optional :class:`BitrateGovernor`; when omitted the node streams at
        the capture engine's configured sample budget.
    gop_size:
        Frames per group-of-pictures for the video modes: the CA seed is
        carried by each GOP's first frame only, later frames are seedless
        and the receiver re-derives their seeds from the one-pattern frame
        overlap.  ``1`` makes every frame a keyframe.
    executor:
        ``concurrent.futures`` executor for the capture work; ``None`` uses
        the event loop's default thread pool.
    segments_per_frame:
        Split each single-sensor frame's sample vector across this many
        :data:`~repro.stream.protocol.ChunkType.FRAME_SEGMENT` chunks (each
        carrying the frame prefix, so any survivor decodes), turning a lost
        chunk into a lost *row subset* of Φ instead of a lost frame.  ``1``
        (default) keeps the legacy one-chunk-per-frame framing.  Segmented
        streams need a resilient receiver and are single-sensor only.
    parity:
        Append one XOR-parity chunk per segment group, recovering any single
        lost segment of a frame at the receiver (burst-loss insurance, off
        by default; implies segment framing even with one segment).
    feedback:
        Read receiver→node control chunks (ACK / rate advice / NACK) from
        the transport's return path — ACKs and advice feed the governor,
        NACKs trigger selective repeat from the retransmission buffer.
        Requires a duplex channel
        (:func:`~repro.stream.transport.loopback_duplex_pair` or TCP) and a
        hub running with ``feedback=True``.
    retransmit_capacity:
        Keep up to this many recently sent chunks in a
        :class:`RetransmitBuffer` for NACK-driven selective repeat and
        resume replay.  ``0`` (default) disables retransmission entirely —
        the legacy fire-and-forget path.
    retransmit_max_age:
        Age bound (seconds on the node's clock) after which buffered chunks
        stop being eligible for repair; ``None`` keeps them until ACK or
        capacity eviction.
    reconnect:
        Optional :class:`ReconnectSupervisor`.  When a send fails with an
        ``OSError`` the node reconnects through the supervisor's backoff
        schedule, re-attaches its stream id with a ``SESSION_RESUME`` chunk
        and replays the unacked retransmission window — so a mid-GOP
        disconnect heals without breaking the seed chain.  Requires
        ``retransmit_capacity > 0``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  When present (and
        enabled) the node records each frame's ``capture`` and ``encode``
        spans, opens the ``transport`` span right before the first send (the
        hub side closes it — the two halves only join when node and hub
        share one facade, i.e. over loopback), and registers a collector
        exporting the feedback/governor counters.  ``None`` (the default)
        records nothing.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        stream_id: int = 1,
        governor: BitrateGovernor | None = None,
        gop_size: int = 4,
        executor: Executor | None = None,
        segments_per_frame: int = 1,
        parity: bool = False,
        feedback: bool = False,
        retransmit_capacity: int = 0,
        retransmit_max_age: float | None = None,
        reconnect: ReconnectSupervisor | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        check_positive("gop_size", gop_size)
        check_positive("segments_per_frame", segments_per_frame)
        if segments_per_frame > 255:
            raise ValueError(
                f"segments_per_frame must fit the wire's u8, got {segments_per_frame}"
            )
        if retransmit_capacity < 0:
            raise ValueError(
                f"retransmit_capacity must be >= 0, got {retransmit_capacity}"
            )
        if reconnect is not None and retransmit_capacity == 0:
            raise ValueError(
                "a reconnect supervisor needs a retransmission buffer to "
                "replay on resume — set retransmit_capacity > 0"
            )
        self.transport = transport
        self.stream_id = int(stream_id)
        self.governor = governor or BitrateGovernor()
        self.gop_size = int(gop_size)
        self.executor = executor
        self.segments_per_frame = int(segments_per_frame)
        self.parity = bool(parity)
        self.feedback = bool(feedback)
        self.reconnect = reconnect
        self.n_feedback_chunks = 0
        self.n_feedback_errors = 0
        self.n_retransmits = 0
        self.n_nacks_answered = 0
        self.n_nack_misses = 0
        self.n_resumes = 0
        self.n_resume_retransmits = 0
        self.telemetry = telemetry
        self._clock: Clock = (
            telemetry.clock if telemetry is not None else MONOTONIC_CLOCK
        )
        self._retransmit: RetransmitBuffer | None = (
            RetransmitBuffer(retransmit_capacity, max_age=retransmit_max_age)
            if retransmit_capacity
            else None
        )
        self._sequence = 0
        self._last_frame_index = 0
        self._resume_epoch = 0
        self._feedback_task: asyncio.Task[None] | None = None
        if telemetry is not None:
            telemetry.registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Export the node's counters at snapshot time (pull model).

        Registered once at construction; runs only inside
        ``registry.collect()``, so the hot paths that move these counters
        never see the registry at all.
        """
        assert self.telemetry is not None
        registry = self.telemetry.registry
        labels = {"stream": self.stream_id}
        registry.counter(
            "repro_node_feedback_chunks_total",
            labels=labels,
            help="Control chunks the node drained into its governor.",
        ).set_total(self.n_feedback_chunks)
        registry.counter(
            "repro_node_feedback_errors_total",
            labels=labels,
            help="Malformed or misrouted chunks seen on the feedback path.",
        ).set_total(self.n_feedback_errors)
        registry.counter(
            "repro_node_governor_feedback_total",
            labels=labels,
            help="Receiver reports (ACK + rate advice) the governor absorbed.",
        ).set_total(self.governor.n_feedback)
        registry.counter(
            "repro_node_governor_loss_events_total",
            labels=labels,
            help="Lossy-frame reports that triggered an AIMD back-off.",
        ).set_total(self.governor.n_loss_events)
        registry.counter(
            "repro_node_retransmits_total",
            labels=labels,
            help="Chunks re-sent verbatim in answer to receiver NACKs.",
        ).set_total(self.n_retransmits)
        registry.counter(
            "repro_node_nacks_answered_total",
            labels=labels,
            help="NACK requests for which at least one chunk was repaired.",
        ).set_total(self.n_nacks_answered)
        registry.counter(
            "repro_node_nack_misses_total",
            labels=labels,
            help="NACKed sequences already evicted from the retransmit buffer.",
        ).set_total(self.n_nack_misses)
        registry.counter(
            "repro_node_resumes_total",
            labels=labels,
            help="Successful reconnect-with-resume cycles.",
        ).set_total(self.n_resumes)
        registry.counter(
            "repro_node_reconnect_attempts_total",
            labels=labels,
            help="Connect attempts made by the reconnect supervisor.",
        ).set_total(0 if self.reconnect is None else self.reconnect.n_attempts)

    # -------------------------------------------------------------- helpers
    @property
    def _segmented(self) -> bool:
        """True when frames ride the segment/parity framing."""
        return self.segments_per_frame > 1 or self.parity

    async def _run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run blocking capture work on the worker executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    async def _feedback_loop(self) -> None:
        """Drain receiver→node control chunks into the governor.

        A malformed or non-control chunk on the feedback path is counted and
        skipped (with a fresh decoder, since a framing error poisons the
        buffer) — feedback is advisory, so it must never kill the stream.
        """
        decoder = ChunkDecoder(resync=True)
        while True:
            data = await self.transport.recv()
            if data is None:
                return
            try:
                chunks = list(decoder.feed(data))
            except StreamProtocolError:
                self.n_feedback_errors += 1
                decoder = ChunkDecoder(resync=True)
                continue
            for chunk in chunks:
                try:
                    if chunk.chunk_type is ChunkType.CONTROL_ACK:
                        ack = decode_control_ack(chunk.payload)
                        self.governor.on_feedback(ack)
                        if self._retransmit is not None:
                            # A settled frame never gets NACKed again, so
                            # everything up to it leaves the repair window.
                            self._retransmit.evict_acked(ack.frame_index)
                    elif chunk.chunk_type is ChunkType.CONTROL_RATE:
                        self.governor.on_rate_advice(
                            decode_rate_advice(chunk.payload)
                        )
                    elif chunk.chunk_type is ChunkType.CONTROL_NACK:
                        await self._answer_nack(decode_nack_request(chunk.payload))
                    else:
                        raise StreamProtocolError(
                            f"non-control chunk type {chunk.chunk_type} on "
                            "the feedback path"
                        )
                except StreamProtocolError:
                    self.n_feedback_errors += 1
                else:
                    self.n_feedback_chunks += 1

    async def _answer_nack(self, request: NackRequest) -> None:
        """Selective repeat: re-send whatever the buffer still holds.

        Repairs go out verbatim under their *original* sequence numbers —
        the session reclaims them from its missing set exactly like
        late-arriving reordered chunks.  Sequences already evicted (ACKed,
        aged out, capacity-pushed) are counted as misses and skipped; the
        receiver's deadline salvage covers whatever repair cannot.  A send
        failure here is swallowed: the forward path will hit the same broken
        transport and drive the resume flow itself.
        """
        if self._retransmit is None:
            self.n_nack_misses += len(request.sequences)
            return
        answered = 0
        for sequence in request.sequences:
            entry = self._retransmit.get(sequence, now=self._clock.now())
            if entry is None:
                self.n_nack_misses += 1
                continue
            try:
                await self.transport.send(entry.encoded)
            except OSError:
                return
            self.n_retransmits += 1
            answered += 1
        if answered:
            self.n_nacks_answered += 1

    async def _stop_feedback(self) -> None:
        task, self._feedback_task = self._feedback_task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task

    def _reject_segmented(self, method: str) -> None:
        """Tiled streams already shard frames across tile chunks; the
        segment/parity framing is single-sensor only."""
        if self._segmented:
            raise ValueError(
                f"{method} does not support segments_per_frame/parity — "
                "tiled frames are already chunked per tile"
            )

    async def _send_chunk(
        self,
        chunk_type: ChunkType,
        payload: bytes,
        stats: StreamStats,
        *,
        frame_index: int | None = None,
    ) -> int:
        """Frame one chunk and push it through the transport (may stall).

        With a retransmission buffer the encoded bytes are recorded *before*
        the send, so a chunk lost to a mid-send disconnect is already in the
        window the resume flow replays.
        """
        chunk = Chunk(
            chunk_type=chunk_type,
            stream_id=self.stream_id,
            sequence=self._sequence,
            payload=payload,
        )
        self._sequence += 1
        data = encode_chunk(chunk)
        if frame_index is not None:
            self._last_frame_index = frame_index
        if self._retransmit is not None:
            self._retransmit.add(
                chunk.sequence, data, frame_index=frame_index, now=self._clock.now()
            )
        try:
            await self.transport.send(data)
        except OSError:
            if self.reconnect is None:
                raise
            await self._resume_stream()
        stats.n_chunks += 1
        stats.n_bytes += len(data)
        return len(data)

    async def _resume_stream(self) -> None:
        """Reconnect, re-attach the stream id, replay the unacked window.

        The ``SESSION_RESUME`` chunk rides the normal forward sequence (the
        hub's gap tracking then marks anything lost in the cut as missing),
        after which the entire retransmission buffer goes out verbatim,
        oldest first — duplicates are skipped receiver-side and the missing
        chunks reclaimed as reordered arrivals, so a window-covered cut
        reconstructs every frame with the GOP seed chain intact.
        """
        assert self.reconnect is not None and self._retransmit is not None
        await self._stop_feedback()
        with contextlib.suppress(Exception):
            await self.transport.close()
        self.transport = await self.reconnect.acquire()
        self._resume_epoch += 1
        resume = SessionResume(
            next_sequence=self._sequence,
            frame_index=self._last_frame_index,
            epoch=self._resume_epoch,
        )
        chunk = Chunk(
            chunk_type=ChunkType.SESSION_RESUME,
            stream_id=self.stream_id,
            sequence=self._sequence,
            payload=encode_session_resume(resume),
        )
        self._sequence += 1
        await self.transport.send(encode_chunk(chunk))
        if self.feedback and self._feedback_task is None:
            self._feedback_task = asyncio.create_task(self._feedback_loop())
        for entry in self._retransmit.pending():
            await self.transport.send(entry.encoded)
            self.n_resume_retransmits += 1
        self.n_resumes += 1

    async def _send_header(self, header: StreamHeader, stats: StreamStats) -> None:
        # Every stream opens with its header chunk at sequence 0, so a node
        # can be reused across transports/streams without desynchronising
        # receivers (which expect consecutive sequences from 0).
        self._sequence = 0
        self._last_frame_index = 0
        self._resume_epoch = 0
        if self._retransmit is not None:
            self._retransmit.clear()
        if self.feedback and self._feedback_task is None:
            self._feedback_task = asyncio.create_task(self._feedback_loop())
        await self._send_chunk(
            ChunkType.STREAM_START, encode_stream_header(header), stats
        )

    async def _send_frame(
        self,
        frame: CompressedFrame,
        stats: StreamStats,
        *,
        frame_index: int,
        grid_row: int = 0,
        grid_col: int = 0,
        keyframe: bool = True,
    ) -> int:
        tel = active(self.telemetry)
        if tel is not None:
            tel.begin_span(self.stream_id, frame_index, SPAN_ENCODE)
        frame_bytes = encode_frame(frame, version=2, include_seed=keyframe)
        if self._segmented:
            if tel is not None:
                # Segment payload packing happens inside the send loop, so
                # for segmented frames the encode span covers the shared
                # frame encoding and the transport envelope the rest.
                tel.end_span(self.stream_id, frame_index, SPAN_ENCODE)
                tel.begin_span(self.stream_id, frame_index, SPAN_TRANSPORT)
            return await self._send_frame_segmented(
                frame,
                frame_bytes,
                stats,
                frame_index=frame_index,
                grid_row=grid_row,
                grid_col=grid_col,
                keyframe=keyframe,
            )
        payload = encode_frame_data(
            FrameData(
                frame_index=frame_index,
                grid_row=grid_row,
                grid_col=grid_col,
                keyframe=keyframe,
                frame_bytes=frame_bytes,
            )
        )
        if tel is not None:
            tel.end_span(self.stream_id, frame_index, SPAN_ENCODE)
            # The span's other half closes on the receiving session when the
            # chunk lands (joined over loopback; a no-op half over TCP).
            tel.begin_span(self.stream_id, frame_index, SPAN_TRANSPORT)
        return await self._send_chunk(
            ChunkType.FRAME_DATA, payload, stats, frame_index=frame_index
        )

    async def _send_frame_segmented(
        self,
        frame: CompressedFrame,
        frame_bytes: bytes,
        stats: StreamStats,
        *,
        frame_index: int,
        grid_row: int,
        grid_col: int,
        keyframe: bool,
    ) -> int:
        """Ship one frame as a segment group (+ optional parity chunk).

        The encoded frame splits into its *prefix* (header, stats, seed —
        everything before the packed samples) and the samples themselves;
        every segment replicates the prefix and bit-packs its own contiguous
        sample slice, so each chunk decodes independently and a lost chunk
        costs exactly its rows of Φ.
        """
        sample_bits = frame.config.compressed_sample_bits
        packed = pack_samples(frame.samples, sample_bits)
        prefix = frame_bytes[: len(frame_bytes) - len(packed)]
        n_samples = frame.n_samples
        n_segments = max(1, min(self.segments_per_frame, n_samples))
        payloads: list[bytes] = []
        sent = 0
        for index in range(n_segments):
            start = index * n_samples // n_segments
            stop = (index + 1) * n_samples // n_segments
            payload = encode_frame_segment(
                FrameSegment(
                    frame_index=frame_index,
                    grid_row=grid_row,
                    grid_col=grid_col,
                    keyframe=keyframe,
                    segment_index=index,
                    n_segments=n_segments,
                    start_sample=start,
                    n_samples=stop - start,
                    prefix_bytes=prefix,
                    sample_bytes=pack_samples(
                        frame.samples[start:stop], sample_bits
                    ),
                )
            )
            payloads.append(payload)
            sent += await self._send_chunk(
                ChunkType.FRAME_SEGMENT, payload, stats, frame_index=frame_index
            )
        if self.parity:
            parity = build_frame_parity(frame_index, grid_row, grid_col, payloads)
            sent += await self._send_chunk(
                ChunkType.FRAME_PARITY,
                encode_frame_parity(parity),
                stats,
                frame_index=frame_index,
            )
        return sent

    def _frame_chunk_count(self, frame: CompressedFrame) -> int:
        """Chunks a segmented frame occupies (announced by its barrier)."""
        n_segments = max(1, min(self.segments_per_frame, frame.n_samples))
        return n_segments + (1 if self.parity else 0)

    async def _finish(self, stats: StreamStats) -> StreamStats:
        await self._send_chunk(
            ChunkType.STREAM_END, encode_stream_end(stats.n_frames), stats
        )
        await self._stop_feedback()
        await self.transport.close()
        return stats

    # ---------------------------------------------------------- single chip
    @_close_on_error
    async def stream_frames(
        self,
        imager: CompressiveImager,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream independent frames from one imager (every frame a keyframe).

        Each scene is captured via
        :meth:`~repro.sensor.imager.CompressiveImager.capture_scene` on the
        worker executor, encoded as a self-contained v2 frame (seed included)
        and sent.  The governor, when budgeted, fits each frame's sample
        count to the channel.
        """
        config = imager.config
        stats = StreamStats()
        header = StreamHeader(
            kind="frame",
            scene_shape=(config.rows, config.cols),
            tile_shape=(config.rows, config.cols),
            gop_size=1,
        )
        await self._send_header(header, stats)
        tel = active(self.telemetry)
        for index, scene in enumerate(scenes):
            n_samples = self.governor.samples_for_frame(config)
            if tel is not None:
                tel.begin_span(self.stream_id, index, SPAN_CAPTURE)
            frame = await self._run(
                lambda s=scene, n=n_samples: imager.capture_scene(
                    s, n_samples=n, fidelity=fidelity, **capture_kwargs
                )
            )
            if tel is not None:
                tel.end_span(self.stream_id, index, SPAN_CAPTURE)
            sent = await self._send_frame(frame, stats, frame_index=index)
            if self._segmented:
                # The barrier tells a resilient receiver how many chunks the
                # frame occupied, so it can finalise (and account loss for)
                # the frame without waiting for the next one.
                sent += await self._send_chunk(
                    ChunkType.FRAME_COMPLETE,
                    encode_frame_complete(index, self._frame_chunk_count(frame)),
                    stats,
                    frame_index=index,
                )
            stats.n_frames += 1
            stats.samples_per_frame.append(frame.n_samples)
            stats.bytes_per_frame.append(sent)
        return await self._finish(stats)

    # --------------------------------------------------------------- video
    @_close_on_error
    async def stream_video(
        self,
        sequencer: VideoSequencer,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream a video sequence with seed-once GOPs.

        Frames come from
        :meth:`~repro.sensor.video.VideoSequencer.stream_frames` — the lazy
        capture path whose CA free-runs across frames — so only each GOP's
        keyframe carries the seed; the receiver re-derives every other seed
        from the one-pattern frame overlap
        (:func:`repro.stream.protocol.advance_seed_state`).
        """
        config = sequencer.imager.config
        stats = StreamStats()
        header = StreamHeader(
            kind="video",
            scene_shape=(config.rows, config.cols),
            tile_shape=(config.rows, config.cols),
            gop_size=self.gop_size,
        )
        await self._send_header(header, stats)
        # The governor must fix one sample count per GOP: seed re-derivation
        # needs every chained frame's advance to be announced in its header,
        # and a keyframe budget must also fit its seed bits.  Re-asking the
        # governor at each GOP boundary is where closed-loop rate changes
        # land; the open-loop governor returns the same count every time, so
        # this stays byte-identical to fixing the count up front.
        gop_samples: dict[int, int] = {}

        def samples_for(index: int) -> int:
            gop = index // self.gop_size
            if gop not in gop_samples:
                gop_samples[gop] = self.governor.samples_for_frame(
                    config,
                    max_samples=sequencer.samples_per_frame,
                    include_seed=True,
                )
            return gop_samples[gop]

        iterator = iter(
            sequencer.stream_frames(
                scenes,
                fidelity=fidelity,
                samples_for_frame=samples_for,
                **capture_kwargs,
            )
        )
        sentinel = object()
        index = 0
        tel = active(self.telemetry)
        while True:
            # The capture span is recorded after the fact (add_span) so the
            # sentinel pull that ends the stream never opens a phantom frame.
            capture_started = tel.clock.now() if tel is not None else 0.0
            frame = await self._run(next, iterator, sentinel)
            if frame is sentinel:
                break
            if tel is not None:
                tel.add_span(
                    self.stream_id,
                    index,
                    SPAN_CAPTURE,
                    capture_started,
                    tel.clock.now(),
                )
            keyframe = index % self.gop_size == 0
            sent = await self._send_frame(
                frame, stats, frame_index=index, keyframe=keyframe
            )
            if self._segmented:
                sent += await self._send_chunk(
                    ChunkType.FRAME_COMPLETE,
                    encode_frame_complete(index, self._frame_chunk_count(frame)),
                    stats,
                    frame_index=index,
                )
            stats.n_frames += 1
            stats.samples_per_frame.append(frame.n_samples)
            stats.bytes_per_frame.append(sent)
            index += 1
        return await self._finish(stats)

    # --------------------------------------------------------------- tiled
    @_close_on_error
    async def stream_tiled(
        self,
        array: TiledSensorArray,
        photocurrent: np.ndarray,
        *,
        fidelity: str = "behavioural",
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream one mosaic frame, tile chunks flowing as tiles finish.

        Tiles come from
        :meth:`~repro.sensor.shard.TiledSensorArray.iter_capture`: tile
        ``(0, 0)`` is encoded and on the wire while the executor is still
        capturing the rest of the mosaic.  Every tile is self-contained
        (own seed); a ``FRAME_COMPLETE`` barrier closes the frame.
        """
        self._reject_segmented("stream_tiled")
        stats = StreamStats()
        header = StreamHeader(
            kind="tiled",
            scene_shape=array.scene_shape,
            tile_shape=array.tile_shape,
            gop_size=1,
        )
        await self._send_header(header, stats)
        ratio = self.governor.ratio_for_frame(
            array.imagers[0][0].config,
            array.scene_shape[0] * array.scene_shape[1],
            n_tiles=array.n_tiles,
        )
        iterator = array.iter_capture(
            photocurrent,
            fidelity=fidelity,
            compression_ratio=ratio,
            **capture_kwargs,
        )
        sentinel = object()
        total_samples = 0
        frame_bytes = 0
        tel = active(self.telemetry)
        while True:
            capture_started = tel.clock.now() if tel is not None else 0.0
            pair = await self._run(next, iterator, sentinel)
            if pair is sentinel:
                break
            if tel is not None:
                # Per-tile intervals merge into one capture envelope for the
                # single mosaic frame (index 0).
                tel.add_span(
                    self.stream_id, 0, SPAN_CAPTURE, capture_started, tel.clock.now()
                )
            slot, frame = pair
            frame_bytes += await self._send_frame(
                frame,
                stats,
                frame_index=0,
                grid_row=slot.grid_row,
                grid_col=slot.grid_col,
            )
            total_samples += frame.n_samples
        frame_bytes += await self._send_chunk(
            ChunkType.FRAME_COMPLETE,
            encode_frame_complete(0, array.n_tiles),
            stats,
            frame_index=0,
        )
        stats.n_frames = 1
        stats.samples_per_frame.append(total_samples)
        stats.bytes_per_frame.append(frame_bytes)
        return await self._finish(stats)

    @_close_on_error
    async def stream_tiled_video(
        self,
        array: TiledSensorArray,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        photocurrents: bool = False,
        **capture_kwargs: Any,
    ) -> StreamStats:
        """Stream a tiled video sequence, GOP by GOP, seed-once per tile.

        Scenes are consumed in groups of ``gop_size``; each GOP is captured
        through
        :meth:`~repro.sensor.shard.TiledSensorArray.capture_sequence` with
        ``advance=True`` (every tile's CA free-runs across GOP boundaries),
        then emitted frame by frame: one ``FRAME_DATA`` chunk per tile —
        seeds riding only on the GOP's first frame — and one
        ``FRAME_COMPLETE`` barrier per frame.  ``photocurrents=True`` treats
        ``scenes`` as photocurrent maps instead of normalised scenes.
        """
        self._reject_segmented("stream_tiled_video")
        stats = StreamStats()
        header = StreamHeader(
            kind="tiled-video",
            scene_shape=array.scene_shape,
            tile_shape=array.tile_shape,
            gop_size=self.gop_size,
        )
        await self._send_header(header, stats)
        ratio = self.governor.ratio_for_frame(
            array.imagers[0][0].config,
            array.scene_shape[0] * array.scene_shape[1],
            n_tiles=array.n_tiles,
        )
        frame_index = 0
        iterator = iter(scenes)
        tel = active(self.telemetry)
        while True:
            gop = []
            for _ in range(self.gop_size):
                try:
                    gop.append(next(iterator))
                except StopIteration:
                    break
            if not gop:
                break
            capture = (
                array.capture_sequence if photocurrents else array.capture_scene_sequence
            )
            capture_started = tel.clock.now() if tel is not None else 0.0
            results = await self._run(
                lambda g=gop: capture(
                    g,
                    fidelity=fidelity,
                    compression_ratio=ratio,
                    advance=True,
                    **capture_kwargs,
                )
            )
            if tel is not None:
                # The GOP is captured in one batched call; each of its frames
                # records the same capture interval.
                capture_ended = tel.clock.now()
                for gop_offset in range(len(results)):
                    tel.add_span(
                        self.stream_id,
                        frame_index + gop_offset,
                        SPAN_CAPTURE,
                        capture_started,
                        capture_ended,
                    )
            for gop_offset, result in enumerate(results):
                keyframe = gop_offset == 0
                frame_bytes = 0
                for slot, frame in result.frames():
                    frame_bytes += await self._send_frame(
                        frame,
                        stats,
                        frame_index=frame_index,
                        grid_row=slot.grid_row,
                        grid_col=slot.grid_col,
                        keyframe=keyframe,
                    )
                frame_bytes += await self._send_chunk(
                    ChunkType.FRAME_COMPLETE,
                    encode_frame_complete(frame_index, array.n_tiles),
                    stats,
                    frame_index=frame_index,
                )
                stats.n_frames += 1
                stats.samples_per_frame.append(result.n_samples)
                stats.bytes_per_frame.append(frame_bytes)
                frame_index += 1
        return await self._finish(stats)
