"""Property-based tests of end-to-end invariants of the sensing chain."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cs.matrices import ca_xor_matrix
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import list_scenes, make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


@settings(max_examples=10, deadline=None)
@given(
    scene_kind=st.sampled_from(list_scenes()),
    seed=st.integers(0, 1000),
    n_samples=st.integers(1, 40),
)
def test_behavioural_capture_is_exact_phi_times_codes(scene_kind, seed, n_samples):
    """With the LSB error disabled, the sensor output is exactly y = Φ x."""
    imager = CompressiveImager(SensorConfig(rows=16, cols=16), seed=seed)
    scene = make_scene(scene_kind, (16, 16), seed=seed)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    frame = imager.capture(conversion.convert(scene), n_samples=n_samples, lsb_error=False)
    phi = frame.measurement_matrix()
    expected = phi.astype(np.int64) @ frame.digital_image.reshape(-1)
    assert np.array_equal(frame.samples, expected)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), n_samples=st.integers(1, 30))
def test_samples_respect_eq1_bit_budget(seed, n_samples):
    """No compressed sample can exceed the Eq. (1) register width."""
    config = SensorConfig(rows=16, cols=16)
    imager = CompressiveImager(config, seed=seed)
    scene = make_scene("natural", (16, 16), seed=seed)
    frame = imager.capture_scene(scene, n_samples=n_samples)
    assert frame.samples.max() < (1 << config.compressed_sample_bits)
    assert frame.samples.min() >= 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), n_samples=st.integers(1, 20))
def test_ca_xor_matrix_rows_match_selection_density_bounds(seed, n_samples):
    """Every row of Φ selects between 0 and all pixels, and typically about half."""
    phi = ca_xor_matrix(n_samples, (16, 16), seed=seed, warmup_steps=4)
    row_sums = phi.sum(axis=1)
    assert np.all(row_sums >= 0)
    assert np.all(row_sums <= 256)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_capture_determinism_across_imager_instances(seed):
    """Identical seeds produce identical frames — full experiment reproducibility."""
    config = SensorConfig(rows=16, cols=16)
    scene = make_scene("blobs", (16, 16), seed=7)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    current = conversion.convert(scene)
    frame_a = CompressiveImager(config, seed=seed).capture(current, n_samples=12)
    frame_b = CompressiveImager(config, seed=seed).capture(current, n_samples=12)
    assert np.array_equal(frame_a.samples, frame_b.samples)
    assert np.array_equal(frame_a.seed_state, frame_b.seed_state)
