"""Solver profiling hooks: series semantics and strict read-only behaviour."""

import numpy as np
import pytest

from repro.cs.solvers.batched import batched_proximal_gradient
from repro.cs.solvers.iterative import fista, iht, ista
from repro.cs.structured import StructuredSensingOperator
from repro.telemetry import SolverProfile


def _problem(seed=0, m=30, n=64):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((m, n))
    signal = np.zeros(n)
    signal[[3, 17, 40]] = [1.0, -2.0, 0.5]
    return matrix, matrix @ signal


def _operator_stack(n_tiles=4, m=24, side=8):
    operators = []
    for index in range(n_tiles):
        rng = np.random.default_rng(index)
        rows = (rng.random((m, side)) < 0.5).astype(float)
        cols = (rng.random((m, side)) < 0.5).astype(float)
        operators.append(StructuredSensingOperator(rows, cols))
    measurements = np.stack(
        [
            op.matvec(np.random.default_rng(100 + index).standard_normal(op.n_coefficients))
            for index, op in enumerate(operators)
        ]
    )
    return operators, measurements


class TestSolverProfileObject:
    def test_records_and_finishes(self):
        profile = SolverProfile()
        profile.record_step_size(0.5, provenance="provided")
        profile.record_iteration(2.0, 1.0)
        profile.record_iteration(1.0, 0.5, frozen=3)
        profile.finish(converged=True)
        assert profile.step_size == 0.5
        assert profile.step_size_provenance == "provided"
        assert profile.objectives == [2.0, 1.0]
        assert profile.residual_norms == [1.0, 0.5]
        assert profile.frozen_counts == [3]
        assert profile.n_iterations == 2
        assert profile.converged is True
        assert profile.monotone

    def test_provenance_is_validated(self):
        with pytest.raises(ValueError, match="provenance"):
            SolverProfile().record_step_size(0.5, provenance="guessed")

    def test_monotone_detects_increases(self):
        profile = SolverProfile()
        profile.record_iteration(1.0, 1.0)
        profile.record_iteration(2.0, 1.0)
        assert not profile.monotone


class TestIterativeSolverHooks:
    def test_ista_profile_matches_the_solve(self):
        matrix, measurements = _problem()
        profile = SolverProfile()
        result = ista(
            matrix, measurements, regularization=0.05, max_iterations=40,
            profile=profile,
        )
        assert profile.n_iterations == result.n_iterations
        assert profile.residual_norms == result.history
        assert profile.converged == result.converged
        assert profile.n_tiles == 1
        assert profile.step_size_provenance == "estimated"
        # ISTA is a descent method on the composite objective.
        assert profile.monotone
        # objective = 0.5 r^2 + lambda * l1 >= 0.5 r^2
        for objective, residual in zip(profile.objectives, profile.residual_norms):
            assert objective >= 0.5 * residual**2 - 1e-12

    def test_profiled_solve_is_bit_identical(self):
        matrix, measurements = _problem(seed=3)
        plain = fista(matrix, measurements, regularization=0.05, max_iterations=30)
        profiled = fista(
            matrix, measurements, regularization=0.05, max_iterations=30,
            profile=SolverProfile(),
        )
        assert np.array_equal(plain.coefficients, profiled.coefficients)
        assert plain.history == profiled.history

    def test_provided_step_size_is_stamped(self):
        matrix, measurements = _problem()
        profile = SolverProfile()
        fista(
            matrix, measurements, regularization=0.05, max_iterations=5,
            step_size=1e-3, profile=profile,
        )
        assert profile.step_size == 1e-3
        assert profile.step_size_provenance == "provided"

    def test_iht_records_data_fidelity_objective(self):
        matrix, measurements = _problem()
        profile = SolverProfile()
        result = iht(
            matrix, measurements, sparsity=3, max_iterations=30, profile=profile
        )
        assert profile.n_iterations == result.n_iterations
        for objective, residual in zip(profile.objectives, profile.residual_norms):
            assert objective == pytest.approx(0.5 * residual**2)


class TestBatchedSolverHooks:
    def test_batched_profile_counts_frozen_tiles(self):
        operators, measurements = _operator_stack()
        profile = SolverProfile()
        results = batched_proximal_gradient(
            operators, measurements, regularization=0.3, max_iterations=300,
            profile=profile,
        )
        assert profile.n_tiles == len(operators)
        assert profile.step_size_provenance == "estimated"
        assert len(profile.frozen_counts) == profile.n_iterations
        # No tile is frozen entering iteration 1; the count never decreases.
        assert profile.frozen_counts[0] == 0
        assert profile.frozen_counts == sorted(profile.frozen_counts)
        assert profile.converged == all(result.converged for result in results)
        if profile.converged:
            # Each converged tile stops iterating, so the last iteration ran
            # with every *other* tile already frozen.
            assert profile.frozen_counts[-1] == len(operators) - 1

    def test_batched_profiled_solve_is_bit_identical(self):
        operators, measurements = _operator_stack()
        plain = batched_proximal_gradient(
            operators, measurements, regularization=0.05, max_iterations=25
        )
        profiled = batched_proximal_gradient(
            operators, measurements, regularization=0.05, max_iterations=25,
            profile=SolverProfile(),
        )
        for a, b in zip(plain, profiled):
            assert np.array_equal(a.coefficients, b.coefficients)
            assert a.history == b.history

    def test_provided_steps_are_stamped_with_their_mean(self):
        operators, measurements = _operator_stack()
        steps = np.array([1e-3, 2e-3, 3e-3, 4e-3])
        profile = SolverProfile()
        batched_proximal_gradient(
            operators, measurements, regularization=0.05, max_iterations=5,
            step_sizes=steps, profile=profile,
        )
        assert profile.step_size == pytest.approx(float(steps.mean()))
        assert profile.step_size_provenance == "provided"
