"""Tests for block-based compressive sampling (the baseline strategy)."""

import numpy as np
import pytest

from repro.cs.block import BlockCompressiveSampler
from repro.cs.metrics import psnr
from repro.optics.scenes import make_scene


class TestConfiguration:
    def test_block_count_and_sample_budget(self):
        sampler = BlockCompressiveSampler((64, 64), block_size=8, compression_ratio=0.4)
        assert sampler.n_blocks == 64
        assert sampler.samples_per_block == int(round(0.4 * 64))
        assert sampler.total_samples == 64 * sampler.samples_per_block

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError):
            BlockCompressiveSampler((60, 60), block_size=8)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            BlockCompressiveSampler((64, 64), compression_ratio=0.0)

    def test_describe_reports_budget(self):
        sampler = BlockCompressiveSampler((32, 32), block_size=16, compression_ratio=0.25)
        description = sampler.describe()
        assert description["n_blocks"] == 4
        assert description["compression_ratio"] == pytest.approx(0.25, abs=0.01)


class TestMeasurement:
    def test_measurement_shape(self):
        sampler = BlockCompressiveSampler((32, 32), block_size=8, compression_ratio=0.3, seed=1)
        scene = make_scene("blobs", (32, 32), seed=2)
        samples = sampler.measure(scene)
        assert samples.shape == (16, sampler.samples_per_block)

    def test_measurement_is_linear(self):
        sampler = BlockCompressiveSampler((16, 16), block_size=8, compression_ratio=0.5, seed=3)
        a = make_scene("gradient", (16, 16), seed=4)
        b = make_scene("blobs", (16, 16), seed=5)
        assert np.allclose(sampler.measure(a + b), sampler.measure(a) + sampler.measure(b))

    def test_wrong_shape_rejected(self):
        sampler = BlockCompressiveSampler((32, 32))
        with pytest.raises(ValueError):
            sampler.measure(np.zeros((16, 16)))

    def test_shared_matrix_across_blocks(self):
        """All blocks use the same Φ_B — constant blocks yield identical samples."""
        sampler = BlockCompressiveSampler((16, 16), block_size=8, compression_ratio=0.5, seed=6)
        scene = np.ones((16, 16))
        samples = sampler.measure(scene)
        assert np.allclose(samples, samples[0])


class TestReconstruction:
    def test_reconstruction_recovers_smooth_scene(self):
        sampler = BlockCompressiveSampler((32, 32), block_size=8, compression_ratio=0.5, seed=7)
        scene = make_scene("blobs", (32, 32), seed=8)
        samples = sampler.measure(scene)
        recovered = sampler.reconstruct(samples, max_iterations=150)
        assert recovered.shape == (32, 32)
        assert psnr(scene, recovered) > 20.0

    def test_more_samples_give_better_reconstruction(self):
        scene = make_scene("blobs", (32, 32), seed=9)
        low = BlockCompressiveSampler((32, 32), block_size=8, compression_ratio=0.15, seed=10)
        high = BlockCompressiveSampler((32, 32), block_size=8, compression_ratio=0.6, seed=10)
        psnr_low = psnr(scene, low.reconstruct(low.measure(scene), max_iterations=120))
        psnr_high = psnr(scene, high.reconstruct(high.measure(scene), max_iterations=120))
        assert psnr_high > psnr_low

    def test_omp_solver_path(self):
        sampler = BlockCompressiveSampler((16, 16), block_size=8, compression_ratio=0.6, seed=11)
        scene = make_scene("gradient", (16, 16), seed=12)
        recovered = sampler.reconstruct(sampler.measure(scene), solver="omp", sparsity=10)
        assert psnr(scene, recovered) > 18.0

    def test_invalid_solver_rejected(self):
        sampler = BlockCompressiveSampler((16, 16), block_size=8)
        with pytest.raises(ValueError):
            sampler.reconstruct(np.zeros((4, sampler.samples_per_block)), solver="bogus")

    def test_wrong_sample_shape_rejected(self):
        sampler = BlockCompressiveSampler((16, 16), block_size=8)
        with pytest.raises(ValueError):
            sampler.reconstruct(np.zeros((3, 3)))


class TestCAMatrixOption:
    def test_ca_matrix_built_by_shared_builder(self):
        from repro.ca.selection import ca_measurement_matrix
        from repro.utils.rng import nonzero_seed_bits

        sampler = BlockCompressiveSampler(
            (16, 16), block_size=8, compression_ratio=0.5, matrix="ca", seed=5
        )
        expected = ca_measurement_matrix(
            sampler.samples_per_block, 8, 8, nonzero_seed_bits(16, 5), warmup_steps=8
        ).astype(float)
        assert np.array_equal(sampler.phi_block, expected)
        assert set(np.unique(sampler.phi_block)).issubset({0.0, 1.0})

    def test_ca_matrix_reconstructs(self):
        sampler = BlockCompressiveSampler(
            (16, 16), block_size=8, compression_ratio=0.6, matrix="ca", seed=6
        )
        scene = make_scene("gradient", (16, 16), seed=3)
        recovered = sampler.reconstruct(sampler.measure(scene), max_iterations=120)
        assert psnr(scene, recovered) > 18.0

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            BlockCompressiveSampler((16, 16), block_size=8, matrix="gaussian")

    def test_ca_matrix_rejects_degenerate_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            BlockCompressiveSampler((16, 16), block_size=1, matrix="ca")


class TestFloat32FastMode:
    def test_float32_measurements_carry_dtype(self):
        sampler = BlockCompressiveSampler(
            (16, 16), block_size=8, compression_ratio=0.5, seed=4, dtype="float32"
        )
        scene = make_scene("gradient", (16, 16), seed=3)
        samples = sampler.measure(scene)
        assert sampler.phi_block.dtype == np.float32
        assert samples.dtype == np.float32

    def test_float32_measurements_match_float64(self):
        scene = make_scene("gradient", (16, 16), seed=3)
        exact = BlockCompressiveSampler(
            (16, 16), block_size=8, compression_ratio=0.5, seed=4
        )
        fast = BlockCompressiveSampler(
            (16, 16), block_size=8, compression_ratio=0.5, seed=4, dtype="float32"
        )
        assert np.allclose(exact.measure(scene), fast.measure(scene), rtol=1e-5)

    def test_float32_reconstruction_still_solves_in_float64(self):
        sampler = BlockCompressiveSampler(
            (16, 16), block_size=8, compression_ratio=0.6, seed=4, dtype="float32"
        )
        scene = make_scene("gradient", (16, 16), seed=3)
        recovered = sampler.reconstruct(sampler.measure(scene), max_iterations=120)
        assert recovered.dtype == np.float64
        assert psnr(scene, recovered) > 18.0

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            BlockCompressiveSampler((16, 16), block_size=8, dtype="float16")
