"""Synthetic scenes and the optical/electrical front-end model.

The prototype chip was characterised with lab optics; here the stimulus is
synthetic.  :mod:`repro.optics.scenes` generates test images with the
sparsity statistics that matter for compressive sampling (piecewise-smooth
regions, 1/f spectra, bars, point sources), and :mod:`repro.optics.photo`
converts scene irradiance into per-pixel photocurrents with the usual noise
sources (shot noise, dark current, fixed-pattern noise).
"""

from repro.optics.photo import (
    PhotoConversion,
    irradiance_to_photocurrent,
    photocurrent_image,
)
from repro.optics.motion import (
    brightness_ramp_sequence,
    drifting_sequence,
    orbiting_blob_sequence,
    random_walk_sequence,
)
from repro.optics.scenes import SceneGenerator, list_scenes, make_scene

__all__ = [
    "SceneGenerator",
    "make_scene",
    "list_scenes",
    "PhotoConversion",
    "irradiance_to_photocurrent",
    "photocurrent_image",
    "drifting_sequence",
    "orbiting_blob_sequence",
    "brightness_ramp_sequence",
    "random_walk_sequence",
]
