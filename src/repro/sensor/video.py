"""Multi-frame (video) operation of the compressive imager.

The paper's sensor runs continuously at 30 fps: the CA keeps evolving from
frame to frame, so consecutive frames use different measurement matrices while
the receiver stays synchronised for free (it knows the seed and how many
samples have been consumed).  :class:`VideoSequencer` models that operation:
it captures a sequence of scenes, advances the selection CA across frames
exactly as the hardware would, and produces one :class:`CompressedFrame` per
input scene, each carrying the CA state needed to rebuild its own Φ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from repro.optics.photo import PhotoConversion
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame, CompressiveImager
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive


@dataclass
class VideoCaptureResult:
    """The output of a multi-frame capture.

    Attributes
    ----------
    frames:
        One :class:`CompressedFrame` per input scene, in order.
    samples_per_frame:
        Compressed samples delivered for each frame.
    total_bits:
        Total payload bits over the sequence (samples only, excluding headers).
    """

    frames: list[CompressedFrame] = field(default_factory=list)
    samples_per_frame: int = 0

    @property
    def n_frames(self) -> int:
        """Number of captured frames."""
        return len(self.frames)

    @property
    def total_bits(self) -> int:
        """Total compressed payload of the sequence in bits."""
        return sum(frame.compressed_bits for frame in self.frames)

    @property
    def average_compression_ratio(self) -> float:
        """Mean delivered-samples-per-pixel over the sequence."""
        if not self.frames:
            return 0.0
        return float(np.mean([frame.compression_ratio for frame in self.frames]))


class VideoSequencer:
    """Captures a sequence of scenes with a continuously-running selection CA.

    Parameters
    ----------
    imager:
        The sensor model.  Its selection generator is advanced across frames;
        the sequencer snapshots the CA state at the start of every frame so
        each produced :class:`CompressedFrame` is independently decodable.
    conversion:
        Scene-to-photocurrent conversion shared by all frames (fixed-pattern
        noise stays fixed across the sequence, as it does on a real die).
    samples_per_frame:
        Compressed samples per frame; defaults to the configuration's
        ``R * M * N``.
    """

    def __init__(
        self,
        imager: CompressiveImager | None = None,
        *,
        conversion: PhotoConversion | None = None,
        samples_per_frame: int | None = None,
        seed: int = 2018,
    ) -> None:
        self.imager = imager or CompressiveImager(SensorConfig(), seed=seed)
        self.conversion = conversion or PhotoConversion(
            seed=derive_seed(seed, "video-photo")
        )
        if samples_per_frame is None:
            samples_per_frame = self.imager.config.samples_per_frame
        check_positive("samples_per_frame", samples_per_frame)
        self.samples_per_frame = int(samples_per_frame)

    def capture_sequence(
        self,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        dtype: str = "float64",
    ) -> VideoCaptureResult:
        """Capture every scene in order, advancing the CA between frames.

        The hardware never re-seeds its CA between frames; the whole sequence
        is delegated to :meth:`~repro.sensor.imager.CompressiveImager.capture_batch`,
        which evolves one shared CA state stack for all frames, so frame
        ``k``'s measurement matrix picks up exactly where frame ``k-1``
        stopped and the full sequence is captured through the batched capture
        machinery in one pass — the rank-structured Φ @ x engine for
        ``fidelity="behavioural"``, the column-parallel arbitration engine
        (token protocol, queueing, deadline losses) for ``fidelity="event"``.

        Parameters
        ----------
        scenes : iterable of numpy.ndarray
            Normalised scenes, each of shape ``(rows, cols)``; the shared
            :class:`~repro.optics.photo.PhotoConversion` turns them into
            photocurrents (fixed-pattern noise stays fixed across frames).
        fidelity : {"behavioural", "event"}
            Per-frame capture engine.
        auto_expose, lsb_error : bool
            As in :meth:`~repro.sensor.imager.CompressiveImager.capture`.
        dtype : {"float64", "float32"}
            Behavioural arithmetic width for the whole sequence; the float32
            fast mode trades the bit-exact LSB bookkeeping for speed on very
            large arrays (see
            :data:`repro.sensor.imager.FLOAT32_SAMPLE_ATOL`).

        Returns
        -------
        VideoCaptureResult
            One independently decodable :class:`CompressedFrame` per scene.
        """
        result = VideoCaptureResult(samples_per_frame=self.samples_per_frame)
        photocurrents = [
            self.conversion.convert(np.asarray(scene, dtype=float)) for scene in scenes
        ]
        result.frames = self.imager.capture_batch(
            photocurrents,
            n_samples=self.samples_per_frame,
            fidelity=fidelity,
            auto_expose=auto_expose,
            lsb_error=lsb_error,
            dtype=dtype,
        )
        return result

    def stream_frames(
        self,
        scenes: Iterable[np.ndarray],
        *,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        dtype: str = "float64",
        samples_for_frame: Callable[[int], int] | None = None,
    ) -> Iterator[CompressedFrame]:
        """Yield frames one at a time while the selection CA keeps running.

        The lazy, streaming form of :meth:`capture_sequence`: each scene is
        captured through a single-frame
        :meth:`~repro.sensor.imager.CompressiveImager.capture_batch` call,
        which leaves the imager's CA positioned one pattern past the frame —
        so the produced frames are bit-identical to one batched
        :meth:`capture_sequence` over the same scenes, but each is available
        (and can go on the wire) before the next scene is even rendered.
        ``scenes`` may be an unbounded iterator; nothing is buffered.

        Parameters
        ----------
        scenes : iterable of numpy.ndarray
            Normalised scenes, consumed lazily.
        fidelity, auto_expose, lsb_error, keep_digital_image, dtype:
            As in :meth:`capture_sequence`, applied per frame.
        samples_for_frame : callable, optional
            ``frame_index -> n_samples`` override of the fixed per-frame
            sample budget — the hook the streaming bit-rate governor uses to
            degrade frames on a congested channel.  The receiver stays
            synchronised because every frame's header carries its own sample
            count.

        Yields
        ------
        CompressedFrame
            One independently decodable frame per scene, in order.
        """
        for index, scene in enumerate(scenes):
            n_samples = (
                self.samples_per_frame
                if samples_for_frame is None
                else int(samples_for_frame(index))
            )
            photocurrent = self.conversion.convert(np.asarray(scene, dtype=float))
            yield self.imager.capture_batch(
                [photocurrent],
                n_samples=n_samples,
                fidelity=fidelity,
                auto_expose=auto_expose,
                lsb_error=lsb_error,
                keep_digital_image=keep_digital_image,
                dtype=dtype,
            )[0]


def temporal_difference_energy(frames: list[CompressedFrame]) -> np.ndarray:
    """Relative sample-domain change between consecutive frames.

    Because consecutive frames use different selection patterns, this is not a
    motion detector by itself, but it is a cheap indicator of scene change the
    camera node can compute without reconstructing anything.
    """
    if len(frames) < 2:
        return np.zeros(0)
    energies = []
    for previous, current in zip(frames[:-1], frames[1:]):
        n = min(previous.n_samples, current.n_samples)
        a = previous.samples[:n].astype(float)
        b = current.samples[:n].astype(float)
        denominator = float(np.linalg.norm(a)) or 1.0
        energies.append(float(np.linalg.norm(b - a) / denominator))
    return np.array(energies)
