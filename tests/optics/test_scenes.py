"""Tests for the synthetic scene generator."""

import numpy as np
import pytest

from repro.optics.scenes import SceneGenerator, list_scenes, make_scene


class TestMakeScene:
    @pytest.mark.parametrize("kind", list_scenes())
    def test_all_kinds_produce_valid_scenes(self, kind):
        scene = make_scene(kind, (32, 32), seed=1)
        assert scene.shape == (32, 32)
        assert scene.min() >= 0.0
        assert scene.max() <= 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scene kind"):
            make_scene("nonexistent")

    def test_reproducible_for_fixed_seed(self):
        assert np.array_equal(
            make_scene("natural", (32, 32), seed=7), make_scene("natural", (32, 32), seed=7)
        )

    def test_different_seeds_differ(self):
        a = make_scene("natural", (32, 32), seed=7)
        b = make_scene("natural", (32, 32), seed=8)
        assert not np.array_equal(a, b)

    def test_non_square_shapes_supported(self):
        assert make_scene("gradient", (16, 48), seed=1).shape == (16, 48)

    def test_points_scene_is_sparse(self):
        scene = make_scene("points", (64, 64), seed=3)
        bright = np.count_nonzero(scene > 0.5)
        assert bright < 30

    def test_natural_scene_has_energy_at_low_frequencies(self):
        """1/f scenes concentrate spectral energy near DC."""
        scene = make_scene("natural", (64, 64), seed=5)
        spectrum = np.abs(np.fft.fft2(scene - scene.mean()))
        low = spectrum[:8, :8].sum()
        high = spectrum[24:40, 24:40].sum()
        assert low > high

    def test_checkerboard_is_binary(self):
        scene = make_scene("checkerboard", (32, 32), seed=2)
        assert set(np.unique(scene)).issubset({0.0, 1.0})


class TestSceneGenerator:
    def test_deterministic_stream(self):
        a = SceneGenerator((32, 32), seed=11)
        b = SceneGenerator((32, 32), seed=11)
        assert np.array_equal(a.scene(4), b.scene(4))

    def test_batch_shape(self):
        generator = SceneGenerator((16, 16), seed=1)
        assert generator.batch(5).shape == (5, 16, 16)

    def test_kind_cycling(self):
        generator = SceneGenerator((16, 16), kinds=("gradient", "points"), seed=1)
        # Even indices are gradients (smooth), odd indices are point scenes (sparse).
        assert np.count_nonzero(generator.scene(1) > 0.5) < np.count_nonzero(
            generator.scene(0) > 0.5
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SceneGenerator((16, 16), kinds=("bogus",))
