"""Property tests for the partial-Φ (masked row-subset) reconstruction path.

Dropped chunks are dropped rows of Φ: the lossy streaming path hands
:func:`~repro.recon.pipeline.reconstruct_frame` a boolean survival mask and
solves on the surviving row subset.  The properties pinned here are the
ones the loss-resilience layer leans on:

* the masked **structured** fast path equals the executable **dense**
  row-subset reference solve to 1e-8 — masking commutes with the operator
  implementation;
* the masked solve reads *only* the surviving samples — corrupting every
  masked-out sample changes nothing, byte for byte;
* an all-true mask is byte-identical to no mask at all (the zero-loss
  closed loop degenerates exactly to the open loop);
* degenerate masks (wrong length, nothing surviving) are rejected loudly.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optics.scenes import make_scene
from repro.recon.operator import normalize_sample_mask
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager

N_SAMPLES = 40
KWARGS = dict(solver="fista", max_iterations=6)

_FRAME = CompressiveImager(SensorConfig(rows=16, cols=16), seed=12).capture_scene(
    make_scene("blobs", (16, 16), seed=4), n_samples=N_SAMPLES
)


def _mask_from_dropped(dropped):
    mask = np.ones(N_SAMPLES, dtype=bool)
    mask[list(dropped)] = False
    return mask


@settings(max_examples=15, deadline=None)
@given(
    dropped=st.sets(
        st.integers(0, N_SAMPLES - 1), min_size=1, max_size=N_SAMPLES - 4
    )
)
def test_masked_structured_solve_equals_dense_row_subset(dropped):
    mask = _mask_from_dropped(dropped)
    structured = reconstruct_frame(
        _FRAME, sample_mask=mask, operator="structured", **KWARGS
    )
    dense = reconstruct_frame(_FRAME, sample_mask=mask, operator="dense", **KWARGS)
    np.testing.assert_allclose(
        structured.image, dense.image, atol=1e-8, rtol=0.0
    )


@settings(max_examples=15, deadline=None)
@given(
    dropped=st.sets(
        st.integers(0, N_SAMPLES - 1), min_size=1, max_size=N_SAMPLES - 4
    ),
    noise_seed=st.integers(0, 2**16),
)
def test_masked_solve_reads_only_the_surviving_samples(dropped, noise_seed):
    # The resilient session zero-fills lost sample slots; the solve must be
    # invariant to whatever garbage sits in masked-out positions.
    mask = _mask_from_dropped(dropped)
    clean = reconstruct_frame(_FRAME, sample_mask=mask, **KWARGS)
    corrupted_samples = _FRAME.samples.copy()
    rng = np.random.default_rng(noise_seed)
    corrupted_samples[~mask] = rng.integers(
        0, 256, size=int((~mask).sum()), dtype=corrupted_samples.dtype
    )
    corrupted = dataclasses.replace(_FRAME, samples=corrupted_samples)
    result = reconstruct_frame(corrupted, sample_mask=mask, **KWARGS)
    assert result.image.tobytes() == clean.image.tobytes()


def test_all_true_mask_is_byte_identical_to_no_mask():
    unmasked = reconstruct_frame(_FRAME, **KWARGS)
    masked = reconstruct_frame(
        _FRAME, sample_mask=np.ones(N_SAMPLES, dtype=bool), **KWARGS
    )
    assert masked.image.tobytes() == unmasked.image.tobytes()


def test_all_true_mask_normalises_away():
    assert normalize_sample_mask(np.ones(N_SAMPLES, dtype=bool), N_SAMPLES) is None


def test_degenerate_masks_are_rejected():
    with pytest.raises(ValueError):
        normalize_sample_mask(np.ones(N_SAMPLES - 1, dtype=bool), N_SAMPLES)
    with pytest.raises(ValueError):
        normalize_sample_mask(np.zeros(N_SAMPLES, dtype=bool), N_SAMPLES)


@settings(max_examples=10, deadline=None)
@given(
    dropped=st.sets(st.integers(0, N_SAMPLES - 1), min_size=1, max_size=20)
)
def test_losing_rows_degrades_but_never_destroys_the_solve(dropped):
    # With at least half the rows surviving, the masked solve stays finite
    # and correlated with the full solve — graceful degradation, not noise.
    mask = _mask_from_dropped(dropped)
    full = reconstruct_frame(_FRAME, **KWARGS)
    partial = reconstruct_frame(_FRAME, sample_mask=mask, **KWARGS)
    assert np.isfinite(partial.image).all()
    correlation = np.corrcoef(full.image.ravel(), partial.image.ravel())[0, 1]
    assert correlation > 0.5
