"""Tests for the irradiance-to-photocurrent conversion."""

import numpy as np
import pytest

from repro.optics.photo import (
    PhotoConversion,
    irradiance_to_photocurrent,
    photocurrent_image,
    snr_from_electrons,
)


class TestPhotoConversion:
    def test_dark_scene_gives_dark_current(self):
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        current = conversion.convert(np.zeros((8, 8)))
        assert np.allclose(current, conversion.dark_current)

    def test_full_scale_scene_gives_full_scale_current(self):
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        current = conversion.convert(np.ones((8, 8)))
        expected = conversion.dark_current + conversion.full_scale_current
        assert np.allclose(current, expected)

    def test_monotonic_in_irradiance(self):
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        scene = np.linspace(0, 1, 64).reshape(8, 8)
        current = conversion.convert(scene)
        assert np.all(np.diff(current.reshape(-1)) >= 0)

    def test_scene_out_of_range_rejected(self):
        conversion = PhotoConversion()
        with pytest.raises(ValueError):
            conversion.convert(np.full((4, 4), 1.5))

    def test_non_2d_scene_rejected(self):
        with pytest.raises(ValueError):
            PhotoConversion().convert(np.zeros(16))

    def test_prnu_map_is_cached_and_deterministic(self):
        conversion = PhotoConversion(seed=3)
        assert conversion.prnu_map((8, 8)) is conversion.prnu_map((8, 8))
        other = PhotoConversion(seed=3)
        assert np.array_equal(conversion.prnu_map((8, 8)), other.prnu_map((8, 8)))

    def test_shot_noise_perturbs_but_preserves_scale(self):
        noiseless = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        noisy = PhotoConversion(prnu_sigma=0.0, shot_noise=True, seed=1)
        scene = np.full((16, 16), 0.5)
        clean = noiseless.convert(scene)
        observed = noisy.convert(scene)
        assert np.max(np.abs(observed - clean) / clean) > 1e-6
        assert np.isclose(clean.mean(), observed.mean(), rtol=0.05)

    def test_shot_noise_reproducible_for_fixed_rng(self):
        conversion = PhotoConversion(seed=9)
        scene = np.full((8, 8), 0.3)
        assert np.array_equal(conversion.convert(scene, rng=5), conversion.convert(scene, rng=5))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PhotoConversion(full_scale_current=-1.0)
        with pytest.raises(ValueError):
            PhotoConversion(integration_time=0.0)


class TestFunctionalWrappers:
    def test_irradiance_to_photocurrent_linear(self):
        scene = np.array([[0.0, 0.5], [0.75, 1.0]])
        current = irradiance_to_photocurrent(scene, full_scale_current=1e-9, dark_current=0.0)
        assert np.allclose(current, scene * 1e-9)

    def test_photocurrent_image_from_scene_name(self):
        current = photocurrent_image("gradient", (16, 16), seed=1)
        assert current.shape == (16, 16)
        assert np.all(current > 0)

    def test_photocurrent_image_from_array(self):
        scene = np.full((8, 8), 0.25)
        current = photocurrent_image(scene)
        assert current.shape == (8, 8)


class TestSnrFromElectrons:
    def test_increases_with_signal(self):
        assert snr_from_electrons(10000) > snr_from_electrons(100)

    def test_read_noise_floor_dominates_small_signals(self):
        assert snr_from_electrons(10, read_noise_electrons=100) < 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            snr_from_electrons(-5)
