"""Tests for the Eq. (1) dynamic-range analysis."""

import pytest

from repro.analysis.dynamic_range import clipping_rate, compressed_sample_bits, dynamic_range_table


class TestCompressedSampleBits:
    def test_prototype_value(self):
        assert compressed_sample_bits(8, 64, 64) == 20

    @pytest.mark.parametrize(
        "pixel_bits,rows,cols,expected",
        [(8, 8, 8, 14), (8, 16, 16, 16), (8, 256, 256, 24), (10, 64, 64, 22), (6, 64, 64, 18)],
    )
    def test_eq1_across_design_space(self, pixel_bits, rows, cols, expected):
        assert compressed_sample_bits(pixel_bits, rows, cols) == expected

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            compressed_sample_bits(0, 64, 64)


class TestDynamicRangeTable:
    def test_contains_prototype_row(self):
        table = dynamic_range_table()
        row = next(
            r for r in table if r["pixel_bits"] == 8 and r["rows"] == 64 and r["cols"] == 64
        )
        assert row["compressed_sample_bits"] == 20
        assert row["max_useful_ratio"] == pytest.approx(0.4)

    def test_ratio_decreases_with_array_size(self):
        table = [r for r in dynamic_range_table() if r["pixel_bits"] == 8]
        ratios = {(r["rows"], r["cols"]): r["max_useful_ratio"] for r in table}
        assert ratios[(8, 8)] > ratios[(64, 64)] > ratios[(256, 256)]


class TestClippingRate:
    def test_eq1_width_never_clips_worst_case(self):
        assert clipping_rate(20, 8, 4096, worst_case=True) == 0.0

    def test_one_bit_less_clips_worst_case(self):
        assert clipping_rate(19, 8, 4096, worst_case=True) == 1.0

    def test_random_selections_rarely_clip_even_at_reduced_width(self):
        """Random half-density selections sum to ~N/2 * mean code, far below worst case."""
        rate = clipping_rate(19, 8, 4096, n_trials=100, seed=1)
        assert rate == 0.0

    def test_severely_undersized_register_always_clips(self):
        rate = clipping_rate(12, 8, 4096, n_trials=50, seed=2)
        assert rate == 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            clipping_rate(0, 8, 64)
