"""Tests for rebuilding the measurement operator at the receiver."""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.operator import frame_operator, measurement_matrix_from_seed


class TestMeasurementMatrixFromSeed:
    def test_matches_sensor_matrix_bit_for_bit(self, small_imager):
        """Seed-only reconstruction of Φ is exact — the paper's central property."""
        scene = make_scene("blobs", (16, 16), seed=1)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        frame = small_imager.capture(conversion.convert(scene), n_samples=25)
        receiver_phi = measurement_matrix_from_seed(
            frame.seed_state,
            frame.n_samples,
            (16, 16),
            rule=frame.rule_number,
            steps_per_sample=frame.steps_per_sample,
            warmup_steps=frame.warmup_steps,
        )
        assert np.array_equal(receiver_phi, frame.measurement_matrix())

    def test_different_seed_gives_different_matrix(self):
        seed_a = np.zeros(32, dtype=np.uint8)
        seed_a[0] = 1
        seed_b = np.zeros(32, dtype=np.uint8)
        seed_b[1] = 1
        a = measurement_matrix_from_seed(seed_a, 10, (16, 16), warmup_steps=4)
        b = measurement_matrix_from_seed(seed_b, 10, (16, 16), warmup_steps=4)
        assert not np.array_equal(a, b)

    def test_wrong_parameters_give_wrong_matrix(self, small_imager):
        """Receiver must use the same sequencing parameters as the sensor."""
        frame = small_imager.capture_scene(make_scene("blobs", (16, 16), seed=2), n_samples=10)
        wrong = measurement_matrix_from_seed(
            frame.seed_state, 10, (16, 16), steps_per_sample=2, warmup_steps=frame.warmup_steps
        )
        assert not np.array_equal(wrong, frame.measurement_matrix())

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            measurement_matrix_from_seed(np.ones(32, dtype=np.uint8), 0, (16, 16))


class TestFrameOperator:
    def test_operator_shape_matches_frame(self, small_imager):
        frame = small_imager.capture_scene(make_scene("blobs", (16, 16), seed=3), n_samples=30)
        operator, density = frame_operator(frame, dictionary="dct")
        assert operator.shape == (30, 256)
        assert 0.0 < density < 1.0

    def test_uncentered_operator_has_zero_density(self, small_imager):
        frame = small_imager.capture_scene(make_scene("blobs", (16, 16), seed=4), n_samples=10)
        operator, density = frame_operator(frame, center=False)
        assert density == 0.0
        assert set(np.unique(operator.phi)).issubset({0.0, 1.0})

    def test_centered_operator_has_near_zero_mean(self, small_imager):
        frame = small_imager.capture_scene(make_scene("blobs", (16, 16), seed=5), n_samples=10)
        operator, _ = frame_operator(frame, center=True)
        assert abs(operator.phi.mean()) < 1e-12
