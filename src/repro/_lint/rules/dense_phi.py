"""REPRO002 — no dense Φ in hot paths.

:class:`~repro.cs.structured.StructuredSensingOperator` keeps its ``.phi``
property as a compatibility escape hatch: materialising it turns a
few-hundred-kilobyte factor pair into a multi-megabyte dense matrix and
silently forfeits the matrix-free speedup the recon-equivalence work bought.
Library hot paths therefore never touch ``.phi``; the only modules allowed to
are the operator implementations themselves (where the dense reference and
the lazy escape hatch live).  Tests and benchmarks are exempt — pinning
``structured.phi == dense.phi`` is exactly their job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro._lint.engine import Finding, ModuleContext
from repro._lint.rules.base import Rule

#: Operator modules: the dense reference and the structured escape hatch.
ALLOWED_MODULES = frozenset(
    {
        "repro/cs/operators.py",
        "repro/cs/structured.py",
    }
)


class DensePhiRule(Rule):
    rule_id = "REPRO002"
    contract = (
        "no-dense-Φ-in-hot-paths: .phi materialisation only in operator modules"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library or context.module_rel in ALLOWED_MODULES:
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "phi"
                and isinstance(node.ctx, ast.Load)
            ):
                yield self.finding(
                    context,
                    node,
                    "dense Φ materialisation (`.phi`) in library code",
                    hint=(
                        "use the matrix-free products (phi_dot/phi_rdot/"
                        "phi_dot_columns) or pass operator='dense' explicitly; "
                        "`.phi` on a structured operator expands the full "
                        "(m, rows*cols) matrix"
                    ),
                )


RULE = DensePhiRule()
