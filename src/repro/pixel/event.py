"""Event latch and pulse-generation logic of the pixel (nodes V3/V4/V5 in Fig. 1).

Once the comparator has flipped and the XOR unit has let the activation front
through, the pixel must emit exactly one pulse onto the shared column bus,
and only when the bus is free and no pixel above it is waiting.  The paper
implements this with three cooperating pieces:

* the *activation latch* — ``V_3`` rises on the first active-low edge of
  ``V_2`` and stays locked at '1' (via the feedback of ``V_3-bar``) until the
  pixel is reset, so a pixel fires at most once per compressed sample;
* the *propagation gate* — ``V_4`` is the inverse of ``V_3`` while ``Q'`` is
  high; the falling edge of ``V_4`` propagates into a rising edge of ``V_5``
  only when ``C_in`` is low (nobody above is waiting), and ``V_5`` drives the
  pull-down transistor M2 on the column bus;
* the *event termination* — when the column control unit raises the global
  ``Q``, the pixel whose M2 is on sees ``Q'`` fall, which de-asserts ``V_4``
  and then ``V_5``, ending the pulse after a controlled duration.

:class:`EventLatch` models this state machine at the logic level, one
instance per pixel.  The sensor-level column model drives it with ``C_in``
and ``Q`` and observes ``V_5``/``C_out``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PixelEvent:
    """A single pixel event as it is seen at the bottom of the column.

    Attributes
    ----------
    row, col:
        Pixel coordinates in the array.
    fire_time:
        Time (s, relative to the global reset) at which the pixel's
        comparator flipped (i.e. the ideal time-encoded value).
    emit_time:
        Time at which the pixel actually pulled the column bus down.  Equal
        to ``fire_time`` when the bus was free; later when the token protocol
        made the pixel wait.
    sampled_code:
        The counter code latched by the column's time-to-digital converter
        for this event (filled in by the sensor model).
    """

    row: int
    col: int
    fire_time: float
    emit_time: float | None = None
    sampled_code: int | None = None

    @property
    def queued_delay(self) -> float:
        """How long the token protocol held this event back (0 when bus was free)."""
        if self.emit_time is None:
            return 0.0
        return max(0.0, self.emit_time - self.fire_time)

    def with_emit_time(self, emit_time: float) -> PixelEvent:
        """Return a copy annotated with the actual bus emission time."""
        return PixelEvent(self.row, self.col, self.fire_time, emit_time, self.sampled_code)

    def with_sampled_code(self, code: int) -> PixelEvent:
        """Return a copy annotated with the TDC code assigned to this event."""
        return PixelEvent(self.row, self.col, self.fire_time, self.emit_time, int(code))


def events_from_arrays(rows, col, fire_times) -> list[PixelEvent]:
    """Build the :class:`PixelEvent` list of one column from parallel arrays.

    This is the bridge between the array-world of the batched capture engine
    and the object-world of the scalar arbiter: the equivalence tests use it
    to replay the exact event sets the batched engine arbitrated through
    :meth:`ColumnBusArbiter.arbitrate`, the executable specification.
    """
    return [
        PixelEvent(row=int(row), col=int(col), fire_time=float(fire_time))
        for row, fire_time in zip(rows, fire_times)
    ]


@dataclass
class EventLatch:
    """Logic-level model of the V3/V4/V5 pulse-generation chain of one pixel.

    The latch is deliberately event-driven rather than clocked: the sensor
    simulator calls :meth:`activate` when the comparator+XOR front arrives,
    :meth:`grant` when the token chain and bus state allow the pixel to pull
    the bus down, and :meth:`terminate` when the global ``Q`` pulse ends the
    event.  The boolean properties mirror the schematic nodes so tests can be
    written directly against the paper's description.
    """

    #: ``V_3`` — activation latch; set on the first activation, cleared by reset.
    activated: bool = False
    #: ``V_5`` — high while the pixel is driving the column bus low.
    driving_bus: bool = False
    #: True once the pixel has completed its (single) event for this sample.
    completed: bool = False
    #: Whether the pixel is waiting for the bus (activated, granted access not yet).
    _pending: bool = field(default=False, repr=False)

    def reset(self) -> None:
        """Global pixel reset: clears the latch and re-arms the pixel."""
        self.activated = False
        self.driving_bus = False
        self.completed = False
        self._pending = False

    # ------------------------------------------------------------ V3 stage
    def activate(self) -> bool:
        """Activation front arrives (falling edge of ``V_2``).

        Returns True if this call armed the pixel (first activation since
        reset); repeated activations are ignored because ``V_3`` is locked by
        its feedback.
        """
        if self.activated:
            return False
        self.activated = True
        self._pending = True
        return True

    @property
    def wants_bus(self) -> bool:
        """True when the pixel is waiting to emit its pulse (``V_4`` would fall)."""
        return self._pending and not self.driving_bus and not self.completed

    # ------------------------------------------------------------ V5 stage
    def grant(self) -> None:
        """The token chain grants the bus: ``C_in`` low, bus high — M2 turns on."""
        if not self.wants_bus:
            raise RuntimeError("grant() called on a pixel that is not waiting for the bus")
        self.driving_bus = True

    def terminate(self) -> None:
        """Global ``Q`` pulse terminates the event: M2 turns off, pixel is done."""
        if not self.driving_bus:
            raise RuntimeError("terminate() called on a pixel that is not driving the bus")
        self.driving_bus = False
        self.completed = True
        self._pending = False

    # --------------------------------------------------------- token logic
    def c_out(self, c_in: bool, bus_is_high: bool) -> bool:
        """The ``C_out`` this pixel presents to the pixel below it.

        Per the paper (3-input NAND): ``C_out`` is low (bus available to the
        pixels below) only when (1) ``C_in`` is low, (2) ``V_4`` is high —
        i.e. this pixel is not activated-and-waiting — and (3) the column bus
        is high.  Any other combination blocks the pixels below.
        """
        v4_high = not (self.wants_bus or self.driving_bus)
        return not ((not c_in) and v4_high and bus_is_high)
