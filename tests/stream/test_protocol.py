"""Tests for the chunk layer and the GOP seed chain."""

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.stream.protocol import (
    CHUNK_MAGIC,
    Chunk,
    ChunkDecoder,
    ChunkType,
    FrameData,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    decode_frame_complete,
    decode_frame_data,
    decode_stream_end,
    decode_stream_header,
    encode_chunk,
    encode_frame_complete,
    encode_frame_data,
    encode_stream_end,
    encode_stream_header,
)


def _chunk(payload=b"hello", sequence=0, chunk_type=ChunkType.FRAME_DATA):
    return Chunk(
        chunk_type=chunk_type, stream_id=7, sequence=sequence, payload=payload
    )


class TestChunkCodec:
    def test_round_trip(self):
        chunk = _chunk()
        decoded = ChunkDecoder().feed(encode_chunk(chunk))
        assert decoded == [chunk]

    def test_byte_at_a_time_reassembly(self):
        chunks = [_chunk(b"a" * 3, 0), _chunk(b"", 1), _chunk(b"bb" * 40, 2)]
        wire = b"".join(encode_chunk(chunk) for chunk in chunks)
        decoder = ChunkDecoder()
        seen = []
        for i in range(len(wire)):
            seen.extend(decoder.feed(wire[i : i + 1]))
        assert seen == chunks
        assert decoder.pending_bytes == 0

    def test_arbitrary_split_points(self):
        chunks = [_chunk(bytes(range(50)), i) for i in range(4)]
        wire = b"".join(encode_chunk(chunk) for chunk in chunks)
        for split in (1, 5, 11, 12, 13, 61, len(wire) - 1):
            decoder = ChunkDecoder()
            seen = decoder.feed(wire[:split])
            seen += decoder.feed(wire[split:])
            assert seen == chunks

    def test_bad_magic_raises(self):
        wire = bytearray(encode_chunk(_chunk()))
        wire[0] = 0x00
        with pytest.raises(StreamProtocolError, match="magic"):
            ChunkDecoder().feed(bytes(wire))

    def test_unknown_chunk_type_raises(self):
        wire = bytearray(encode_chunk(_chunk()))
        wire[1] = 200
        with pytest.raises(StreamProtocolError, match="type"):
            ChunkDecoder().feed(bytes(wire))

    def test_impossible_length_raises(self):
        import struct

        wire = struct.pack(">BBHII", CHUNK_MAGIC, 2, 1, 0, 1 << 30)
        with pytest.raises(StreamProtocolError, match="payload"):
            ChunkDecoder().feed(wire)

    def test_n_bytes_accounts_for_header(self):
        chunk = _chunk(b"xyz")
        assert chunk.n_bytes == len(encode_chunk(chunk))


class TestPayloadCodecs:
    def test_stream_header_round_trip(self):
        header = StreamHeader(
            kind="tiled-video",
            scene_shape=(256, 192),
            tile_shape=(64, 64),
            gop_size=6,
            n_frames=30,
        )
        assert decode_stream_header(encode_stream_header(header)) == header
        assert header.tiled

    def test_single_sensor_kinds_are_not_tiled(self):
        for kind in ("frame", "video"):
            header = StreamHeader(kind=kind, scene_shape=(64, 64), tile_shape=(64, 64))
            assert not header.tiled

    def test_unknown_kind_rejected(self):
        with pytest.raises(StreamProtocolError, match="kind"):
            StreamHeader(kind="holographic", scene_shape=(8, 8), tile_shape=(8, 8))

    def test_malformed_stream_header_rejected(self):
        with pytest.raises(StreamProtocolError, match="header"):
            decode_stream_header(b"\x01\x02")

    def test_frame_data_round_trip(self):
        data = FrameData(
            frame_index=12,
            grid_row=3,
            grid_col=1,
            keyframe=False,
            frame_bytes=b"\xc5\x02payload",
        )
        assert decode_frame_data(encode_frame_data(data)) == data

    def test_frame_data_too_short_rejected(self):
        with pytest.raises(StreamProtocolError, match="shorter"):
            decode_frame_data(b"\x00\x00")

    def test_frame_complete_and_stream_end(self):
        assert decode_frame_complete(encode_frame_complete(9, 16)) == (9, 16)
        assert decode_stream_end(encode_stream_end(42)) == 42
        with pytest.raises(StreamProtocolError):
            decode_frame_complete(b"\x01")
        with pytest.raises(StreamProtocolError):
            decode_stream_end(b"")


class TestSeedChain:
    """The one-pattern frame-overlap rule matches the capture engine."""

    def test_chain_matches_capture_batch(self):
        imager = CompressiveImager(
            SensorConfig(rows=12, cols=12), seed=31, warmup_steps=5
        )
        scenes = [make_scene("blobs", (12, 12), seed=i) for i in range(4)]
        conversions = [0.1 + 0.8 * scene for scene in scenes]
        frames = imager.capture_batch(
            [1e-9 * current for current in conversions], n_samples=40
        )
        chain = frames[0].seed_state
        for previous, current in zip(frames[:-1], frames[1:]):
            chain = advance_seed_state(
                chain,
                previous.rule_number,
                n_samples=previous.n_samples,
                steps_per_sample=previous.steps_per_sample,
                warmup_steps=previous.warmup_steps,
            )
            assert np.array_equal(chain, current.seed_state)

    def test_single_sample_frame_with_no_warmup_is_identity(self):
        seed = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        advanced = advance_seed_state(seed, 30, n_samples=1, warmup_steps=0)
        assert np.array_equal(advanced, seed)

    def test_warmup_steps_are_absorbed(self):
        seed = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        with_warmup = advance_seed_state(seed, 30, n_samples=1, warmup_steps=3)
        without = advance_seed_state(seed, 30, n_samples=4, steps_per_sample=1)
        assert np.array_equal(with_warmup, without)


class TestLargeGridPositions:
    def test_grid_positions_beyond_one_byte_survive(self):
        data = FrameData(
            frame_index=3,
            grid_row=300,
            grid_col=1023,
            keyframe=True,
            frame_bytes=b"\xc5\x02x",
        )
        assert decode_frame_data(encode_frame_data(data)) == data
