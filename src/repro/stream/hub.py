"""Fleet-scale ingest: one asyncio hub muxing many camera-node streams.

:class:`ReceiverHub` is the many-cameras counterpart of the single-node
:class:`~repro.stream.receiver.StreamReceiver`.  It terminates hundreds of
concurrent node connections (loopback or TCP), demultiplexes chunks by the
stream id **already carried in every chunk header** — the frozen v1 wire
layout needs no extension — and gives each stream its own
:class:`~repro.stream.session.StreamSession` (seed chains, tile barriers,
incremental reconstructor), so fleet ingest is the same FSM as single-node
ingest, just many of it.

Two hub-level policies sit on top of the sessions:

* **Fair solve scheduling** (:class:`FairSolveScheduler`) — every
  CPU-bound reconstruction the sessions produce goes through one scheduler
  that keeps a FIFO queue *per stream* and dispatches round-robin across
  streams onto a bounded pool of executor slots.  A chatty camera with
  fifty frames queued gets exactly one solve per scheduling cycle, the same
  as a camera with one frame queued — it cannot starve the rest of the
  fleet (the recorded :attr:`~FairSolveScheduler.dispatch_order` lets tests
  pin this).
* **Two-level backpressure high-watermarks** — ``per_stream_pending``
  bounds one stream's queued-plus-running solves, ``max_pending`` bounds
  the hub-wide total.  A full watermark suspends the *submitting* stream's
  connection coroutine, which (through the transport's own bounded
  buffering) stalls that camera's capture loop — while every other
  connection keeps draining.  Nothing in the hub buffers unboundedly.

Sessions may share one :class:`~repro.cs.operators.StepSizeCache`
(``share_step_cache=True``): the fleet then pays each tile-geometry power
iteration once instead of once per camera.  Off by default because warm
starts shift the step estimates and hence the reconstructed bytes — with
defaults, a hub serving a single node is **byte-identical** to
``StreamReceiver`` (a pinned test), which is the invariant that makes the
fleet path trustworthy.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import Executor
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.cs.operators import StepSizeCache
from repro.stream.protocol import (
    Chunk,
    ChunkDecoder,
    ChunkType,
    StreamProtocolError,
    encode_chunk,
)
from repro.stream.session import SessionStats, StreamResult, StreamSession
from repro.stream.transport import (
    TcpTransport,
    Transport,
    TransportClosedError,
    serve_tcp,
)
from repro.telemetry import (
    MONOTONIC_CLOCK,
    Clock,
    MetricsRegistry,
    MetricsSnapshot,
    Telemetry,
)
from repro.telemetry import (
    serve_metrics as _serve_metrics,
)
from repro.telemetry.registry import latency_quantile_gauges

# Re-exported from its new home (moved in the telemetry refactor) so
# ``from repro.stream.hub import percentile`` keeps working.
from repro.telemetry.stats import percentile as percentile  # noqa: PLC0414
from repro.utils.validation import check_positive


class DuplicateStreamIdError(StreamProtocolError):
    """A connection announced a stream id already live on another connection.

    Stream ids are the demux key: two live streams with one id would
    interleave into a single session's FSM and corrupt both.  The id
    becomes reusable again the moment its stream completes (or its
    connection dies), so fleets may recycle ids across sessions — just not
    concurrently.
    """


class HubCapacityError(StreamProtocolError):
    """The hub's ``max_streams`` bound is reached; the new stream is refused.

    Refusing loudly at admission beats degrading every existing stream:
    the rejected node sees a clean typed error while the fleet already
    being served is unaffected.
    """


class SessionResumeError(StreamProtocolError):
    """A ``SESSION_RESUME`` could not be admitted.

    Either no session is parked under the stream id (the node was never
    connected here, or a reap already salvaged it) or the resume arrived
    after the grace window lapsed — in which case the parked state settles
    partial on the spot, exactly as the reap would have.
    """


class HubPortInUseError(OSError):
    """The hub could not bind its listening (or metrics) port.

    Subclasses ``OSError`` so a node-side
    :class:`~repro.stream.node.ReconnectSupervisor` — whose default
    ``retryable`` set is ``(OSError,)`` — treats a hub that is still
    restarting as a transient, retryable condition.
    """


@dataclass
class _ParkedSession:
    """Disconnected session state awaiting a reconnect-with-resume.

    Holds everything a resumed stream needs to reconstruct byte-identically:
    the live :class:`StreamSession` (seed chains, assemblies, sequence FSM —
    untouched), plus the park time the grace window is measured from.
    """

    session: StreamSession
    parked_at: float


@dataclass
class _Job:
    """One queued unit of solver work: the thunk and its result future."""

    fn: Callable[[], Any]
    future: asyncio.Future[Any]


class FairSolveScheduler:
    """Round-robin solve dispatch across streams with two-level watermarks.

    Parameters
    ----------
    slots:
        Worker coroutines executing jobs (each runs its job on the
        executor via ``run_in_executor``).  This bounds hub-wide solver
        parallelism regardless of how many streams are connected.
    per_stream_pending:
        High-watermark on one stream's queued-plus-running jobs; ``None``
        is unbounded.  :meth:`submit` suspends the submitting stream past
        the bound — per-stream backpressure.
    max_pending:
        High-watermark on the hub-wide queued-plus-running total; ``None``
        is unbounded — global backpressure.
    executor:
        ``concurrent.futures`` executor the jobs run on; ``None`` uses the
        event loop's default thread pool.
    """

    def __init__(
        self,
        *,
        slots: int = 2,
        per_stream_pending: int | None = 2,
        max_pending: int | None = None,
        executor: Executor | None = None,
    ) -> None:
        check_positive("slots", slots)
        if per_stream_pending is not None:
            check_positive("per_stream_pending", per_stream_pending)
        if max_pending is not None:
            check_positive("max_pending", max_pending)
        self.slots = int(slots)
        self.per_stream_pending = (
            None if per_stream_pending is None else int(per_stream_pending)
        )
        self.max_pending = None if max_pending is None else int(max_pending)
        self.executor = executor
        # All scheduler state is guarded by one condition, created lazily so
        # the scheduler can be constructed outside a running event loop.
        self._cond: asyncio.Condition | None = None
        self._queues: dict[int, deque[_Job]] = {}
        self._order: deque[int] = deque()
        self._pending: dict[int, int] = {}
        self._total_pending = 0
        self._workers: list[asyncio.Task[None]] = []
        self._closed = False
        #: Stream key of every dispatch, in dispatch order — the fairness
        #: audit trail the tests assert round-robin interleaving on.
        self.dispatch_order: list[int] = []
        self.n_dispatched = 0

    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    def pending(self, key: int | None = None) -> int:
        """Queued-plus-running jobs for one stream (or hub-wide total)."""
        if key is None:
            return self._total_pending
        return self._pending.get(key, 0)

    def _has_space(self, key: int) -> bool:
        if (
            self.per_stream_pending is not None
            and self._pending.get(key, 0) >= self.per_stream_pending
        ):
            return False
        return self.max_pending is None or self._total_pending < self.max_pending

    async def submit(self, key: int, fn: Callable[[], Any]) -> asyncio.Future[Any]:
        """Queue ``fn`` under ``key``; suspends while a watermark is full."""
        if self._closed:
            raise RuntimeError("solve scheduler is closed")
        cond = self._condition()
        if not self._workers:
            self._workers = [
                asyncio.ensure_future(self._worker()) for _ in range(self.slots)
            ]
        future: asyncio.Future[Any] = asyncio.get_running_loop().create_future()
        async with cond:
            while not self._has_space(key):
                await cond.wait()
                if self._closed:
                    raise RuntimeError("solve scheduler is closed")
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = deque()
                self._order.append(key)
            queue.append(_Job(fn=fn, future=future))
            self._pending[key] = self._pending.get(key, 0) + 1
            self._total_pending += 1
            cond.notify_all()
        return future

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        cond = self._condition()
        while True:
            async with cond:
                while not self._order:
                    await cond.wait()
                key = self._order.popleft()
                queue = self._queues[key]
                job = queue.popleft()
                if queue:
                    # Re-queue the key at the *back*: the next dispatch goes
                    # to some other stream first — round-robin fairness.
                    self._order.append(key)
                else:
                    del self._queues[key]
                self.dispatch_order.append(key)
                self.n_dispatched += 1
            try:
                if job.future.cancelled():
                    continue
                try:
                    result = await loop.run_in_executor(self.executor, job.fn)
                except asyncio.CancelledError:
                    job.future.cancel()
                    raise
                except BaseException as error:
                    if not job.future.cancelled():
                        job.future.set_exception(error)
                else:
                    if not job.future.cancelled():
                        job.future.set_result(result)
            finally:
                async with cond:
                    self._pending[key] -= 1
                    if not self._pending[key]:
                        del self._pending[key]
                    self._total_pending -= 1
                    cond.notify_all()

    async def close(self) -> None:
        """Cancel the workers and fail any still-queued jobs (idempotent)."""
        self._closed = True
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.cancel()
        if workers:
            await asyncio.gather(*workers, return_exceptions=True)
        for queue in self._queues.values():
            for job in queue:
                job.future.cancel()
        self._queues.clear()
        self._order.clear()
        self._pending.clear()
        self._total_pending = 0
        if self._cond is not None:
            async with self._cond:
                self._cond.notify_all()


@dataclass
class HubStats:
    """Fleet-level snapshot assembled by :meth:`ReceiverHub.stats`.

    The loss counters aggregate the per-session loss accounting (see
    :class:`~repro.stream.session.SessionStats`); they stay zero on strict
    (non-resilient) hubs.
    """

    n_active: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_frames: int = 0
    n_bytes: int = 0
    solves_dispatched: int = 0
    frame_latencies: list[float] = field(default_factory=list)
    n_lost_chunks: int = 0
    n_reordered_chunks: int = 0
    n_duplicate_chunks: int = 0
    n_corrupt_chunks: int = 0
    n_recovered_chunks: int = 0
    n_late_chunks: int = 0
    n_partial_frames: int = 0
    n_dropped_frames: int = 0
    # ---- session-durability counters (PR 10) ----
    #: NACK repair requests the sessions queued down the feedback path.
    n_nacks_sent: int = 0
    #: Deferred frames that settled partial after their NACK grace lapsed.
    n_deadline_salvages: int = 0
    #: ``SESSION_RESUME`` chunks the sessions absorbed.
    n_resumes: int = 0
    #: Sessions parked on disconnect awaiting resume.
    n_parked: int = 0
    #: Parked sessions successfully re-admitted.
    n_resumed: int = 0
    #: Resumes refused (and parked state salvaged) past the grace window.
    n_resume_expired: int = 0
    #: Sessions the reap loop settled (grace expiry + idle timeout).
    n_reaped: int = 0
    #: Graceful drains completed.
    n_drained: int = 0
    #: Sessions currently parked awaiting resume.
    n_parked_now: int = 0


class ReceiverHub:
    """One asyncio service ingesting many camera-node streams concurrently.

    Parameters
    ----------
    reconstruct, dictionary, solver, regularization, sparsity,
    max_iterations, operator, eager:
        Per-session reconstruction options, exactly as on
        :class:`~repro.stream.receiver.StreamReceiver`; every session the
        hub opens gets the same configuration.
    step_cache, share_step_cache:
        ``share_step_cache=True`` creates one
        :class:`~repro.cs.operators.StepSizeCache` handed to every session,
        so the whole fleet pays each tile-geometry power iteration once
        (pass ``step_cache`` to supply your own).  Off by default: warm
        starts shift the step estimates and the reconstructed bytes, and
        the default must keep a single-node hub byte-identical to
        ``StreamReceiver``.
    executor:
        ``concurrent.futures`` executor for solver work; ``None`` uses the
        event loop's default thread pool.
    solver_slots, per_stream_pending, max_pending:
        :class:`FairSolveScheduler` sizing — concurrent solver slots, the
        per-stream pending high-watermark, the hub-wide one.
    max_streams:
        Bound on concurrently-live sessions; admission past it raises
        :class:`HubCapacityError` on the offending connection.  ``None``
        is unbounded.
    resilient:
        Serve lossy channels: sessions run the loss-tolerant FSM (see
        :class:`~repro.stream.session.StreamSession`), the chunk decoder
        resynchronises over corrupt framing instead of raising, and a
        transport dying before its stream-end chunk salvages every frame
        already in flight rather than failing the connection.
    min_surviving_samples:
        Per-session sample floor for the partial-Φ solve (resilient mode).
    feedback:
        Ship each session's queued control chunks (delivery ACKs, rate
        advice and — with ``frame_deadline`` set — NACK repair requests)
        back down the connection's transport — the receiver half of the
        closed loop.  Requires a duplex transport (TCP, or
        :func:`~repro.stream.transport.loopback_duplex_pair`); never enable
        it on a plain single-queue loopback, whose "backward" path is the
        forward queue itself.
    resume_grace:
        Seconds a disconnected (resilient) session's state stays parked
        awaiting a node's ``SESSION_RESUME`` before :meth:`reap` salvages
        it.  ``None`` (default) disables parking: a dead connection
        salvages immediately, exactly as before.
    idle_timeout:
        Seconds of wire silence after which :meth:`reap` seals a live
        resilient session (salvaging its in-flight frames) — the stalled
        node never holds hub state forever.  ``None`` disables reaping.
    frame_deadline, nack_grace:
        Per-session reassembly deadlines — see
        :class:`~repro.stream.session.StreamSession`.  Setting
        ``frame_deadline`` turns on NACK-driven selective repeat.
    max_sequence_gap:
        Per-session resync-plausibility window override (defaults to
        :data:`StreamSession.MAX_SEQUENCE_GAP
        <repro.stream.session.StreamSession.MAX_SEQUENCE_GAP>`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` shared by every session
        the hub opens: frame traces (transport/decode/queue-wait/solve
        spans) and the stage histogram accumulate there, and
        :meth:`metrics` collects from its registry.  ``None`` (the default)
        disables tracing at zero cost — :meth:`metrics` still works, pulling
        the hub's counters into a private registry at snapshot time.
    """

    def __init__(
        self,
        *,
        reconstruct: bool = True,
        dictionary: str = "dct",
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int | None = None,
        operator: str = "structured",
        eager: bool = False,
        step_cache: StepSizeCache | None = None,
        share_step_cache: bool = False,
        executor: Executor | None = None,
        solver_slots: int = 2,
        per_stream_pending: int | None = 2,
        max_pending: int | None = None,
        max_streams: int | None = None,
        resilient: bool = False,
        min_surviving_samples: int = 1,
        feedback: bool = False,
        resume_grace: float | None = None,
        idle_timeout: float | None = None,
        frame_deadline: float | None = None,
        nack_grace: float | None = None,
        max_sequence_gap: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if max_streams is not None:
            check_positive("max_streams", max_streams)
        if resume_grace is not None:
            check_positive("resume_grace", resume_grace)
        if idle_timeout is not None:
            check_positive("idle_timeout", idle_timeout)
        if step_cache is None and share_step_cache:
            step_cache = StepSizeCache()
        self.step_cache = step_cache
        self.resilient = bool(resilient)
        self.feedback = bool(feedback)
        self.resume_grace = resume_grace
        self.idle_timeout = idle_timeout
        self.telemetry = telemetry
        self._clock: Clock = (
            telemetry.clock if telemetry is not None else MONOTONIC_CLOCK
        )
        self.max_streams = None if max_streams is None else int(max_streams)
        self.scheduler = FairSolveScheduler(
            slots=solver_slots,
            per_stream_pending=per_stream_pending,
            max_pending=max_pending,
            executor=executor,
        )
        self._session_options: dict[str, Any] = dict(
            reconstruct=reconstruct,
            dictionary=dictionary,
            solver=solver,
            regularization=regularization,
            sparsity=sparsity,
            max_iterations=max_iterations,
            operator=operator,
            eager=eager,
            step_cache=step_cache,
            resilient=self.resilient,
            min_surviving_samples=min_surviving_samples,
            emit_feedback=self.feedback,
            max_sequence_gap=max_sequence_gap,
            frame_deadline=frame_deadline,
            nack_grace=nack_grace,
            telemetry=telemetry,
        )
        # The registry :meth:`metrics` collects from.  With telemetry wired
        # it is the shared facade's registry (traces, stage histograms and
        # node collectors land there too); without, a private registry whose
        # only feed is the hub collector — metrics stay available either
        # way, at zero hot-path cost (pull model).
        self._metrics_registry = (
            telemetry.registry if telemetry is not None else MetricsRegistry()
        )
        self._metrics_registry.register_collector(self._collect_metrics)
        # Live sessions hub-wide, keyed by stream id — the duplicate /
        # capacity admission registry.  Ids leave it at stream completion
        # (or connection death), so they are reusable sequentially.
        self._active: dict[int, StreamSession] = {}
        #: Disconnected session state awaiting resume, by stream id.  A
        #: parked id is still owned (``_open_session`` refuses it) but not
        #: active (it holds no connection).
        self._parked: dict[int, _ParkedSession] = {}
        # ---- durability counters (surface in stats()/metrics()) ----
        self.n_parked = 0
        self.n_resumed = 0
        self.n_resume_expired = 0
        self.n_reaped = 0
        self.n_drained = 0
        #: Latest per-stream-id stats (live and finished) — what an
        #: operator polls while streams run; see docs/OPERATIONS.md.
        self.session_stats: dict[int, SessionStats] = {}
        self._all_stats: list[SessionStats] = []
        #: Results of every cleanly-finished stream, in completion order.
        self.completed: list[StreamResult] = []
        #: Errors of failed connections, in failure order (each failure
        #: tears down only that connection's sessions).
        self.failures: list[BaseException] = []
        self._servers: list[asyncio.AbstractServer] = []
        self._connections: set[asyncio.Task[Any]] = set()
        #: Bound port of the scrape endpoint once :meth:`serve_metrics` (or
        #: ``serve(metrics_port=...)``) has started it.
        self.metrics_port: int | None = None

    # ------------------------------------------------------------ admission
    @property
    def n_active(self) -> int:
        """Sessions currently live across all connections."""
        return len(self._active)

    def _open_session(self, stream_id: int) -> StreamSession:
        if stream_id in self._active:
            raise DuplicateStreamIdError(
                f"stream id {stream_id} is already active on another connection"
            )
        if stream_id in self._parked:
            raise DuplicateStreamIdError(
                f"stream id {stream_id} is parked awaiting resume; a fresh "
                "stream cannot claim it until the grace window lapses"
            )
        if self.max_streams is not None and len(self._active) >= self.max_streams:
            raise HubCapacityError(
                f"hub is at its max_streams bound of {self.max_streams}; "
                f"stream id {stream_id} refused"
            )
        session = StreamSession(stream_id, self.scheduler, **self._session_options)
        self._active[stream_id] = session
        self.session_stats[stream_id] = session.stats
        self._all_stats.append(session.stats)
        return session

    def _release_session(self, session: StreamSession) -> None:
        if self._active.get(session.stream_id) is session:
            del self._active[session.stream_id]

    def _park_session(self, session: StreamSession) -> None:
        """Park a live session's state for the resume grace window."""
        self._release_session(session)
        self._parked[session.stream_id] = _ParkedSession(
            session=session, parked_at=self._clock.now()
        )
        self.n_parked += 1

    async def _resume_session(self, stream_id: int) -> StreamSession:
        """Admit a ``SESSION_RESUME``: un-park the stream id's session."""
        parked = self._parked.pop(stream_id, None)
        if parked is None:
            raise SessionResumeError(
                f"no parked session for stream id {stream_id} "
                "(never parked here, or already reaped)"
            )
        if (
            self.resume_grace is not None
            and self._clock.now() - parked.parked_at > self.resume_grace
        ):
            # Too late: settle the parked state partial (exactly what the
            # reap would have done) and refuse the resume.
            self.n_resume_expired += 1
            await self._salvage_session(parked.session)
            raise SessionResumeError(
                f"resume for stream id {stream_id} arrived after the "
                f"{self.resume_grace}s grace window"
            )
        self._active[stream_id] = parked.session
        self.n_resumed += 1
        return parked.session

    async def _salvage_session(self, session: StreamSession) -> None:
        """Seal a session from whatever arrived and record its result."""
        await session.handle_eof()
        result = await session.finish()
        self._release_session(session)
        self.completed.append(result)

    # ----------------------------------------------------------- connections
    async def attach(
        self, transport: Transport, *, expected_streams: int | None = None
    ) -> list[StreamResult]:
        """Serve one node connection until end-of-stream; return its streams.

        Chunks are demuxed by their stream id: one connection may carry any
        number of (concurrent or sequential) streams, each landing in its
        own session.  With ``expected_streams`` set, the call returns as
        soon as that many streams completed — without waiting for the
        connection's EOF (how the single-node ``StreamReceiver`` preserves
        its historical semantics); otherwise it serves until EOF.

        A protocol error (or the transport dying mid-stream) cancels only
        *this connection's* unfinished sessions, records the error in
        :attr:`failures` and re-raises — every other connection keeps
        flowing; their sessions never observe the failure.  A resilient hub
        instead resynchronises over corrupt framing, ships session feedback
        back down the transport (``feedback=True``), and salvages the
        in-flight frames of a connection that dies before its stream-end.
        """
        decoder = ChunkDecoder(resync=self.resilient)
        # The connection's own id → session map, *including* ended sessions:
        # a late chunk for a finished stream must hit that session's "after
        # the stream end" error, not open a fresh session.
        sessions: dict[int, StreamSession] = {}
        finished: list[StreamResult] = []
        # The receiver→node control path: its own sequence numbering, torn
        # down (without failing ingest) the moment the back channel breaks.
        feedback_sequence = 0
        feedback_open = self.feedback

        async def ship_feedback(session: StreamSession) -> None:
            nonlocal feedback_sequence, feedback_open
            for chunk_type, payload in session.take_outgoing_control():
                if not feedback_open:
                    return
                control = Chunk(
                    chunk_type=chunk_type,
                    stream_id=session.stream_id,
                    sequence=feedback_sequence,
                    payload=payload,
                )
                try:
                    await transport.send(encode_chunk(control))
                except (TransportClosedError, ConnectionError, OSError):
                    # Feedback is advisory: a node that stopped listening
                    # degrades the loop to open-loop, never kills ingest.
                    feedback_open = False
                    return
                feedback_sequence += 1

        async def settle(session: StreamSession) -> None:
            result = await session.finish()
            self._release_session(session)
            finished.append(result)
            self.completed.append(result)

        try:
            while expected_streams is None or len(finished) < expected_streams:
                data = await transport.recv()
                if data is None:
                    break
                for chunk in decoder.feed(data):
                    session = sessions.get(chunk.stream_id)
                    if session is None:
                        if chunk.chunk_type is ChunkType.SESSION_RESUME:
                            # A node re-attaching a stream this connection
                            # has never seen: admit it from the parked set
                            # (state intact — seed chains, sequence FSM).
                            session = await self._resume_session(chunk.stream_id)
                        else:
                            session = self._open_session(chunk.stream_id)
                        sessions[chunk.stream_id] = session
                    await session.handle_chunk(chunk)
                    if feedback_open:
                        await ship_feedback(session)
                    if session.ended and not session.finished:
                        await settle(session)
            unfinished = [s for s in sessions.values() if not s.ended]
            if self.resilient:
                for session in unfinished:
                    if self.resume_grace is not None:
                        # A dead connection is not yet a dead stream: park
                        # the state and give the node the grace window to
                        # reconnect-and-resume before anything settles.
                        self._park_session(session)
                    else:
                        # Salvage: seal and settle streams the EOF cut short.
                        await session.handle_eof()
                        await settle(session)
            elif unfinished or (
                expected_streams is not None and len(finished) < expected_streams
            ):
                raise StreamProtocolError(
                    "transport closed before the stream-end chunk arrived"
                )
            if decoder.pending_bytes and not self.resilient:
                raise StreamProtocolError(
                    f"{decoder.pending_bytes} trailing bytes after the stream end"
                )
            return finished
        except BaseException as error:
            for session in sessions.values():
                if not session.ended:
                    session.cancel()
                self._release_session(session)
            self.failures.append(error)
            raise

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics_port: int | None = None,
    ) -> tuple[asyncio.AbstractServer, int]:
        """Accept TCP node connections, each served by :meth:`attach`.

        Returns the server and its bound port (``port=0`` lets the OS
        pick).  Per-connection failures are recorded in :attr:`failures`
        and close that connection only; the server keeps accepting.
        ``metrics_port`` additionally starts the HTTP scrape endpoint of
        :meth:`serve_metrics` on that port (``0`` = OS-assigned; the bound
        port lands in :attr:`metrics_port`).
        """

        async def handle(transport: TcpTransport) -> None:
            task = asyncio.current_task()
            if task is not None:
                self._connections.add(task)
            try:
                await self.attach(transport)
            except asyncio.CancelledError:
                raise
            except BaseException:
                # Already recorded in self.failures by attach(); the
                # connection dies, the hub keeps serving the rest.
                pass
            finally:
                if task is not None:
                    self._connections.discard(task)
                await transport.close()

        try:
            server, bound_port = await serve_tcp(handle, host=host, port=port)
        except OSError as error:
            raise HubPortInUseError(
                f"hub cannot bind {host}:{port}: {error}"
            ) from error
        self._servers.append(server)
        if metrics_port is not None:
            await self.serve_metrics(host=host, port=metrics_port)
        return server, bound_port

    async def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[asyncio.AbstractServer, int]:
        """Serve :meth:`metrics` over HTTP; returns ``(server, bound_port)``.

        ``GET /metrics`` answers the Prometheus text exposition,
        ``GET /metrics.json`` the JSON dump — each scrape collects a fresh
        snapshot.  The server is torn down with the hub's :meth:`close`.
        """
        try:
            server, bound_port = await _serve_metrics(
                self.metrics, host=host, port=port
            )
        except OSError as error:
            raise HubPortInUseError(
                f"hub cannot bind its metrics endpoint on {host}:{port}: {error}"
            ) from error
        self._servers.append(server)
        self.metrics_port = bound_port
        return server, bound_port

    # ------------------------------------------------------------ durability
    async def reap(self, now: float | None = None) -> None:
        """Fire the hub's timers (call it from a periodic supervisor loop).

        Three sweeps, all measured on the hub clock (deterministic under a
        :class:`~repro.telemetry.ManualClock`):

        * parked sessions whose resume grace lapsed settle partial;
        * live resilient sessions silent past ``idle_timeout`` are sealed
          and settled — a stalled node stops holding hub state;
        * every live session's frame/NACK deadlines are checked
          (:meth:`StreamSession.check_deadlines
          <repro.stream.session.StreamSession.check_deadlines>`).
        """
        if now is None:
            now = self._clock.now()
        if self.resume_grace is not None:
            for stream_id in list(self._parked):
                parked = self._parked[stream_id]
                if now - parked.parked_at > self.resume_grace:
                    del self._parked[stream_id]
                    self.n_resume_expired += 1
                    self.n_reaped += 1
                    await self._salvage_session(parked.session)
        if self.idle_timeout is not None:
            for session in list(self._active.values()):
                if (
                    session.resilient
                    and not session.ended
                    and now - session.last_activity > self.idle_timeout
                ):
                    self.n_reaped += 1
                    await self._salvage_session(session)
        for session in list(self._active.values()):
            await session.check_deadlines(now)

    async def drain(self) -> None:
        """Graceful shutdown flush: park nothing, finish everything.

        Settles every parked session from whatever already arrived (their
        nodes get no further grace — the hub is going away) and then waits
        for every in-flight TCP connection handler to finish, so in-flight
        frames land before :meth:`close` tears the solver down.
        """
        for stream_id in list(self._parked):
            parked = self._parked.pop(stream_id)
            await self._salvage_session(parked.session)
        while self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        self.n_drained += 1

    async def close(self) -> None:
        """Stop serving: close servers, drain connections, stop the scheduler."""
        servers, self._servers = self._servers, []
        for server in servers:
            server.close()
            await server.wait_closed()
        await self.drain()
        await self.scheduler.close()

    # ---------------------------------------------------------------- stats
    def stats(self) -> HubStats:
        """Aggregate fleet snapshot (cheap; safe to poll while streams run)."""
        latencies = [
            latency
            for stats in self._all_stats
            for latency in stats.frame_latencies
        ]
        return HubStats(
            n_active=len(self._active),
            n_completed=len(self.completed),
            n_failed=len(self.failures),
            n_frames=sum(stats.n_frames for stats in self._all_stats),
            n_bytes=sum(stats.n_bytes for stats in self._all_stats),
            solves_dispatched=self.scheduler.n_dispatched,
            frame_latencies=latencies,
            n_lost_chunks=sum(s.n_lost_chunks for s in self._all_stats),
            n_reordered_chunks=sum(s.n_reordered_chunks for s in self._all_stats),
            n_duplicate_chunks=sum(s.n_duplicate_chunks for s in self._all_stats),
            n_corrupt_chunks=sum(s.n_corrupt_chunks for s in self._all_stats),
            n_recovered_chunks=sum(s.n_recovered_chunks for s in self._all_stats),
            n_late_chunks=sum(s.n_late_chunks for s in self._all_stats),
            n_partial_frames=sum(s.n_partial_frames for s in self._all_stats),
            n_dropped_frames=sum(s.n_dropped_frames for s in self._all_stats),
            n_nacks_sent=sum(s.n_nacks_sent for s in self._all_stats),
            n_deadline_salvages=sum(
                s.n_deadline_salvages for s in self._all_stats
            ),
            n_resumes=sum(s.n_resumes for s in self._all_stats),
            n_parked=self.n_parked,
            n_resumed=self.n_resumed,
            n_resume_expired=self.n_resume_expired,
            n_reaped=self.n_reaped,
            n_drained=self.n_drained,
            n_parked_now=len(self._parked),
        )

    def _collect_metrics(self) -> None:
        """Rebuild the registry's hub instruments from the live stats.

        Registered once at construction; runs only inside
        ``registry.collect()`` (i.e. per :meth:`metrics` call or per
        scrape), which is what migrating ``HubStats``/``SessionStats`` onto
        the registry costs on the ingest hot path: nothing.
        """
        registry = self._metrics_registry
        stats = self.stats()
        registry.gauge(
            "repro_hub_streams_active", help="Sessions currently live."
        ).set(stats.n_active)
        hub_counters: tuple[tuple[str, int, str], ...] = (
            ("repro_hub_streams_completed_total", stats.n_completed,
             "Streams that finished cleanly."),
            ("repro_hub_streams_failed_total", stats.n_failed,
             "Connections torn down by an error."),
            ("repro_hub_frames_total", stats.n_frames,
             "Frames fully landed across all sessions."),
            ("repro_hub_bytes_total", stats.n_bytes,
             "Wire bytes ingested across all sessions."),
            ("repro_hub_solves_dispatched_total", stats.solves_dispatched,
             "Solver jobs the fair scheduler dispatched."),
            ("repro_hub_lost_chunks_total", stats.n_lost_chunks,
             "Chunks proven lost by sequence gaps."),
            ("repro_hub_reordered_chunks_total", stats.n_reordered_chunks,
             "Chunks that arrived late but were used."),
            ("repro_hub_duplicate_chunks_total", stats.n_duplicate_chunks,
             "Chunks whose sequence was already processed."),
            ("repro_hub_corrupt_chunks_total", stats.n_corrupt_chunks,
             "Chunks that arrived but failed decoding."),
            ("repro_hub_recovered_chunks_total", stats.n_recovered_chunks,
             "Segment chunks rebuilt from XOR parity."),
            ("repro_hub_late_chunks_total", stats.n_late_chunks,
             "Chunks arriving after their frame settled."),
            ("repro_hub_partial_frames_total", stats.n_partial_frames,
             "Frames solved from a strict subset of their samples."),
            ("repro_hub_dropped_frames_total", stats.n_dropped_frames,
             "Frames landed without a reconstruction."),
            ("repro_hub_nacks_sent_total", stats.n_nacks_sent,
             "NACK repair requests sent down the feedback path."),
            ("repro_hub_deadline_salvages_total", stats.n_deadline_salvages,
             "Deferred frames settled partial after their NACK grace."),
            ("repro_hub_session_resumes_total", stats.n_resumes,
             "SESSION_RESUME chunks absorbed by sessions."),
            ("repro_hub_sessions_parked_total", stats.n_parked,
             "Sessions parked on disconnect awaiting resume."),
            ("repro_hub_sessions_resumed_total", stats.n_resumed,
             "Parked sessions successfully re-admitted."),
            ("repro_hub_resumes_expired_total", stats.n_resume_expired,
             "Resumes refused past the grace window."),
            ("repro_hub_sessions_reaped_total", stats.n_reaped,
             "Sessions the reap loop settled."),
            ("repro_hub_drains_total", stats.n_drained,
             "Graceful drains completed."),
        )
        for name, value, help_text in hub_counters:
            registry.counter(name, help=help_text).set_total(value)
        registry.gauge(
            "repro_hub_sessions_parked",
            help="Sessions currently parked awaiting resume.",
        ).set(stats.n_parked_now)
        registry.histogram(
            "repro_hub_frame_latency_seconds",
            help="Per-frame seconds from first chunk to decoded (and solved).",
        ).rebuild(stats.frame_latencies)
        latency_quantile_gauges(
            registry,
            "repro_hub_frame_latency_quantile_seconds",
            stats.frame_latencies,
            help="Exact frame-latency percentiles over the raw series.",
        )
        for stream_id, session in self.session_stats.items():
            labels = {"stream": stream_id}
            session_counters: tuple[tuple[str, int, str], ...] = (
                ("repro_session_frames_total", session.n_frames,
                 "Frames this stream landed."),
                ("repro_session_chunks_total", session.n_chunks,
                 "Chunks this stream processed."),
                ("repro_session_bytes_total", session.n_bytes,
                 "Wire bytes this stream carried."),
                ("repro_session_partial_frames_total", session.n_partial_frames,
                 "Frames solved from partial samples on this stream."),
                ("repro_session_dropped_frames_total", session.n_dropped_frames,
                 "Frames landed without reconstruction on this stream."),
                ("repro_session_nacks_sent_total", session.n_nacks_sent,
                 "NACK repair requests this stream queued."),
                ("repro_session_deadline_salvages_total",
                 session.n_deadline_salvages,
                 "Frames this stream salvaged after their NACK grace."),
                ("repro_session_resumes_total", session.n_resumes,
                 "SESSION_RESUME chunks this stream absorbed."),
            )
            for name, value, help_text in session_counters:
                registry.counter(name, labels=labels, help=help_text).set_total(value)

    def metrics(self) -> MetricsSnapshot:
        """Typed snapshot of the hub's metrics (collectors run first).

        Works with or without a wired :class:`~repro.telemetry.Telemetry`
        (the hub's own counters are pulled either way); render it with
        :meth:`~repro.telemetry.MetricsSnapshot.render_prometheus` or
        :meth:`~repro.telemetry.MetricsSnapshot.to_json`.
        """
        return self._metrics_registry.collect()
