"""Tests for the measurement-matrix constructions."""

import numpy as np
import pytest

from repro.cs.matrices import (
    bernoulli_matrix,
    block_diagonal_matrix,
    ca_xor_matrix,
    center_matrix,
    gaussian_matrix,
    lfsr_matrix,
    rademacher_matrix,
    selection_density,
    subsampled_hadamard_matrix,
)


class TestDenseEnsembles:
    def test_gaussian_shape_and_scale(self):
        phi = gaussian_matrix(100, 256, seed=0)
        assert phi.shape == (100, 256)
        # Row norms concentrate around sqrt(n/m) with the 1/sqrt(m) scaling.
        row_norms = np.linalg.norm(phi, axis=1)
        assert np.allclose(row_norms.mean(), np.sqrt(256 / 100), rtol=0.1)

    def test_gaussian_reproducible(self):
        assert np.array_equal(gaussian_matrix(10, 20, seed=1), gaussian_matrix(10, 20, seed=1))

    def test_rademacher_entries(self):
        phi = rademacher_matrix(10, 50, seed=2) * np.sqrt(10)
        assert set(np.unique(np.round(phi, 6))).issubset({-1.0, 1.0})

    def test_bernoulli_entries_and_density(self):
        phi = bernoulli_matrix(200, 200, density=0.3, seed=3)
        assert set(np.unique(phi)).issubset({0.0, 1.0})
        assert 0.27 < phi.mean() < 0.33

    def test_bernoulli_invalid_density(self):
        with pytest.raises(ValueError):
            bernoulli_matrix(10, 10, density=1.5)


class TestHadamard:
    def test_shape_and_orthogonal_rows(self):
        phi = subsampled_hadamard_matrix(32, 64, seed=4)
        assert phi.shape == (32, 64)
        gram = phi @ phi.T
        # Distinct Hadamard rows are orthogonal; scaling gives n/m on the diagonal.
        off_diagonal = gram - np.diag(np.diag(gram))
        assert np.allclose(off_diagonal, 0.0, atol=1e-10)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            subsampled_hadamard_matrix(10, 100)

    def test_cannot_oversample(self):
        with pytest.raises(ValueError):
            subsampled_hadamard_matrix(128, 64)


class TestCAXorMatrix:
    def test_shape_and_binary_entries(self):
        phi = ca_xor_matrix(50, (16, 16), seed=5)
        assert phi.shape == (50, 256)
        assert set(np.unique(phi)).issubset({0.0, 1.0})

    def test_deterministic_given_seed_state(self):
        seed_state = np.ones(32, dtype=np.uint8)
        seed_state[::3] = 0
        a = ca_xor_matrix(20, (16, 16), seed_state=seed_state)
        b = ca_xor_matrix(20, (16, 16), seed_state=seed_state)
        assert np.array_equal(a, b)

    def test_rows_have_rank_one_xor_structure(self):
        """Each row is an outer XOR of row/column signals: as a 0/1 image it has rank <= 2."""
        phi = ca_xor_matrix(5, (16, 16), seed=6)
        for row in phi:
            mask = row.reshape(16, 16)
            assert np.linalg.matrix_rank(mask) <= 2

    def test_density_near_half(self):
        phi = ca_xor_matrix(100, (16, 16), seed=7, warmup_steps=8)
        assert 0.35 < selection_density(phi) < 0.65


class TestLFSRMatrix:
    def test_shape_and_entries(self):
        phi = lfsr_matrix(30, (8, 8), seed=8)
        assert phi.shape == (30, 64)
        assert set(np.unique(phi)).issubset({0.0, 1.0})

    def test_reproducible(self):
        assert np.array_equal(lfsr_matrix(10, (8, 8), seed=9), lfsr_matrix(10, (8, 8), seed=9))


class TestBlockDiagonal:
    def test_assembly(self):
        blocks = [np.ones((2, 3)), 2 * np.ones((1, 2))]
        matrix = block_diagonal_matrix(blocks)
        assert matrix.shape == (3, 5)
        assert matrix[0, 0] == 1.0
        assert matrix[2, 3] == 2.0
        assert matrix[0, 3] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            block_diagonal_matrix([])


class TestCentering:
    def test_center_removes_mean(self):
        phi = bernoulli_matrix(50, 100, seed=10)
        centered = center_matrix(phi)
        assert abs(centered.mean()) < 1e-12

    def test_center_with_explicit_density(self):
        phi = np.ones((2, 4))
        centered = center_matrix(phi, density=0.5)
        assert np.allclose(centered, 0.5)

    def test_selection_density_empty_rejected(self):
        with pytest.raises(ValueError):
            selection_density(np.empty((0, 0)))
