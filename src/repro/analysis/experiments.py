"""Shared experiment harness for the reconstruction benchmarks.

The evaluation benchmarks (E8 timing error, E9 full-frame vs block, E10
matrix quality) all follow the same pattern: pick scenes, encode them with a
measurement strategy, reconstruct, score.  Keeping that loop here keeps every
benchmark file short and guarantees they all score reconstructions the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.cs.block import BlockCompressiveSampler
from repro.cs.matrices import bernoulli_matrix, ca_xor_matrix, gaussian_matrix, lfsr_matrix
from repro.cs.metrics import psnr, reconstruction_snr, ssim
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_samples
from repro.utils.images import image_to_vector
from repro.utils.rng import derive_seed
from repro.utils.validation import check_in_range, check_positive


@dataclass
class ExperimentRecord:
    """One (scene, strategy, ratio) reconstruction outcome."""

    scene: str
    strategy: str
    compression_ratio: float
    n_samples: int
    psnr_db: float
    snr_db: float
    ssim: float
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Flatten to a plain dictionary (for table printing)."""
        row = {
            "scene": self.scene,
            "strategy": self.strategy,
            "compression_ratio": self.compression_ratio,
            "n_samples": self.n_samples,
            "psnr_db": self.psnr_db,
            "snr_db": self.snr_db,
            "ssim": self.ssim,
        }
        row.update(self.extra)
        return row


def _quantize_image(scene: np.ndarray, pixel_bits: int) -> np.ndarray:
    """Map a [0, 1] scene to the integer code range the sensor works in."""
    levels = (1 << pixel_bits) - 1
    return np.round(np.clip(scene, 0.0, 1.0) * levels)


def reconstruction_experiment(
    scene_kind: str,
    strategy: str,
    compression_ratio: float,
    *,
    image_shape=(64, 64),
    pixel_bits: int = 8,
    dictionary: str = "dct",
    solver: str = "fista",
    max_iterations: int = 150,
    block_size: int = 8,
    seed: int = 2018,
) -> ExperimentRecord:
    """Encode one scene with one measurement strategy and score the reconstruction.

    Strategies: ``ca-xor`` (the paper), ``bernoulli`` (dense random 0/1),
    ``gaussian`` (dense Gaussian), ``lfsr`` (LFSR-driven XOR selection) and
    ``block-<B>`` / ``block`` (block-based CS with ``block_size`` blocks).
    """
    check_in_range("compression_ratio", compression_ratio, 0.0, 1.0, inclusive=False)
    check_positive("pixel_bits", pixel_bits)
    scene = make_scene(scene_kind, image_shape, seed=derive_seed(seed, "scene", scene_kind))
    image = _quantize_image(scene, pixel_bits)
    n_pixels = image.size
    n_samples = max(1, int(round(compression_ratio * n_pixels)))
    vector = image_to_vector(image)

    if strategy.startswith("block"):
        if "-" in strategy:
            block_size = int(strategy.split("-", 1)[1])
        sampler = BlockCompressiveSampler(
            image_shape,
            block_size=block_size,
            compression_ratio=compression_ratio,
            dictionary=dictionary,
            seed=derive_seed(seed, "phi", strategy),
        )
        samples = sampler.measure(image)
        reconstruction = sampler.reconstruct(samples, solver="fista", max_iterations=max_iterations)
        record_samples = sampler.total_samples
        extra = {"block_size": float(sampler.block_size)}
    else:
        phi = _make_matrix(
            strategy, n_samples, image_shape, seed=derive_seed(seed, "phi", strategy)
        )
        samples = phi @ vector
        result = reconstruct_samples(
            phi,
            samples,
            image_shape,
            dictionary=dictionary,
            solver=solver,
            max_iterations=max_iterations,
            reference=image,
        )
        reconstruction = result.image
        record_samples = n_samples
        extra = {"solver_iterations": float(result.solver_result.n_iterations)}

    return ExperimentRecord(
        scene=scene_kind,
        strategy=strategy,
        compression_ratio=float(compression_ratio),
        n_samples=int(record_samples),
        psnr_db=psnr(image, reconstruction),
        snr_db=reconstruction_snr(image, reconstruction),
        ssim=ssim(image, reconstruction),
        extra=extra,
    )


def _make_matrix(strategy: str, n_samples: int, image_shape, *, seed: int) -> np.ndarray:
    rows, cols = image_shape
    n_pixels = rows * cols
    if strategy == "ca-xor":
        return ca_xor_matrix(n_samples, image_shape, seed=seed)
    if strategy == "bernoulli":
        return bernoulli_matrix(n_samples, n_pixels, seed=seed)
    if strategy == "gaussian":
        return gaussian_matrix(n_samples, n_pixels, seed=seed)
    if strategy == "lfsr":
        return lfsr_matrix(n_samples, image_shape, seed=seed)
    raise ValueError(
        f"unknown strategy {strategy!r}; expected ca-xor, bernoulli, gaussian, lfsr or block[-B]"
    )


def sweep_compression_ratio(
    scene_kinds: Sequence[str],
    strategies: Sequence[str],
    ratios: Sequence[float],
    **kwargs,
) -> list[ExperimentRecord]:
    """Cartesian sweep over scenes, strategies and compression ratios."""
    records = []
    for scene_kind in scene_kinds:
        for strategy in strategies:
            for ratio in ratios:
                records.append(
                    reconstruction_experiment(scene_kind, strategy, ratio, **kwargs)
                )
    return records


def strategy_comparison(
    records: Sequence[ExperimentRecord],
) -> dict[str, dict[float, float]]:
    """Average PSNR per strategy per compression ratio (the E9 summary table)."""
    accumulator: dict[str, dict[float, list[float]]] = {}
    for record in records:
        accumulator.setdefault(record.strategy, {}).setdefault(
            record.compression_ratio, []
        ).append(record.psnr_db)
    return {
        strategy: {ratio: float(np.mean(values)) for ratio, values in ratios.items()}
        for strategy, ratios in accumulator.items()
    }
