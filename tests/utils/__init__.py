"""Test package marker so same-named test modules in sibling packages collect cleanly."""
