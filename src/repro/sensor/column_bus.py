"""Column bus arbitration: the C_in/C_out token protocol and event termination.

All pixels of a column share one bus (``V_o`` in Fig. 1).  The paper's
protocol guarantees no pulse is ever lost even when several pixels of the
column fire close together:

* *parallel blocking* — the moment any pixel pulls the bus down, every pixel
  sees ``V_o`` low through the 3-input NAND and asserts ``C_out``, so every
  pixel below is blocked at once;
* *sequential release* — when an event terminates, the ``C_out`` chain
  releases pixels one after the other from the top of the column downwards,
  so among the pixels left waiting the **topmost** one acquires the bus next
  (never two at a time);
* *event termination* — the column control unit at the foot of the bus
  detects the pull-down and, after a user-controllable delay, raises the
  global ``Q`` so that only the pixel that is actually driving the bus ends
  its pulse.

:class:`ColumnBusArbiter` reproduces this behaviour on a list of pixel firing
times and returns, for every event, the time at which it actually occupied
the bus.  :class:`ColumnControlUnit` models the foot-of-column circuit (pull
-down detection, termination delay, counter sampling strobe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.pixel.event import EventLatch, PixelEvent
from repro.utils.validation import check_positive


@dataclass
class ColumnControlUnit:
    """Foot-of-column control: senses the bus and times the termination pulse.

    Attributes
    ----------
    termination_delay:
        The user-controllable delay between the detection of the bus
        pull-down and the rise of ``Q`` — this sets the event duration.
    """

    termination_delay: float = 5.0e-9

    def __post_init__(self) -> None:
        check_positive("termination_delay", self.termination_delay)

    def termination_time(self, pull_down_time: float) -> float:
        """Time at which ``Q`` rises for an event that pulled the bus down."""
        check_positive("pull_down_time", pull_down_time, allow_zero=True)
        return pull_down_time + self.termination_delay

    def sample_strobe_time(self, pull_down_time: float) -> float:
        """Time at which the counter is sampled for this event.

        The 'Sample & Add' latches the global counter when the pull-down is
        detected, i.e. at the leading edge of the event.
        """
        check_positive("pull_down_time", pull_down_time, allow_zero=True)
        return pull_down_time


@dataclass
class ArbitrationResult:
    """Outcome of serialising one column's events.

    Attributes
    ----------
    events:
        The input events annotated with their actual bus-occupation time,
        ordered by emission time.
    n_queued:
        How many events had to wait for the bus (their fire time fell while
        the bus was busy or a higher pixel was waiting).
    max_queue_delay:
        The largest fire-to-emit delay experienced by any event.
    bus_busy_time:
        Total time the bus spent occupied.
    """

    events: List[PixelEvent] = field(default_factory=list)
    n_queued: int = 0
    max_queue_delay: float = 0.0
    bus_busy_time: float = 0.0

    @property
    def n_events(self) -> int:
        """Number of events delivered through the bus."""
        return len(self.events)


class ColumnBusArbiter:
    """Serialises the events of one column according to the token protocol.

    Parameters
    ----------
    event_duration:
        Bus-occupation time of one event (termination delay of the column
        control unit).
    """

    def __init__(self, event_duration: float = 5.0e-9) -> None:
        check_positive("event_duration", event_duration)
        self.event_duration = float(event_duration)
        self.control_unit = ColumnControlUnit(termination_delay=self.event_duration)

    def arbitrate(
        self,
        events: Sequence[PixelEvent],
        *,
        deadline: Optional[float] = None,
    ) -> ArbitrationResult:
        """Assign bus-occupation times to ``events``.

        The scheduling rule mirrors the hardware: the bus is granted at the
        event's own fire time when the bus is idle and nobody above is
        waiting; otherwise the event waits, and whenever the bus frees up the
        **topmost** (smallest row index) waiting pixel is released first.

        Parameters
        ----------
        events:
            The pixel events of one column (any order).  Each pixel may
            appear at most once — the activation latch fires once per sample.
        deadline:
            Optional end of the conversion window; events that cannot be
            emitted before the deadline are dropped (they would fall outside
            the counter range in hardware).  ``None`` delivers everything.

        Returns
        -------
        ArbitrationResult
            Events annotated with emission times, in emission order.
        """
        pending = sorted(events, key=lambda event: (event.fire_time, event.row))
        seen_rows = {event.row for event in pending}
        if len(seen_rows) != len(pending):
            raise ValueError("each pixel (row) may emit at most one event per sample")

        result = ArbitrationResult()
        bus_free_at = 0.0
        remaining = list(pending)
        while remaining:
            # Pixels already waiting when the bus frees: topmost goes first.
            waiting = [event for event in remaining if event.fire_time <= bus_free_at]
            if waiting:
                chosen = min(waiting, key=lambda event: event.row)
                emit_time = bus_free_at
            else:
                chosen = remaining[0]
                emit_time = chosen.fire_time
            remaining.remove(chosen)
            if deadline is not None and emit_time >= deadline:
                continue
            annotated = chosen.with_emit_time(emit_time)
            result.events.append(annotated)
            if annotated.queued_delay > 0.0:
                result.n_queued += 1
                result.max_queue_delay = max(result.max_queue_delay, annotated.queued_delay)
            bus_free_at = emit_time + self.event_duration
            result.bus_busy_time += self.event_duration
        return result


class GateLevelColumn:
    """Cycle-driven model of one column built from :class:`EventLatch` instances.

    This is the slow, explicit model used by the unit tests to check the
    analytic :class:`ColumnBusArbiter` against a direct simulation of the
    ``C_in``/``C_out`` chain: ``n_rows`` latches are stepped on a fine time
    grid, the token chain is evaluated combinationally every step, and bus
    grants/terminations follow the latch states.
    """

    def __init__(self, n_rows: int, event_duration: float = 5.0e-9) -> None:
        check_positive("n_rows", n_rows)
        check_positive("event_duration", event_duration)
        self.n_rows = int(n_rows)
        self.event_duration = float(event_duration)
        self.latches = [EventLatch() for _ in range(self.n_rows)]

    def simulate(
        self,
        fire_times: Sequence[Optional[float]],
        *,
        time_step: float = 1.0e-9,
        end_time: Optional[float] = None,
    ) -> List[PixelEvent]:
        """Run the column on a uniform time grid and return the emitted events.

        Parameters
        ----------
        fire_times:
            Per-row firing time, or ``None`` for pixels that do not fire
            (deselected or dark).
        time_step:
            Simulation step; must be no larger than the event duration.
        end_time:
            End of the simulation; defaults to a little past the last event.
        """
        if len(fire_times) != self.n_rows:
            raise ValueError(
                f"fire_times must have {self.n_rows} entries, got {len(fire_times)}"
            )
        check_positive("time_step", time_step)
        if time_step > self.event_duration:
            raise ValueError("time_step must not exceed the event duration")
        finite_times = [t for t in fire_times if t is not None]
        if end_time is None:
            last = max(finite_times) if finite_times else 0.0
            end_time = last + self.event_duration * (self.n_rows + 2)

        for latch in self.latches:
            latch.reset()
        emitted: List[PixelEvent] = []
        driving_row: Optional[int] = None
        termination_at: Optional[float] = None

        now = 0.0
        while now <= end_time:
            # 1. Activation fronts reaching the latches.
            for row, fire_time in enumerate(fire_times):
                if fire_time is not None and fire_time <= now:
                    self.latches[row].activate()
            # 2. Event termination (global Q) for the pixel driving the bus.
            if driving_row is not None and termination_at is not None and now >= termination_at:
                self.latches[driving_row].terminate()
                driving_row = None
                termination_at = None
            # 3. Token chain: C_in of row 0 is low; propagate downwards.
            bus_is_high = driving_row is None
            if bus_is_high:
                c_in = False
                for row, latch in enumerate(self.latches):
                    if not c_in and latch.wants_bus:
                        latch.grant()
                        driving_row = row
                        termination_at = now + self.event_duration
                        fire_time = fire_times[row]
                        emitted.append(
                            PixelEvent(row=row, col=0, fire_time=float(fire_time)).with_emit_time(now)
                        )
                        break
                    c_in = latch.c_out(c_in, bus_is_high)
            now += time_step
        return emitted
