"""Frame-level encoding: everything the receiver needs, nothing more.

A transmitted compressive frame consists of a small fixed header (array
geometry, pixel depth, CA rule and sequencing parameters, sample count), the
CA seed (``rows + cols`` bits) and the bit-packed compressed samples.  The
measurement matrix itself is never part of the payload — that is the
architectural point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.bitstream import BitReader, BitWriter, pack_samples, unpack_samples
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame
from repro.utils.validation import check_positive

#: Magic number marking the start of an encoded frame ("CS").
FRAME_MAGIC = 0xC5
#: Format version of the encoding below.
FRAME_VERSION = 1


@dataclass(frozen=True)
class FrameHeader:
    """Fixed-size descriptor preceding the seed and the sample payload."""

    rows: int
    cols: int
    pixel_bits: int
    sample_bits: int
    rule_number: int
    steps_per_sample: int
    warmup_steps: int
    n_samples: int

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "pixel_bits", "sample_bits", "n_samples"):
            check_positive(name, getattr(self, name))
        check_positive("steps_per_sample", self.steps_per_sample)
        check_positive("warmup_steps", self.warmup_steps, allow_zero=True)
        if not 0 <= self.rule_number <= 255:
            raise ValueError(f"rule_number must fit in 8 bits, got {self.rule_number}")


def encode_frame(frame: CompressedFrame) -> bytes:
    """Serialise a :class:`CompressedFrame` into the transmission format."""
    header = FrameHeader(
        rows=frame.config.rows,
        cols=frame.config.cols,
        pixel_bits=frame.config.pixel_bits,
        sample_bits=frame.config.compressed_sample_bits,
        rule_number=frame.rule_number,
        steps_per_sample=frame.steps_per_sample,
        warmup_steps=frame.warmup_steps,
        n_samples=frame.n_samples,
    )
    writer = BitWriter()
    writer.write(FRAME_MAGIC, 8)
    writer.write(FRAME_VERSION, 8)
    writer.write(header.rows, 12)
    writer.write(header.cols, 12)
    writer.write(header.pixel_bits, 5)
    writer.write(header.sample_bits, 6)
    writer.write(header.rule_number, 8)
    writer.write(header.steps_per_sample, 8)
    writer.write(header.warmup_steps, 8)
    writer.write(header.n_samples, 24)
    for bit in frame.seed_state:
        writer.write(int(bit), 1)
    packed_header = writer.getvalue()
    packed_samples = pack_samples(frame.samples, header.sample_bits)
    return packed_header + packed_samples


def decode_frame(data: bytes) -> CompressedFrame:
    """Parse the transmission format back into a :class:`CompressedFrame`.

    The reconstructed frame has no ``digital_image`` (the receiver never sees
    it) and a fresh :class:`SensorConfig` built from the header geometry.
    """
    reader = BitReader(data)
    magic = reader.read(8)
    version = reader.read(8)
    if magic != FRAME_MAGIC:
        raise ValueError(f"not a compressed-frame stream (magic 0x{magic:02X})")
    if version != FRAME_VERSION:
        raise ValueError(f"unsupported frame version {version}")
    header = FrameHeader(
        rows=reader.read(12),
        cols=reader.read(12),
        pixel_bits=reader.read(5),
        sample_bits=reader.read(6),
        rule_number=reader.read(8),
        steps_per_sample=reader.read(8),
        warmup_steps=reader.read(8),
        n_samples=reader.read(24),
    )
    seed_state = np.array(
        reader.read_many(header.rows + header.cols, 1), dtype=np.uint8
    )
    # The sample payload starts at the next byte boundary (the header writer
    # zero-pads its final byte).
    header_bits = 8 + 8 + 12 + 12 + 5 + 6 + 8 + 8 + 8 + 24 + header.rows + header.cols
    header_bytes = (header_bits + 7) // 8
    samples = unpack_samples(data[header_bytes:], header.n_samples, header.sample_bits)
    config = SensorConfig(
        rows=header.rows,
        cols=header.cols,
        pixel_bits=header.pixel_bits,
    )
    return CompressedFrame(
        samples=samples,
        seed_state=seed_state,
        rule_number=header.rule_number,
        steps_per_sample=header.steps_per_sample,
        warmup_steps=header.warmup_steps,
        config=config,
        digital_image=None,
        metadata={"decoded_from_bytes": len(data)},
    )


def encoded_size_bits(config: SensorConfig, n_samples: int) -> int:
    """Exact payload size of an encoded frame (header + seed + packed samples)."""
    check_positive("n_samples", n_samples)
    header_bits = 8 + 8 + 12 + 12 + 5 + 6 + 8 + 8 + 8 + 24 + config.rows + config.cols
    header_bytes = (header_bits + 7) // 8
    sample_bytes = (n_samples * config.compressed_sample_bits + 7) // 8
    return (header_bytes + sample_bytes) * 8
