"""Measurement-matrix quality analysis: coherence and RIP proxies.

Computing the restricted isometry constant exactly is NP-hard; the standard
practical surrogates are the mutual coherence of ``A = Φ Ψ``, the Babel
function (cumulative coherence), and an empirical RIP estimate obtained by
sampling random k-column submatrices and recording the extreme singular
values.  Benchmark E10 uses these to compare the CA-XOR measurement matrix
against Bernoulli, LFSR and Hadamard constructions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive

if TYPE_CHECKING:
    from repro.cs.dictionaries import Dictionary


def _normalized_columns(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    norms = np.linalg.norm(matrix, axis=0)
    norms = np.where(norms > 0, norms, 1.0)
    return matrix / norms


def mutual_coherence(matrix: np.ndarray) -> float:
    """Largest absolute inner product between distinct normalised columns."""
    normalized = _normalized_columns(matrix)
    gram = normalized.T @ normalized
    np.fill_diagonal(gram, 0.0)
    return float(np.max(np.abs(gram)))


def babel_function(matrix: np.ndarray, max_order: int = 16) -> np.ndarray:
    """Cumulative coherence μ₁(k) for k = 1..max_order.

    μ₁(k) is the maximum, over columns, of the sum of the k largest absolute
    inner products with other columns; μ₁(k) < 1 guarantees recovery of
    k+1-sparse signals by OMP/BP.
    """
    check_positive("max_order", max_order)
    normalized = _normalized_columns(matrix)
    gram = np.abs(normalized.T @ normalized)
    np.fill_diagonal(gram, 0.0)
    sorted_rows = np.sort(gram, axis=1)[:, ::-1]
    max_order = int(min(max_order, sorted_rows.shape[1]))
    cumulative = np.cumsum(sorted_rows[:, :max_order], axis=1)
    return cumulative.max(axis=0)


def restricted_isometry_estimate(
    matrix: np.ndarray,
    sparsity: int,
    *,
    n_trials: int = 200,
    seed: SeedLike = None,
) -> dict[str, float]:
    """Empirical RIP proxy: extreme singular values of random k-column submatrices.

    Returns the worst lower/upper deviations of ``||A_S x||²/||x||²`` from 1
    over the sampled supports, i.e. an empirical estimate of δ_k (a lower
    bound on the true constant, since only ``n_trials`` supports are
    examined).  Columns are normalised first so the comparison across matrix
    families is fair.
    """
    check_positive("sparsity", sparsity)
    check_positive("n_trials", n_trials)
    normalized = _normalized_columns(matrix)
    n_columns = normalized.shape[1]
    sparsity = int(min(sparsity, n_columns))
    rng = new_rng(seed)
    min_eigenvalue = np.inf
    max_eigenvalue = -np.inf
    for _ in range(int(n_trials)):
        support = rng.choice(n_columns, size=sparsity, replace=False)
        submatrix = normalized[:, support]
        singular_values = np.linalg.svd(submatrix, compute_uv=False)
        min_eigenvalue = min(min_eigenvalue, float(singular_values[-1] ** 2))
        max_eigenvalue = max(max_eigenvalue, float(singular_values[0] ** 2))
    delta = max(abs(1.0 - min_eigenvalue), abs(max_eigenvalue - 1.0))
    return {
        "sparsity": float(sparsity),
        "min_eigenvalue": float(min_eigenvalue),
        "max_eigenvalue": float(max_eigenvalue),
        "delta_estimate": float(delta),
        "n_trials": float(n_trials),
    }


def effective_rank(matrix: np.ndarray, *, energy: float = 0.99) -> int:
    """Number of singular values needed to capture ``energy`` of the spectrum.

    A well-mixed measurement matrix has effective rank close to ``min(m, n)``;
    a degenerate one (e.g. a short-period generator producing repeated rows)
    collapses.
    """
    if not 0.0 < energy <= 1.0:
        raise ValueError(f"energy must be in (0, 1], got {energy}")
    matrix = np.asarray(matrix, dtype=float)
    singular_values = np.linalg.svd(matrix, compute_uv=False)
    total = float(np.sum(singular_values ** 2))
    if total == 0.0:
        return 0
    cumulative = np.cumsum(singular_values ** 2) / total
    return int(np.searchsorted(cumulative, energy) + 1)


def matrix_quality_report(
    matrix: np.ndarray,
    *,
    sparsity: int = 8,
    n_trials: int = 100,
    seed: SeedLike = None,
    dictionary: Dictionary | None = None,
) -> dict[str, float]:
    """One-call summary used by benchmark E10.

    When a ``dictionary`` is given the report is computed on ``A = Φ Ψ``
    (built column-by-column), otherwise directly on Φ.
    """
    matrix = np.asarray(matrix, dtype=float)
    if dictionary is not None:
        from repro.cs.operators import SensingOperator

        operator = SensingOperator(matrix, dictionary)
        matrix = operator.dense()
    rip = restricted_isometry_estimate(matrix, sparsity, n_trials=n_trials, seed=seed)
    return {
        "mutual_coherence": mutual_coherence(matrix),
        "delta_estimate": rip["delta_estimate"],
        "min_eigenvalue": rip["min_eigenvalue"],
        "max_eigenvalue": rip["max_eigenvalue"],
        "effective_rank": float(effective_rank(matrix)),
        "row_mean": float(matrix.mean()),
    }
