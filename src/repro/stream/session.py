"""Per-stream session state: decode chunks, walk GOP chains, stage solves.

This is the middle layer of the streaming stack.  The three layers are
deliberately separate so each can scale independently:

* :mod:`repro.stream.transport` is **wire-only**: it moves opaque byte
  slices and exerts backpressure, nothing else;
* this module owns everything *one stream* needs between the wire and the
  solver — the chunk finite-state machine, per-tile-position seed chains
  (:func:`~repro.stream.protocol.advance_seed_state`), the per-stream
  :class:`~repro.recon.incremental.IncrementalTiledReconstructor`, and the
  frame-barrier bookkeeping;
* :mod:`repro.stream.hub` owns the *many-streams* concerns — the accept
  loop, demultiplexing by the stream ids already on the wire, fair solve
  scheduling across streams, and the high-watermark backpressure.

A :class:`StreamSession` never touches a transport and never runs a solve
itself: it consumes already-parsed :class:`~repro.stream.protocol.Chunk`
objects and hands every CPU-bound reconstruction to a
:class:`SolveScheduler` — the seam where the hub's fairness policy plugs in.
The single-node :class:`~repro.stream.receiver.StreamReceiver` drives exactly
one session through exactly the same code path, which is what keeps
streamed ≡ in-process byte-identical whether one camera is connected or
hundreds are.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any, Protocol

import numpy as np

from repro.cs.operators import StepSizeCache
from repro.io.framing import decode_frame
from repro.recon.incremental import IncrementalTiledReconstructor
from repro.recon.pipeline import (
    ReconstructionResult,
    TiledReconstructionResult,
    reconstruct_frame,
)
from repro.sensor.imager import CompressedFrame
from repro.sensor.shard import (
    TiledCaptureResult,
    TileSlot,
    merge_tile_statistics,
    tile_grid,
)
from repro.stream.protocol import (
    Chunk,
    ChunkType,
    FrameData,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    decode_frame_complete,
    decode_frame_data,
    decode_stream_end,
    decode_stream_header,
)


class SolveScheduler(Protocol):
    """Structural type of the solve-dispatch seam between session and hub.

    ``submit`` takes the session's stream id (the fairness key) and a
    zero-argument callable of CPU-bound solver work, and returns a future
    resolving to the callable's result.  The call itself **may suspend** —
    that is the solve-side backpressure: a scheduler whose per-stream or
    global high-watermark is full parks the submitting session (and hence,
    through the transport, its camera node) without stalling any other
    stream's chunk processing.
    """

    async def submit(
        self, key: int, fn: Callable[[], Any]
    ) -> asyncio.Future[Any]:
        """Queue one unit of solver work for ``key``; await queue space."""
        ...  # pragma: no cover - protocol body


@dataclass
class ReceivedFrame:
    """One fully-landed frame: the decoded capture and (optionally) its image.

    Attributes
    ----------
    frame_index:
        Position in the stream.
    capture:
        The decoded payload — a :class:`CompressedFrame` for single-sensor
        streams, a reassembled :class:`TiledCaptureResult` for mosaics (its
        metadata is :func:`~repro.sensor.shard.merge_tile_statistics` over
        the decoded tiles, so the event statistics that crossed the wire
        aggregate exactly as the capture side aggregated them).
    reconstruction:
        The incremental reconstruction, or ``None`` when the receiver runs
        as a pure decoder.
    """

    frame_index: int
    capture: CompressedFrame | TiledCaptureResult
    reconstruction: ReconstructionResult | TiledReconstructionResult | None = None


@dataclass
class StreamResult:
    """Everything one stream delivered."""

    header: StreamHeader | None = None
    frames: list[ReceivedFrame] = field(default_factory=list)
    n_chunks: int = 0
    n_bytes: int = 0
    announced_frames: int | None = None
    stream_id: int | None = None

    @property
    def n_frames(self) -> int:
        """Frames fully received."""
        return len(self.frames)


@dataclass
class SessionStats:
    """Live per-stream counters a hub operator reads while the stream runs.

    ``frame_latencies`` records, per frame, the seconds from the frame's
    first chunk landing to the frame being fully decoded *and* (when
    reconstruction is on) solved — the quantity whose p99 the ``hub``
    benchmark group tracks.  Unlike :class:`StreamResult` (which is only
    returned for streams that finish cleanly), the stats object outlives a
    failed session, so a disconnect still leaves its partial counters
    readable.
    """

    stream_id: int
    n_chunks: int = 0
    n_bytes: int = 0
    n_frames: int = 0
    frame_latencies: list[float] = field(default_factory=list)


class StreamSession:
    """The chunk finite-state machine for exactly one stream.

    Parameters
    ----------
    stream_id:
        The id this session answers to — the demux key the hub routes by.
    scheduler:
        The :class:`SolveScheduler` every reconstruction is dispatched
        through.  The session never blocks the event loop on solver work.
    reconstruct, dictionary, solver, regularization, sparsity,
    max_iterations, operator, eager, step_cache:
        Reconstruction options, exactly as on
        :class:`~repro.stream.receiver.StreamReceiver` (which forwards them
        here verbatim).
    """

    #: How many whole-frame batched solves may be in flight at once before
    #: the frame barrier awaits the oldest.  One is enough to overlap the
    #: current frame's solve with the next frame's wire transfer while
    #: keeping per-session memory bounded.
    MAX_INFLIGHT_TILED_SOLVES = 1

    def __init__(
        self,
        stream_id: int,
        scheduler: SolveScheduler,
        *,
        reconstruct: bool = True,
        dictionary: str = "dct",
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int | None = None,
        operator: str = "structured",
        eager: bool = False,
        step_cache: StepSizeCache | None = None,
    ) -> None:
        self.stream_id = int(stream_id)
        self.scheduler = scheduler
        self.reconstruct = bool(reconstruct)
        self.eager = bool(eager)
        self.stats = SessionStats(stream_id=self.stream_id)
        # The one option set shared by the single-frame solve path and the
        # tiled reconstructors — the two cannot diverge in configuration.
        self._recon_options: dict[str, Any] = dict(
            dictionary=dictionary,
            solver=solver,
            regularization=regularization,
            sparsity=sparsity,
            max_iterations=None if max_iterations is None else int(max_iterations),
            operator=operator,
            step_cache=step_cache,
        )
        self._header: StreamHeader | None = None
        self._slots: list[list[TileSlot]] | None = None
        self._result = StreamResult(stream_id=self.stream_id)
        self._next_sequence = 0
        self._ended = False
        # Per tile-position seed chains for seedless (GOP) frames.
        self._seed_chains: dict[tuple[int, int], np.ndarray] = {}
        # Per in-flight frame: grid of decoded tile frames, the frame's
        # reconstructor, the event-loop time its first chunk landed, and the
        # in-flight solve futures awaited at the frame barrier.
        self._pending_tiles: dict[int, list[list[CompressedFrame | None]]] = {}
        self._pending_recon: dict[int, IncrementalTiledReconstructor] = {}
        self._frame_started: dict[int, float] = {}
        self._pending_solves: dict[
            int,
            list[tuple[int, int, CompressedFrame, asyncio.Future[Any]]],
        ] = {}
        # Single-sensor streams: (ReceivedFrame, future) pairs whose
        # reconstructions are attached at end-of-stream (see :meth:`finish`).
        self._pending_frame_solves: list[
            tuple[ReceivedFrame, asyncio.Future[Any]]
        ] = []
        # Batched tiled mode: the (bounded) queue of in-flight whole-frame
        # solves — frame k's solve overlaps frame k+1's wire time, but the
        # barrier awaits older solves past the depth bound so a stream that
        # outruns the solver cannot accumulate unbounded work.
        self._pending_tiled_solves: list[
            tuple[ReceivedFrame, asyncio.Future[Any]]
        ] = []

    # -------------------------------------------------------------- helpers
    @property
    def ended(self) -> bool:
        """True once the stream-end chunk has been processed."""
        return self._ended

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    def _note_frame_landed(self, frame_index: int) -> None:
        """Record a frame's latency for the decode-only completion point."""
        started = self._frame_started.pop(frame_index, None)
        if started is not None:
            self.stats.frame_latencies.append(self._now() - started)

    def _note_on_solve_done(
        self, frame_index: int, future: asyncio.Future[Any]
    ) -> None:
        """Record a frame's latency when its (scheduled) solve resolves."""
        started = self._frame_started.pop(frame_index, None)
        if started is None:
            return
        loop = asyncio.get_running_loop()

        def note(done: asyncio.Future[Any]) -> None:
            if not done.cancelled():
                self.stats.frame_latencies.append(loop.time() - started)

        future.add_done_callback(note)

    def _new_reconstructor(self) -> IncrementalTiledReconstructor:
        assert self._header is not None
        return IncrementalTiledReconstructor(
            self._header.scene_shape,
            self._header.tile_shape,
            **self._recon_options,
        )

    def _solve_frame(self, frame: CompressedFrame) -> ReconstructionResult:
        return reconstruct_frame(frame, **self._recon_options)

    def _solve_tiled_batched(
        self,
        tiles: list[list[CompressedFrame | None]],
        capture_metadata: dict[str, object],
    ) -> TiledReconstructionResult:
        """Invert one complete tiled frame through the batched barrier solve."""
        reconstructor = self._new_reconstructor()
        for grid_row, row in enumerate(tiles):
            for grid_col, frame in enumerate(row):
                reconstructor.stage_tile(grid_row, grid_col, frame)
        reconstructor.solve_staged()
        return reconstructor.result(capture_metadata=capture_metadata)

    # ------------------------------------------------------------- chunk fsm
    async def handle_chunk(self, chunk: Chunk) -> None:
        """Advance the FSM by one chunk (may suspend on solve backpressure).

        Raises :class:`StreamProtocolError` on malformed chunks, sequence
        gaps, duplicate tiles, or chunks after the stream end.
        """
        if self._ended:
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} chunk after the stream end"
            )
        if chunk.sequence != self._next_sequence:
            raise StreamProtocolError(
                f"chunk sequence jumped to {chunk.sequence}, "
                f"expected {self._next_sequence}"
            )
        self._next_sequence += 1
        self._result.n_chunks += 1
        self._result.n_bytes += chunk.n_bytes
        self.stats.n_chunks += 1
        self.stats.n_bytes += chunk.n_bytes
        if chunk.chunk_type == ChunkType.STREAM_START:
            if self._header is not None:
                raise StreamProtocolError("duplicate stream-start chunk")
            self._header = decode_stream_header(chunk.payload)
            self._result.header = self._header
            if self._header.tiled:
                self._slots = tile_grid(
                    self._header.scene_shape, self._header.tile_shape
                )
            return
        if self._header is None:
            raise StreamProtocolError(
                f"{chunk.chunk_type.name} chunk before the stream start"
            )
        if chunk.chunk_type == ChunkType.FRAME_DATA:
            await self._handle_frame_data(chunk)
        elif chunk.chunk_type == ChunkType.FRAME_COMPLETE:
            await self._handle_frame_complete(chunk)
        elif chunk.chunk_type == ChunkType.STREAM_END:
            self._result.announced_frames = decode_stream_end(chunk.payload)
            self._ended = True

    def _decode_with_chain(
        self, data: FrameData, key: tuple[int, int], keyframe: bool
    ) -> CompressedFrame:
        """Decode one embedded frame, maintaining the position's seed chain."""
        assert self._header is not None
        if keyframe:
            frame = decode_frame(data.frame_bytes)
        else:
            chain = self._seed_chains.get(key)
            if chain is None:
                raise StreamProtocolError(
                    f"seedless frame for tile {key} arrived before any keyframe"
                )
            frame = decode_frame(data.frame_bytes, seed_state=chain)
        # The one-pattern frame overlap: this frame's last selection pattern
        # seeds the next frame at this position.  Keyframe-only streams
        # (gop_size <= 1) never read the chain, so skip the CA evolution on
        # their decode hot path.
        if self._header.gop_size > 1:
            self._seed_chains[key] = advance_seed_state(
                frame.seed_state,
                frame.rule_number,
                n_samples=frame.n_samples,
                steps_per_sample=frame.steps_per_sample,
                warmup_steps=frame.warmup_steps,
            )
        return frame

    async def _handle_frame_data(self, chunk: Chunk) -> None:
        assert self._header is not None
        data = decode_frame_data(chunk.payload)
        key = (data.grid_row, data.grid_col)
        frame = self._decode_with_chain(data, key, data.keyframe)
        self._frame_started.setdefault(data.frame_index, self._now())
        if not self._header.tiled:
            if key != (0, 0):
                raise StreamProtocolError(
                    f"tile position {key} in a single-sensor stream"
                )
            expected = self._header.scene_shape
            if (frame.config.rows, frame.config.cols) != expected:
                raise StreamProtocolError(
                    f"frame {data.frame_index} geometry "
                    f"{(frame.config.rows, frame.config.cols)} does not match "
                    f"the announced scene {expected}"
                )
            received = ReceivedFrame(frame_index=data.frame_index, capture=frame)
            self._result.frames.append(received)
            self.stats.n_frames += 1
            if self.reconstruct:
                # Queue the solve but keep draining the stream; the result
                # is attached at end-of-stream (see :meth:`finish`).
                future = await self.scheduler.submit(
                    self.stream_id, _bind(self._solve_frame, frame)
                )
                self._note_on_solve_done(data.frame_index, future)
                self._pending_frame_solves.append((received, future))
            else:
                self._note_frame_landed(data.frame_index)
            return
        # Tiled: land the tile in its in-flight frame (solved per-tile right
        # away in eager mode, or collected for the barrier's batched solve).
        assert self._slots is not None
        grid_rows, grid_cols = len(self._slots), len(self._slots[0])
        if not (data.grid_row < grid_rows and data.grid_col < grid_cols):
            raise StreamProtocolError(
                f"tile position {key} outside the {grid_rows}x{grid_cols} grid"
            )
        slot = self._slots[data.grid_row][data.grid_col]
        if (frame.config.rows, frame.config.cols) != (slot.rows, slot.cols):
            raise StreamProtocolError(
                f"tile {key} of frame {data.frame_index} is "
                f"{frame.config.rows}x{frame.config.cols}, its slot expects "
                f"{slot.rows}x{slot.cols}"
            )
        tiles = self._pending_tiles.setdefault(
            data.frame_index,
            [[None] * grid_cols for _ in range(grid_rows)],
        )
        if tiles[data.grid_row][data.grid_col] is not None:
            raise StreamProtocolError(
                f"duplicate tile {key} in frame {data.frame_index}"
            )
        tiles[data.grid_row][data.grid_col] = frame
        if self.reconstruct and self.eager:
            reconstructor = self._pending_recon.get(data.frame_index)
            if reconstructor is None:
                reconstructor = self._new_reconstructor()
                self._pending_recon[data.frame_index] = reconstructor
            # Eager mode: queue the solve but keep draining the stream —
            # with several scheduler slots, tiles reconstruct concurrently
            # while later chunks are still arriving.  The futures are
            # awaited (and stitched, in arrival order) at the frame barrier.
            # In the default batched mode the tiles just accumulate here and
            # the barrier inverts them all in one stacked solve.
            future = await self.scheduler.submit(
                self.stream_id, _bind(reconstructor.solve_tile, frame)
            )
            self._pending_solves.setdefault(data.frame_index, []).append(
                (data.grid_row, data.grid_col, frame, future)
            )

    async def _handle_frame_complete(self, chunk: Chunk) -> None:
        assert self._header is not None
        frame_index, n_tiles = decode_frame_complete(chunk.payload)
        if not self._header.tiled:
            raise StreamProtocolError(
                "frame-complete barrier in a single-sensor stream"
            )
        tiles = self._pending_tiles.pop(frame_index, None)
        if tiles is None:
            raise StreamProtocolError(
                f"frame-complete for unknown frame {frame_index}"
            )
        flat = [frame for row in tiles for frame in row]
        if any(frame is None for frame in flat):
            missing = sum(frame is None for frame in flat)
            raise StreamProtocolError(
                f"frame {frame_index} completed with {missing} tiles missing"
            )
        if n_tiles != len(flat):
            raise StreamProtocolError(
                f"frame {frame_index} barrier announces {n_tiles} tiles, "
                f"grid has {len(flat)}"
            )
        assert self._slots is not None
        capture = TiledCaptureResult(
            tiles=tiles,
            slots=self._slots,
            scene_shape=self._header.scene_shape,
            tile_shape=self._header.tile_shape,
            metadata=merge_tile_statistics(flat),
        )
        reconstruction = None
        if self.reconstruct and self.eager:
            reconstructor = self._pending_recon.pop(frame_index)
            solves = self._pending_solves.pop(frame_index, [])
            try:
                for grid_row, grid_col, frame, future in solves:
                    reconstructor.insert_result(
                        grid_row, grid_col, frame, await future
                    )
            except BaseException:
                # One tile's solve failed: don't let its siblings keep
                # running unobserved (they left _pending_solves above).
                for _, _, _, future in solves:
                    future.cancel()
                raise
            reconstruction = reconstructor.result(
                capture_metadata=capture.metadata
            )
        received = ReceivedFrame(
            frame_index=frame_index,
            capture=capture,
            reconstruction=reconstruction,
        )
        self._result.frames.append(received)
        self.stats.n_frames += 1
        if self.reconstruct and not self.eager:
            # Batched mode: every tile of the frame has landed — queue the
            # stacked multi-tile solve (the same stage/solve_staged path
            # in-process reconstruct_tiled defaults to, so the streamed
            # result is byte-identical to it) while the stream keeps
            # draining the next frame's chunks.  Older in-flight solves are
            # awaited here past the depth bound, so a stream faster than the
            # solver back-pressures instead of accumulating frames without
            # limit.
            while len(self._pending_tiled_solves) >= self.MAX_INFLIGHT_TILED_SOLVES:
                earlier, future = self._pending_tiled_solves.pop(0)
                earlier.reconstruction = await future
            future = await self.scheduler.submit(
                self.stream_id,
                _bind(self._solve_tiled_batched, tiles, capture.metadata),
            )
            self._note_on_solve_done(frame_index, future)
            self._pending_tiled_solves.append((received, future))
        else:
            self._note_frame_landed(frame_index)

    # --------------------------------------------------------------- closing
    async def finish(self) -> StreamResult:
        """Settle all in-flight work and return the stream's result.

        Called once :attr:`ended` is true.  Raises
        :class:`StreamProtocolError` for streams that ended with incomplete
        tiled frames.
        """
        if not self._ended:
            raise StreamProtocolError(
                "transport closed before the stream-end chunk arrived"
            )
        if self._pending_tiles:
            pending = sorted(self._pending_tiles)
            raise StreamProtocolError(
                f"stream ended with incomplete tiled frames: {pending}"
            )
        for received, future in self._pending_frame_solves:
            received.reconstruction = await future
        self._pending_frame_solves = []
        for received, future in self._pending_tiled_solves:
            received.reconstruction = await future
        self._pending_tiled_solves = []
        return self._result

    def cancel(self) -> None:
        """Cancel every in-flight solve (the session is being torn down)."""
        for solves in self._pending_solves.values():
            for _, _, _, future in solves:
                future.cancel()
        for _, future in self._pending_frame_solves:
            future.cancel()
        for _, future in self._pending_tiled_solves:
            future.cancel()
        # Consume exceptions of already-settled futures so a torn-down
        # session never leaves "exception was never retrieved" noise.
        for solves in self._pending_solves.values():
            for _, _, _, future in solves:
                _consume_exception(future)
        for _, future in self._pending_frame_solves:
            _consume_exception(future)
        for _, future in self._pending_tiled_solves:
            _consume_exception(future)


def _bind(fn: Callable[..., Any], *args: Any) -> Callable[[], Any]:
    """A zero-argument thunk of ``fn(*args)`` for :meth:`SolveScheduler.submit`."""

    def call() -> Any:
        return fn(*args)

    return call


def _consume_exception(future: asyncio.Future[Any]) -> None:
    if future.done() and not future.cancelled():
        future.exception()
