"""End-to-end streaming acceptance tests.

These pin the subsystem's two system-level guarantees:

* a tiled 256x256 video sequence streamed over the loopback transport
  reconstructs **byte-identically** to direct in-process
  :func:`~repro.recon.pipeline.reconstruct_tiled`, with the capture's event
  statistics and metadata surviving the wire;
* buffering is **bounded**: a slow receiver stalls the camera node through
  transport backpressure instead of growing the in-flight queue.
"""

import asyncio

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_tiled
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.shard import TiledSensorArray
from repro.stream.node import CameraNode
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport, connect_tcp, serve_tcp


def run(coro):
    return asyncio.run(coro)


def _array(scene_shape=(256, 256), ratio=0.05, seed=11):
    return TiledSensorArray(
        scene_shape,
        tile_shape=(64, 64),
        compression_ratio=ratio,
        executor="serial",
        seed=seed,
    )


class TestTiled256VideoByteIdentical:
    """The headline acceptance test: 256x256 tiled video over loopback."""

    SCENES = 2
    RECON_KWARGS = dict(solver="fista", max_iterations=12)

    @pytest.fixture(scope="class")
    def streamed_and_direct(self):
        scenes = [
            make_scene("natural", (256, 256), seed=40 + index)
            for index in range(self.SCENES)
        ]

        async def scenario():
            transport = LoopbackTransport(max_buffered=4)
            node = CameraNode(transport, gop_size=self.SCENES)
            receiver = StreamReceiver(**self.RECON_KWARGS)
            send_task = asyncio.create_task(
                node.stream_tiled_video(_array(), scenes)
            )
            result = await receiver.run(transport)
            stats = await send_task
            return result, stats

        result, stats = run(scenario())
        direct_captures = _array().capture_scene_sequence(scenes)
        direct_recons = [
            reconstruct_tiled(capture, **self.RECON_KWARGS)
            for capture in direct_captures
        ]
        return result, stats, direct_captures, direct_recons

    def test_samples_survive_the_wire_bit_for_bit(self, streamed_and_direct):
        result, _, direct_captures, _ = streamed_and_direct
        assert result.n_frames == self.SCENES
        for received, direct in zip(result.frames, direct_captures):
            assert np.array_equal(received.capture.samples, direct.samples)
            for (_, streamed_tile), (_, direct_tile) in zip(
                received.capture.frames(), direct.frames()
            ):
                assert np.array_equal(streamed_tile.samples, direct_tile.samples)
                assert np.array_equal(
                    streamed_tile.seed_state, direct_tile.seed_state
                )

    def test_reconstruction_is_byte_identical(self, streamed_and_direct):
        result, _, _, direct_recons = streamed_and_direct
        for received, direct in zip(result.frames, direct_recons):
            streamed_image = received.reconstruction.image
            assert streamed_image.dtype == direct.image.dtype
            assert streamed_image.tobytes() == direct.image.tobytes()

    def test_statistics_and_metadata_survive_the_wire(self, streamed_and_direct):
        result, _, direct_captures, _ = streamed_and_direct
        for received, direct in zip(result.frames, direct_captures):
            for key in (
                "n_lost_events",
                "n_queued_events",
                "n_lsb_errors",
                "n_saturated_pixels",
                "event_statistics",
            ):
                assert received.capture.metadata[key] == direct.metadata[key], key
            # Per-tile CA parameters and capture statistics too.
            for (_, streamed_tile), (_, direct_tile) in zip(
                received.capture.frames(), direct.frames()
            ):
                assert streamed_tile.rule_number == direct_tile.rule_number
                assert streamed_tile.warmup_steps == direct_tile.warmup_steps
                assert (
                    streamed_tile.metadata["n_lsb_errors"]
                    == direct_tile.metadata["n_lsb_errors"]
                )

    def test_seed_rides_once_per_gop(self, streamed_and_direct):
        _, stats, _, _ = streamed_and_direct
        # 2 frames x 16 tiles + header + 2 barriers + end = 37 chunks; the
        # second frame's 16 tile chunks are all seedless.
        assert stats.n_chunks == self.SCENES * 16 + 1 + self.SCENES + 1

    def test_compression_ratio_is_preserved(self, streamed_and_direct):
        result, _, direct_captures, _ = streamed_and_direct
        for received, direct in zip(result.frames, direct_captures):
            assert received.capture.n_samples == direct.n_samples
            assert received.capture.compression_ratio == direct.compression_ratio


class TestEagerReceiverMode:
    """The opt-in progressive mode: per-tile solves scheduled as chunks land.

    Eager reconstruction must stay byte-identical to the per-tile
    (``serial``/``thread``) executors of ``reconstruct_tiled``, exactly as
    the default batched barrier solve is byte-identical to the batched
    executor — the two mode pairs are the same code paths on both ends.
    """

    def test_eager_matches_per_tile_in_process(self):
        scenes = [make_scene("blobs", (32, 32), seed=21)]
        kwargs = dict(solver="fista", max_iterations=10)

        def array():
            return TiledSensorArray(
                (32, 32),
                tile_shape=(16, 16),
                compression_ratio=0.2,
                executor="serial",
                seed=13,
            )

        async def scenario():
            transport = LoopbackTransport(max_buffered=4)
            node = CameraNode(transport)
            receiver = StreamReceiver(eager=True, **kwargs)
            send_task = asyncio.create_task(
                node.stream_tiled_video(array(), scenes)
            )
            result = await receiver.run(transport)
            await send_task
            return result

        result = run(scenario())
        direct = reconstruct_tiled(
            array().capture_scene_sequence(scenes)[0], executor="serial", **kwargs
        )
        streamed = result.frames[0].reconstruction
        assert streamed.image.tobytes() == direct.image.tobytes()


class TestSlowReceiverBackpressure:
    """A slow consumer must stall the node, not grow the buffer."""

    def test_buffering_is_bounded_and_nothing_is_lost(self):
        imager = CompressiveImager(SensorConfig(rows=16, cols=16), seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=index) for index in range(12)]
        max_buffered = 2

        class SlowTransport(LoopbackTransport):
            async def recv(self):
                await asyncio.sleep(0.003)  # a receiver slower than capture
                return await super().recv()

        async def scenario():
            transport = SlowTransport(max_buffered=max_buffered)
            node = CameraNode(transport)
            receiver = StreamReceiver(reconstruct=False)
            send_task = asyncio.create_task(node.stream_frames(imager, scenes))
            result = await receiver.run(transport)
            stats = await send_task
            return transport, result, stats

        transport, result, stats = run(scenario())
        # Bounded: the queue never held more than its cap, and the node hit
        # the bound (it stalled) instead of outrunning the receiver.
        assert transport.high_watermark <= max_buffered
        assert transport.stall_count > 0
        # Lossless: every frame still arrived, in order.
        assert result.n_frames == len(scenes)
        assert [frame.frame_index for frame in result.frames] == list(range(12))
        assert stats.n_bytes == result.n_bytes


class TestTcpEndToEnd:
    """The same pipeline over a real localhost socket."""

    def test_video_stream_over_tcp(self):
        scenes = [make_scene("blobs", (16, 16), seed=index) for index in range(3)]

        async def scenario():
            results = []
            done = asyncio.Event()

            async def handler(transport):
                receiver = StreamReceiver(reconstruct=False)
                results.append(await receiver.run(transport))
                done.set()

            server, port = await serve_tcp(handler)
            sender = await connect_tcp("127.0.0.1", port)
            node = CameraNode(sender)
            imager = CompressiveImager(SensorConfig(rows=16, cols=16), seed=3)
            await node.stream_frames(imager, scenes)
            await asyncio.wait_for(done.wait(), timeout=10.0)
            server.close()
            await server.wait_closed()
            return results[0]

        result = run(scenario())
        reference = CompressiveImager(SensorConfig(rows=16, cols=16), seed=3)
        assert result.n_frames == 3
        for index, received in enumerate(result.frames):
            expected = reference.capture_scene(scenes[index])
            assert np.array_equal(received.capture.samples, expected.samples)
