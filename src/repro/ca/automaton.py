"""Elementary cellular-automaton engine.

The paper's selection CA is a one-dimensional register of Rule 30 cells that
surrounds the pixel array (Fig. 2).  The engine below is rule-agnostic — any
:class:`~repro.ca.rules.RuleTable` can drive it — and supports the two
boundary conditions that make sense for a hardware ring of cells: a closed
ring (periodic) and fixed logic levels at both ends.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator

import numpy as np

from repro.ca.rules import RuleTable
from repro.utils.rng import SeedLike, nonzero_seed_bits
from repro.utils.validation import check_binary_array


class BoundaryCondition(enum.Enum):
    """Boundary handling for the 1-D cell register."""

    #: The register closes on itself (cell 0's left neighbour is the last cell).
    PERIODIC = "periodic"
    #: Cells beyond the register edges read as constant logic '0'.
    FIXED_ZERO = "fixed_zero"
    #: Cells beyond the register edges read as constant logic '1'.
    FIXED_ONE = "fixed_one"


class ElementaryCellularAutomaton:
    """A one-dimensional, radius-1, binary cellular automaton.

    Parameters
    ----------
    n_cells:
        Number of cells in the register.  For the paper's sensor this is
        ``rows + cols`` (the CA wraps around the array and feeds both the row
        and the column selection lines).
    rule:
        The update rule, either a Wolfram code or a :class:`RuleTable`.
    seed_state:
        Initial register contents as an iterable of bits.  When omitted, a
        random non-zero state is drawn from ``seed``.
    boundary:
        One of :class:`BoundaryCondition`.  Hardware rings use ``PERIODIC``.
    seed:
        RNG seed used only when ``seed_state`` is not given.
    """

    def __init__(
        self,
        n_cells: int,
        rule: int | RuleTable = 30,
        *,
        seed_state: Iterable[int] | None = None,
        boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
        seed: SeedLike = None,
    ) -> None:
        if n_cells < 3:
            raise ValueError(f"n_cells must be at least 3, got {n_cells}")
        self.n_cells = int(n_cells)
        self.rule = rule if isinstance(rule, RuleTable) else RuleTable(int(rule))
        self.boundary = BoundaryCondition(boundary)
        if seed_state is None:
            state = nonzero_seed_bits(self.n_cells, seed)
        else:
            state = check_binary_array("seed_state", np.array(list(seed_state)))
            if state.size != self.n_cells:
                raise ValueError(
                    f"seed_state has {state.size} bits, expected {self.n_cells}"
                )
        self._initial_state = state.copy()
        self._state = state.copy()
        self._generation = 0

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> np.ndarray:
        """Current register contents (copy, ``uint8``)."""
        return self._state.copy()

    @property
    def initial_state(self) -> np.ndarray:
        """The seed the register was initialised (or last reset) with."""
        return self._initial_state.copy()

    @property
    def generation(self) -> int:
        """Number of update steps applied since the last reset."""
        return self._generation

    def reset(self, seed_state: Iterable[int] | None = None) -> None:
        """Reset to the original seed, or to a new ``seed_state`` if given."""
        if seed_state is not None:
            state = check_binary_array("seed_state", np.array(list(seed_state)))
            if state.size != self.n_cells:
                raise ValueError(
                    f"seed_state has {state.size} bits, expected {self.n_cells}"
                )
            self._initial_state = state.copy()
        self._state = self._initial_state.copy()
        self._generation = 0

    # ---------------------------------------------------------------- update
    def _neighbours(self) -> tuple:
        """Return (left, right) neighbour arrays under the boundary condition."""
        state = self._state
        if self.boundary is BoundaryCondition.PERIODIC:
            left = np.roll(state, 1)
            right = np.roll(state, -1)
        else:
            pad = 0 if self.boundary is BoundaryCondition.FIXED_ZERO else 1
            left = np.concatenate(([pad], state[:-1])).astype(np.uint8)
            right = np.concatenate((state[1:], [pad])).astype(np.uint8)
        return left, right

    def step(self, n_steps: int = 1) -> np.ndarray:
        """Advance the automaton ``n_steps`` generations and return the new state."""
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        for _ in range(n_steps):
            left, right = self._neighbours()
            self._state = self.rule.apply(left, self._state, right)
            self._generation += 1
        return self.state

    def evolve_states(
        self,
        n_snapshots: int,
        stride: int = 1,
        *,
        step_before_first: bool = False,
    ) -> np.ndarray:
        """Advance the automaton and collect ``n_snapshots`` strided states.

        This is the batched engine behind the vectorised Φ builder: instead of
        materialising one state at a time through :meth:`step`, it runs the
        whole evolution in a tight loop with the rule lookup hoisted out, and
        returns the snapshot stack as a single ``(n_snapshots, n_cells)``
        ``uint8`` array.

        Parameters
        ----------
        n_snapshots:
            Number of states to record.
        stride:
            CA generations between consecutive snapshots.
        step_before_first:
            When false (default) snapshot 0 is the automaton's current state
            and ``(n_snapshots - 1) * stride`` generations are applied in
            total; when true the automaton advances ``stride`` generations
            before every snapshot, including the first.

        The automaton is left positioned on the last snapshot, exactly as if
        the equivalent sequence of :meth:`step` calls had been made.
        """
        if n_snapshots < 0:
            raise ValueError(f"n_snapshots must be non-negative, got {n_snapshots}")
        if stride < 1:
            raise ValueError(f"stride must be at least 1, got {stride}")
        n_snapshots = int(n_snapshots)
        stride = int(stride)
        snapshots = np.empty((n_snapshots, self.n_cells), dtype=np.uint8)
        if n_snapshots == 0:
            return snapshots
        if self.boundary is BoundaryCondition.PERIODIC:
            return self._evolve_states_packed(
                snapshots, stride, step_before_first=step_before_first
            )
        lookup = self.rule.lookup_table
        state = self._state
        pad = np.uint8(0 if self.boundary is BoundaryCondition.FIXED_ZERO else 1)
        padded = np.empty(self.n_cells + 2, dtype=np.uint8)
        padded[0] = padded[-1] = pad

        def advance(state: np.ndarray) -> np.ndarray:
            padded[1:-1] = state
            neighbourhood = (
                padded[:-2] * np.uint8(4)
                + padded[1:-1] * np.uint8(2)
                + padded[2:]
            )
            return lookup[neighbourhood]

        for snapshot_index in range(n_snapshots):
            if snapshot_index > 0 or step_before_first:
                for _ in range(stride):
                    state = advance(state)
                    self._generation += 1
            snapshots[snapshot_index] = state
        self._state = state.copy()
        return snapshots

    def _evolve_states_packed(
        self,
        snapshots: np.ndarray,
        stride: int,
        *,
        step_before_first: bool,
    ) -> np.ndarray:
        """Periodic-ring fast path for :meth:`evolve_states`.

        The register is packed into one Python integer (bit ``i`` is cell
        ``i``) and the rule is applied as a bitwise sum-of-minterms over the
        whole ring at once — arbitrary-precision integer ops make this a
        handful of word-level operations per generation instead of a numpy
        call chain, which matters because CA evolution is the only serial
        part of the batched Φ builder.
        """
        n_cells = self.n_cells
        n_snapshots = snapshots.shape[0]
        ring_mask = (1 << n_cells) - 1
        packed = int.from_bytes(
            np.packbits(self._state, bitorder="little").tobytes(), "little"
        )
        minterms = [
            ((pattern >> 2) & 1, (pattern >> 1) & 1, pattern & 1)
            for pattern in range(8)
            if (self.rule.number >> pattern) & 1
        ]
        n_bytes = (n_cells + 7) // 8
        packed_rows = bytearray()
        for snapshot_index in range(n_snapshots):
            if snapshot_index > 0 or step_before_first:
                for _ in range(stride):
                    # Bit i of `left` is cell i's left neighbour, etc.
                    left = ((packed << 1) | (packed >> (n_cells - 1))) & ring_mask
                    right = (packed >> 1) | ((packed & 1) << (n_cells - 1))
                    not_left = left ^ ring_mask
                    not_center = packed ^ ring_mask
                    not_right = right ^ ring_mask
                    next_packed = 0
                    for left_bit, center_bit, right_bit in minterms:
                        next_packed |= (
                            (left if left_bit else not_left)
                            & (packed if center_bit else not_center)
                            & (right if right_bit else not_right)
                        )
                    packed = next_packed
                    self._generation += 1
            packed_rows += packed.to_bytes(n_bytes, "little")
        unpacked = np.unpackbits(
            np.frombuffer(bytes(packed_rows), dtype=np.uint8).reshape(n_snapshots, n_bytes),
            axis=1,
            count=n_cells,
            bitorder="little",
        )
        snapshots[:] = unpacked
        self._state = snapshots[-1].copy()
        return snapshots

    def run(self, n_steps: int, *, include_initial: bool = True) -> np.ndarray:
        """Run ``n_steps`` generations and return the full space-time diagram.

        The result has shape ``(n_steps + 1, n_cells)`` when
        ``include_initial`` is true (row 0 is the current state before
        stepping), else ``(n_steps, n_cells)``.
        """
        if n_steps < 0:
            raise ValueError(f"n_steps must be non-negative, got {n_steps}")
        rows = []
        if include_initial:
            rows.append(self.state)
        for _ in range(n_steps):
            rows.append(self.step())
        return np.array(rows, dtype=np.uint8)

    def iterate(self) -> Iterator[np.ndarray]:
        """Infinite generator of successive states (post-update)."""
        while True:
            yield self.step()

    # ------------------------------------------------------------- utilities
    def center_column(self, n_steps: int) -> np.ndarray:
        """Bit sequence produced by the centre cell over ``n_steps`` updates.

        The centre column of Rule 30 is the classic pseudo-random bit source
        (it is what Mathematica's ``RandomInteger`` historically used); it is
        a convenient scalar stream for the statistical tests.
        """
        center = self.n_cells // 2
        bits = np.empty(n_steps, dtype=np.uint8)
        for i in range(n_steps):
            bits[i] = self.step()[center]
        return bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ElementaryCellularAutomaton(n_cells={self.n_cells}, rule={self.rule.number}, "
            f"boundary={self.boundary.value}, generation={self._generation})"
        )
