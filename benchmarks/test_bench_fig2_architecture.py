"""E4 — Fig. 2: the sensor architecture.

Exercises the full signal chain of the floorplan — CA ring, pixel array,
per-column Sample & Add, global counter — by capturing a complete compressive
frame of a synthetic scene at the prototype's 64x64 resolution, then checks
the architectural invariants (bit budgets, sample counts, reconstructability
from the seed) and reports the capture statistics.
"""

import pytest

from benchmarks.conftest import print_table
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


@pytest.fixture(scope="module")
def frame_and_imager(benchmark_seed):
    config = SensorConfig()
    imager = CompressiveImager(config, seed=benchmark_seed)
    scene = make_scene("natural", (64, 64), seed=benchmark_seed)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    current = conversion.convert(scene)
    return imager, current


def test_fig2_full_frame_capture(benchmark, frame_and_imager):
    imager, current = frame_and_imager
    config = imager.config

    frame = benchmark.pedantic(
        lambda: imager.capture(current, n_samples=config.samples_per_frame),
        rounds=3, iterations=1,
    )

    rows = [
        {"quantity": "compressed samples / frame", "value": frame.n_samples},
        {"quantity": "compression ratio R", "value": frame.compression_ratio},
        {"quantity": "sample word width (bits)", "value": config.compressed_sample_bits},
        {"quantity": "max sample value observed", "value": int(frame.samples.max())},
        {"quantity": "CA seed length (bits)", "value": int(frame.seed_state.size)},
        {"quantity": "saturated pixels", "value": frame.metadata["n_saturated_pixels"]},
    ]
    print_table("Fig. 2 — one full compressive frame", rows)

    assert frame.n_samples == int(round(0.4 * 4096))
    assert frame.samples.max() < (1 << config.compressed_sample_bits)
    assert frame.seed_state.size == config.rows + config.cols
    assert frame.metadata["n_saturated_pixels"] == 0


def test_fig2_frame_reconstructs(benchmark, frame_and_imager):
    """The captured frame must reconstruct to a faithful image at R = 0.4."""
    imager, current = frame_and_imager
    frame = imager.capture(current, n_samples=imager.config.samples_per_frame)

    result = benchmark.pedantic(
        lambda: reconstruct_frame(frame, max_iterations=150), rounds=1, iterations=1
    )
    print_table(
        "Fig. 2 — reconstruction at R = 0.4",
        [{"psnr_db": result.metrics["psnr_db"], "iterations": result.solver_result.n_iterations}],
    )
    assert result.metrics["psnr_db"] > 28.0
