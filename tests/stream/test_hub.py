"""ReceiverHub behaviour: fairness, watermarks, demux, failure isolation.

The fleet-scale contract decomposes into pieces each pinned here:

* :class:`~repro.stream.hub.FairSolveScheduler` dispatches round-robin
  across streams (deterministic ``dispatch_order`` assertions) and its two
  watermark levels suspend only the submitting stream;
* the hub demuxes by wire stream id, rejects concurrent duplicates with a
  *typed* error, bounds admission via ``max_streams``, and a dying
  connection tears down only its own sessions;
* the fifth architecture invariant: a hub session serving a single node
  reconstructs **byte-identically** to :class:`StreamReceiver` (which is
  itself pinned byte-identical to in-process reconstruction) — the fleet
  path is the single-node path, many times over.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.shard import TiledSensorArray
from repro.stream.hub import (
    DuplicateStreamIdError,
    FairSolveScheduler,
    HubCapacityError,
    ReceiverHub,
    percentile,
)
from repro.stream.node import CameraNode
from repro.stream.protocol import (
    Chunk,
    ChunkType,
    StreamHeader,
    StreamProtocolError,
    encode_chunk,
    encode_stream_header,
)
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport, connect_tcp


CONFIG = SensorConfig(rows=16, cols=16)


def run(coro):
    return asyncio.run(coro)


def _start_chunk(stream_id, kind="frame", shape=(16, 16)):
    header = StreamHeader(kind=kind, scene_shape=shape, tile_shape=shape)
    return encode_chunk(
        Chunk(
            chunk_type=ChunkType.STREAM_START,
            stream_id=stream_id,
            sequence=0,
            payload=encode_stream_header(header),
        )
    )


class _Gate:
    """A job factory whose jobs block (in the worker thread) until released."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def job(self, value):
        def work():
            self.started.set()
            assert self.release.wait(timeout=10.0)
            return value

        return work


class TestFairSolveScheduler:
    def test_round_robin_across_streams(self):
        """A stream with many queued jobs yields to other streams' queues."""

        async def scenario():
            scheduler = FairSolveScheduler(slots=1, per_stream_pending=None)
            gate = _Gate()
            futures = [await scheduler.submit(1, gate.job("a1"))]
            # a1 is now the running job; everything below queues behind it.
            await asyncio.get_running_loop().run_in_executor(
                None, gate.started.wait
            )
            futures.append(await scheduler.submit(1, lambda: "a2"))
            futures.append(await scheduler.submit(1, lambda: "a3"))
            futures.append(await scheduler.submit(2, lambda: "b1"))
            futures.append(await scheduler.submit(2, lambda: "b2"))
            gate.release.set()
            results = await asyncio.gather(*futures)
            await scheduler.close()
            return scheduler.dispatch_order, results

        order, results = run(scenario())
        # Stream 1 had three jobs queued before stream 2's two, yet the
        # dispatcher alternates instead of draining stream 1 first.
        assert order == [1, 1, 2, 1, 2]
        assert results == ["a1", "a2", "a3", "b1", "b2"]

    def test_per_stream_watermark_suspends_only_that_stream(self):
        async def scenario():
            scheduler = FairSolveScheduler(slots=1, per_stream_pending=1)
            gate = _Gate()
            blocked = await scheduler.submit(1, gate.job("a1"))
            await asyncio.get_running_loop().run_in_executor(
                None, gate.started.wait
            )
            # Stream 1 is at its watermark: another submit must suspend...
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    scheduler.submit(1, lambda: "a2"), timeout=0.05
                )
            # ...while stream 2 submits immediately.
            other = await asyncio.wait_for(
                scheduler.submit(2, lambda: "b1"), timeout=1.0
            )
            gate.release.set()
            results = await asyncio.gather(blocked, other)
            # With the first job done, stream 1 has space again.
            retried = await scheduler.submit(1, lambda: "a2")
            results.append(await retried)
            await scheduler.close()
            return results

        assert run(scenario()) == ["a1", "b1", "a2"]

    def test_global_watermark_bounds_total_pending(self):
        async def scenario():
            scheduler = FairSolveScheduler(
                slots=1, per_stream_pending=None, max_pending=2
            )
            gate = _Gate()
            first = await scheduler.submit(1, gate.job("a1"))
            second = await scheduler.submit(2, lambda: "b1")
            assert scheduler.pending() == 2
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    scheduler.submit(3, lambda: "c1"), timeout=0.05
                )
            gate.release.set()
            results = [await first, await second]
            third = await asyncio.wait_for(
                scheduler.submit(3, lambda: "c1"), timeout=1.0
            )
            results.append(await third)
            await scheduler.close()
            return results

        assert run(scenario()) == ["a1", "b1", "c1"]

    def test_job_errors_propagate_through_the_future(self):
        async def scenario():
            scheduler = FairSolveScheduler(slots=1)

            def boom():
                raise ValueError("solver exploded")

            future = await scheduler.submit(1, boom)
            with pytest.raises(ValueError, match="solver exploded"):
                await future
            await scheduler.close()

        run(scenario())


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101)


class TestHubAdmission:
    def test_duplicate_stream_id_rejected_with_typed_error(self):
        """Two live connections may not share a stream id."""

        async def scenario():
            hub = ReceiverHub(reconstruct=False)
            holder = LoopbackTransport(max_buffered=4)
            # Connection 1 opens stream id 9 and stays live (no end chunk).
            await holder.send(_start_chunk(9))
            holder_task = asyncio.create_task(hub.attach(holder))
            await asyncio.sleep(0.01)
            assert hub.n_active == 1
            # Connection 2 tries to open the same id.
            intruder = LoopbackTransport(max_buffered=4)
            await intruder.send(_start_chunk(9))
            with pytest.raises(DuplicateStreamIdError, match="stream id 9"):
                await hub.attach(intruder)
            # The legitimate session is unaffected by the rejection.
            assert hub.n_active == 1
            holder_task.cancel()
            await asyncio.gather(holder_task, return_exceptions=True)
            await hub.close()

        run(scenario())

    def test_duplicate_is_a_protocol_error_subclass(self):
        assert issubclass(DuplicateStreamIdError, StreamProtocolError)
        assert issubclass(HubCapacityError, StreamProtocolError)

    def test_max_streams_refuses_admission(self):
        async def scenario():
            hub = ReceiverHub(reconstruct=False, max_streams=1)
            holder = LoopbackTransport(max_buffered=4)
            await holder.send(_start_chunk(1))
            holder_task = asyncio.create_task(hub.attach(holder))
            await asyncio.sleep(0.01)
            overflow = LoopbackTransport(max_buffered=4)
            await overflow.send(_start_chunk(2))
            with pytest.raises(HubCapacityError, match="max_streams"):
                await hub.attach(overflow)
            holder_task.cancel()
            await asyncio.gather(holder_task, return_exceptions=True)
            await hub.close()

        run(scenario())

    def test_stream_id_reusable_after_completion(self):
        """Ids recycle sequentially — only *concurrent* duplicates clash."""
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]

        async def scenario():
            hub = ReceiverHub(reconstruct=False)
            for _ in range(2):
                transport = LoopbackTransport(max_buffered=16)
                node = CameraNode(transport, stream_id=7)
                send = asyncio.create_task(node.stream_frames(imager, scenes))
                await hub.attach(transport)
                await send
            await hub.close()
            return hub

        hub = run(scenario())
        assert len(hub.completed) == 2
        assert all(result.stream_id == 7 for result in hub.completed)


class TestFailureIsolation:
    def test_disconnect_mid_frame_drops_only_that_session(self):
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=index) for index in range(2)]

        async def scenario():
            hub = ReceiverHub(reconstruct=False)
            # The dying connection: a stream start, then the wire goes dark.
            dying = LoopbackTransport(max_buffered=4)
            await dying.send(_start_chunk(1))
            await dying.close()
            # The healthy connection streams normally, concurrently.
            healthy = LoopbackTransport(max_buffered=16)
            node = CameraNode(healthy, stream_id=2)
            send = asyncio.create_task(node.stream_frames(imager, scenes))
            dying_attach = asyncio.create_task(hub.attach(dying))
            healthy_results = await hub.attach(healthy)
            await send
            with pytest.raises(StreamProtocolError, match="closed before"):
                await dying_attach
            await hub.close()
            return hub, healthy_results

        hub, results = run(scenario())
        # Only the dead connection failed; the healthy stream is complete.
        assert len(hub.failures) == 1
        assert isinstance(hub.failures[0], StreamProtocolError)
        assert len(results) == 1
        assert results[0].stream_id == 2
        assert results[0].n_frames == 2
        # The dead session released its id and left no live state behind.
        assert hub.n_active == 0

    def test_failed_session_leaves_partial_stats_readable(self):
        async def scenario():
            hub = ReceiverHub(reconstruct=False)
            dying = LoopbackTransport(max_buffered=4)
            await dying.send(_start_chunk(5))
            await dying.close()
            with pytest.raises(StreamProtocolError, match="closed before"):
                await hub.attach(dying)
            await hub.close()
            return hub

        hub = run(scenario())
        stats = hub.session_stats[5]
        assert stats.n_chunks == 1
        assert stats.n_bytes > 0


class TestSingleSessionByteIdentity:
    """The fifth invariant: hub(single node) ≡ StreamReceiver, byte for byte."""

    RECON_KWARGS = dict(solver="fista", max_iterations=10)
    SCENES = 2

    def _array(self):
        return TiledSensorArray(
            (32, 32),
            tile_shape=(16, 16),
            compression_ratio=0.2,
            executor="serial",
            seed=13,
        )

    def _scenes(self):
        return [
            make_scene("blobs", (32, 32), seed=50 + index)
            for index in range(self.SCENES)
        ]

    def _stream_through(self, consume):
        async def scenario():
            transport = LoopbackTransport(max_buffered=8)
            node = CameraNode(transport, gop_size=self.SCENES)
            send = asyncio.create_task(
                node.stream_tiled_video(self._array(), self._scenes())
            )
            result = await consume(transport)
            await send
            return result

        return run(scenario())

    def test_hub_session_matches_stream_receiver(self):
        async def via_hub(transport):
            hub = ReceiverHub(**self.RECON_KWARGS)
            try:
                return (await hub.attach(transport))[0]
            finally:
                await hub.close()

        async def via_receiver(transport):
            return await StreamReceiver(**self.RECON_KWARGS).run(transport)

        hub_result = self._stream_through(via_hub)
        receiver_result = self._stream_through(via_receiver)
        assert hub_result.n_frames == receiver_result.n_frames == self.SCENES
        assert hub_result.n_chunks == receiver_result.n_chunks
        assert hub_result.n_bytes == receiver_result.n_bytes
        for ours, theirs in zip(hub_result.frames, receiver_result.frames):
            assert np.array_equal(ours.capture.samples, theirs.capture.samples)
            ours_image = ours.reconstruction.image
            theirs_image = theirs.reconstruction.image
            assert ours_image.dtype == theirs_image.dtype
            assert ours_image.tobytes() == theirs_image.tobytes()


class TestSharedStepCache:
    def test_share_step_cache_pools_power_iterations(self):
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]

        async def scenario():
            # One solver slot serialises the two streams' solves, so the
            # second one deterministically finds the first one's warm vector.
            hub = ReceiverHub(
                share_step_cache=True, solver_slots=1, max_iterations=10
            )
            transports = []
            sends = []
            for stream_id in (1, 2):
                transport = LoopbackTransport(max_buffered=16)
                node = CameraNode(transport, stream_id=stream_id)
                sends.append(
                    asyncio.create_task(node.stream_frames(imager, scenes))
                )
                transports.append(transport)
            attaches = [
                asyncio.create_task(hub.attach(transport))
                for transport in transports
            ]
            await asyncio.gather(*sends, *attaches)
            await hub.close()
            return hub

        hub = run(scenario())
        assert hub.step_cache is not None
        assert len(hub.completed) == 2
        # The fleet paid the power iteration once; the second stream hit.
        assert hub.step_cache.warm_hits + hub.step_cache.exact_hits > 0

    def test_cache_is_off_by_default(self):
        hub = ReceiverHub()
        assert hub.step_cache is None


class TestSlowConsumerIsolation:
    def test_backpressured_stream_does_not_stall_others(self):
        """One stream at its solve watermark must not delay another's frames."""

        async def scenario():
            hub = ReceiverHub(reconstruct=False)
            gate = _Gate()
            # Jam stream 1 at a per-stream watermark of 1 with a solve that
            # won't finish until released.
            hub.scheduler.per_stream_pending = 1
            jammed = await hub.scheduler.submit(1, gate.job("slow"))
            await asyncio.get_running_loop().run_in_executor(
                None, gate.started.wait
            )
            blocked = asyncio.create_task(
                hub.scheduler.submit(1, lambda: "queued")
            )
            await asyncio.sleep(0.01)
            assert not blocked.done()  # stream 1 is suspended...
            # ...while stream 2's whole ingest path flows end to end.
            imager = CompressiveImager(CONFIG, seed=3)
            scenes = [make_scene("blobs", (16, 16), seed=0)]
            transport = LoopbackTransport(max_buffered=16)
            node = CameraNode(transport, stream_id=2)
            send = asyncio.create_task(node.stream_frames(imager, scenes))
            results = await asyncio.wait_for(hub.attach(transport), timeout=5.0)
            await send
            assert results[0].n_frames == 1
            gate.release.set()
            await jammed
            await (await blocked)
            await hub.close()

        run(scenario())


class TestHubOverTcp:
    def test_many_nodes_over_real_sockets(self):
        n_nodes = 5
        imager_seed = 3
        scenes = [make_scene("blobs", (16, 16), seed=9)]

        async def scenario():
            hub = ReceiverHub(reconstruct=False)
            server, port = await hub.serve()
            assert server.sockets

            async def one_node(stream_id):
                transport = await connect_tcp("127.0.0.1", port)
                node = CameraNode(transport, stream_id=stream_id)
                imager = CompressiveImager(CONFIG, seed=imager_seed)
                return await node.stream_frames(imager, scenes)

            await asyncio.gather(
                *(one_node(stream_id) for stream_id in range(1, n_nodes + 1))
            )
            await asyncio.wait_for(hub.drain(), timeout=10.0)
            await hub.close()
            return hub

        hub = run(scenario())
        assert len(hub.completed) == n_nodes
        assert sorted(result.stream_id for result in hub.completed) == list(
            range(1, n_nodes + 1)
        )
        reference = CompressiveImager(CONFIG, seed=imager_seed)
        expected = reference.capture_scene(scenes[0])
        for result in hub.completed:
            assert result.n_frames == 1
            assert np.array_equal(result.frames[0].capture.samples, expected.samples)
        snapshot = hub.stats()
        assert snapshot.n_completed == n_nodes
        assert snapshot.n_frames == n_nodes
        assert snapshot.n_failed == 0
