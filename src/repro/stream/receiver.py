"""The receiving end: decode chunks as they arrive, reconstruct incrementally.

:class:`StreamReceiver` is the off-chip half of the paper's system running as
a service, serving exactly one camera node.  Since the transport / session /
scheduling split it is a *thin one-session hub*: every call to :meth:`run`
builds a private :class:`~repro.stream.hub.ReceiverHub` capped at one
stream, attaches the transport and returns that stream's result.  All the
actual protocol work lives in :class:`~repro.stream.session.StreamSession`:

* tiled streams feed an
  :class:`~repro.recon.incremental.IncrementalTiledReconstructor` per frame.
  By default the tiles of a frame are collected as they land and inverted
  **batched** at the ``FRAME_COMPLETE`` barrier — every equal-shape tile of
  the mosaic iterated through one einsum-driven multi-tile FISTA pass over
  the stacked rank-structured ``(R, C)`` factors, exactly the path
  in-process :func:`~repro.recon.pipeline.reconstruct_tiled` defaults to,
  so streamed and in-process reconstructions stay byte-identical.  With
  ``eager=True`` the receiver instead inverts each tile the moment its
  chunk lands — tile ``(0, 0)`` is being solved while tile ``(3, 3)`` is
  still on the wire — matching the ``serial``/``thread`` per-tile
  executors of ``reconstruct_tiled`` byte for byte;
* video streams maintain one **seed chain** per tile position: keyframes
  re-anchor the chain with their inline seed, seedless frames decode against
  it, and after every frame the chain advances by the one-pattern frame
  overlap (:func:`~repro.stream.protocol.advance_seed_state`) — the receiver
  stays synchronised with the sensor's free-running CA for free, which is the
  paper's central selling point exercised over an actual wire.

Reconstruction runs on a worker executor so the event loop keeps draining
the transport; with reconstruction disabled the receiver is a pure decoder
(useful for benchmarks and relays).  Because the single-node path *is* the
hub path with ``max_streams=1``, the fleet-scale
:class:`~repro.stream.hub.ReceiverHub` inherits the byte-identity invariant
verbatim — a hub session serving one node reconstructs identically to this
class (pinned by the hub tests).
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Any

from repro.cs.operators import StepSizeCache
from repro.stream.hub import ReceiverHub
from repro.stream.protocol import StreamProtocolError
from repro.stream.session import ReceivedFrame, StreamResult, StreamSession
from repro.stream.transport import Transport
from repro.telemetry import Telemetry

__all__ = ["ReceivedFrame", "StreamReceiver", "StreamResult", "receive_stream"]


class StreamReceiver:
    """Consume one stream from a transport, decoding and reconstructing live.

    Parameters
    ----------
    reconstruct:
        When false the receiver only decodes (no sparse recovery) — the
        relay/benchmark mode.
    dictionary, solver, regularization, sparsity, max_iterations, operator:
        Per-frame/tile reconstruction options, as in
        :func:`~repro.recon.pipeline.reconstruct_frame`.
    eager:
        ``False`` (default) collects a tiled frame's tiles and inverts them
        batched at the frame barrier — the multi-tile fast path, identical
        to default in-process ``reconstruct_tiled``.  ``True`` restores the
        progressive per-tile mode: each tile's solve is scheduled the
        moment its chunk lands, overlapping reconstruction with the wire.
    step_cache:
        Optional :class:`~repro.cs.operators.StepSizeCache` shared across
        the stream's frames: per-tile power-iteration step sizes are then
        memoised and warm-started along the GOP chain instead of being
        re-estimated from scratch every frame.  Off by default because the
        warm starts shift the step estimates (and hence the reconstructed
        images, by small but far-above-round-off amounts), which would
        break byte-identity with an isolated in-process reconstruction of
        the same frames.
    executor:
        ``concurrent.futures`` executor for the reconstruction work; ``None``
        uses the event loop's default thread pool.
    resilient:
        Tolerate a lossy channel: sequence gaps become tracked losses,
        segmented frames reconstruct from the surviving row subset of Φ,
        and a dead transport salvages the frames already in flight (see
        :class:`~repro.stream.session.StreamSession`).  Off by default —
        zero-loss resilient reception is byte-identical to strict.
    min_surviving_samples:
        Sample floor under which a lossy frame is landed without a solve.
    feedback:
        Send per-frame delivery ACKs and rate advice back up the transport
        (requires a duplex transport; pairs with ``feedback=True`` on the
        :class:`~repro.stream.node.CameraNode`).
    max_sequence_gap, frame_deadline, nack_grace:
        Recovery knobs forwarded to the session verbatim: the
        resync-plausibility window, and the reassembly deadline / NACK
        grace pair that turns on selective repeat (see
        :class:`~repro.stream.session.StreamSession`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` forwarded to the
        private single-stream hub (and its session): frame traces and the
        stage histogram land on its tracer/registry.  Share one facade with
        the sending node to join the transport span over loopback.
    """

    #: Re-exported session bound (see
    #: :attr:`StreamSession.MAX_INFLIGHT_TILED_SOLVES`): how many whole-frame
    #: batched solves may be in flight before the frame barrier awaits the
    #: oldest.
    MAX_INFLIGHT_TILED_SOLVES = StreamSession.MAX_INFLIGHT_TILED_SOLVES

    #: Solver slots of the private single-stream hub.  Generous on purpose:
    #: the historical receiver never bounded its in-flight solves (the tiled
    #: depth bound lives in the session), and a single stream needs no
    #: cross-stream fairness.
    SOLVER_SLOTS = 8

    def __init__(
        self,
        *,
        reconstruct: bool = True,
        dictionary: str = "dct",
        solver: str = "fista",
        regularization: float | None = None,
        sparsity: int | None = None,
        max_iterations: int | None = None,
        operator: str = "structured",
        eager: bool = False,
        step_cache: StepSizeCache | None = None,
        executor: Executor | None = None,
        resilient: bool = False,
        min_surviving_samples: int = 1,
        feedback: bool = False,
        max_sequence_gap: int | None = None,
        frame_deadline: float | None = None,
        nack_grace: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.reconstruct = bool(reconstruct)
        self.dictionary = dictionary
        self.solver = solver
        self.regularization = regularization
        self.sparsity = sparsity
        self.max_iterations = None if max_iterations is None else int(max_iterations)
        self.operator = operator
        self.eager = bool(eager)
        self.step_cache = step_cache
        self.executor = executor
        self.resilient = bool(resilient)
        self.min_surviving_samples = int(min_surviving_samples)
        self.feedback = bool(feedback)
        self.max_sequence_gap = max_sequence_gap
        self.frame_deadline = frame_deadline
        self.nack_grace = nack_grace
        self.telemetry = telemetry

    def _new_hub(self) -> ReceiverHub:
        return ReceiverHub(
            reconstruct=self.reconstruct,
            dictionary=self.dictionary,
            solver=self.solver,
            regularization=self.regularization,
            sparsity=self.sparsity,
            max_iterations=self.max_iterations,
            operator=self.operator,
            eager=self.eager,
            step_cache=self.step_cache,
            executor=self.executor,
            solver_slots=self.SOLVER_SLOTS,
            per_stream_pending=None,
            max_pending=None,
            max_streams=1,
            resilient=self.resilient,
            min_surviving_samples=self.min_surviving_samples,
            feedback=self.feedback,
            max_sequence_gap=self.max_sequence_gap,
            frame_deadline=self.frame_deadline,
            nack_grace=self.nack_grace,
            telemetry=self.telemetry,
        )

    async def run(self, transport: Transport) -> StreamResult:
        """Drain the transport until end-of-stream; return everything landed.

        Raises :class:`~repro.stream.protocol.StreamProtocolError` on
        malformed chunks, sequence gaps, duplicate tiles, or a stream that
        ends mid-frame.  A receiver instance can be reused: each call runs
        on a fresh single-stream hub, starting from a clean slate.
        """
        hub = self._new_hub()
        try:
            results = await hub.attach(transport, expected_streams=1)
        finally:
            await hub.close()
        if not results:
            raise StreamProtocolError(
                "transport closed before any stream arrived"
            )
        return results[0]


async def receive_stream(transport: Transport, **options: Any) -> StreamResult:
    """One-shot convenience: ``StreamReceiver(**options).run(transport)``."""
    return await StreamReceiver(**options).run(transport)
