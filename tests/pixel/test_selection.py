"""Tests for the pixel-selection XOR unit (node V2)."""

import numpy as np
import pytest

from repro.pixel.selection import selection_density, v2_output, xor_select


class TestXorSelect:
    @pytest.mark.parametrize(
        "row,col,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)]
    )
    def test_truth_table(self, row, col, expected):
        assert xor_select(row, col) == expected

    def test_vectorised(self):
        rows = np.array([0, 0, 1, 1])
        cols = np.array([0, 1, 0, 1])
        assert xor_select(rows, cols).tolist() == [0, 1, 1, 0]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            xor_select(2, 0)

    def test_half_of_combinations_select_the_pixel(self):
        """The property the paper highlights: the XOR selects in half the cases."""
        combinations = [(r, c) for r in (0, 1) for c in (0, 1)]
        selected = sum(xor_select(r, c) for r, c in combinations)
        assert selected == 2


class TestV2Output:
    def test_stuck_high_when_deselected(self):
        assert v2_output(0, 1, 1) == 1
        assert v2_output(1, 1, 1) == 1
        assert v2_output(0, 0, 0) == 1
        assert v2_output(1, 0, 0) == 1

    def test_inverts_v1_when_selected(self):
        assert v2_output(0, 0, 1) == 1
        assert v2_output(1, 0, 1) == 0
        assert v2_output(1, 1, 0) == 0

    def test_rejects_invalid_levels(self):
        with pytest.raises(ValueError):
            v2_output(0, 1, 2)


class TestSelectionDensity:
    def test_density_of_known_mask(self):
        mask = np.array([[1, 0], [0, 1]])
        assert selection_density(mask) == 0.5

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            selection_density(np.array([]))
