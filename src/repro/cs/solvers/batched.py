"""Batched multi-tile proximal-gradient solves over structured operators.

A tiled mosaic frame is a stack of independent equal-shape inverse problems:
one ``(R_t, C_t)`` factor pair, one measurement vector and one LASSO solve
per tile.  Solving them one tile at a time — even on a thread pool — leaves
the BLAS underfed: every product is a small matrix-vector kernel.  The
functions here stack the per-tile factors into ``(T, m, rows)`` /
``(T, m, cols)`` arrays and drive **all** tiles through each FISTA/ISTA
iteration in one einsum/batched-matmul pass, with the dictionary transforms
batched the same way (one ``idctn`` over the whole coefficient stack).

Per-tile semantics mirror :func:`repro.cs.solvers.iterative.fista` exactly —
per-tile step sizes, per-tile l1 weights, per-tile convergence with the same
relative-change criterion, and a tile that converges is frozen while its
neighbours keep iterating — so the batched solve is the vectorised twin of
the per-tile loop (numerically equivalent, pinned by the recon-equivalence
suite), not a different algorithm.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cs.dictionaries import Dictionary
from repro.cs.operators import BaseSensingOperator
from repro.cs.solvers.result import SolverResult
from repro.cs.structured import StructuredSensingOperator
from repro.telemetry import SolverProfile
from repro.utils.validation import check_positive


def _stack_factors(
    operators: Sequence[StructuredSensingOperator],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, Dictionary]:
    """Validate a homogeneous operator stack and return its batched factors."""
    if not operators:
        raise ValueError("need at least one operator to stack")
    first = operators[0]
    for operator in operators:
        if not isinstance(operator, StructuredSensingOperator):
            raise TypeError(
                "batched solves need StructuredSensingOperator instances, "
                f"got {type(operator).__name__}"
            )
        if operator.image_shape != first.image_shape:
            raise ValueError(
                f"tile shapes differ: {operator.image_shape} vs {first.image_shape}"
            )
        if operator.n_samples != first.n_samples:
            raise ValueError(
                f"sample counts differ: {operator.n_samples} vs {first.n_samples}"
            )
        if (
            type(operator.dictionary) is not type(first.dictionary)
            or operator.dictionary.shape != first.dictionary.shape
        ):
            raise ValueError("all stacked operators must share one dictionary")
    row_stack = np.stack([op.row_factors for op in operators]).astype(np.float64)
    col_stack = np.stack([op.col_factors for op in operators]).astype(np.float64)
    centers = np.array([op.center for op in operators], dtype=np.float64)
    return row_stack, col_stack, centers, first.dictionary


def _phi_dot_batch(
    row_stack: np.ndarray,
    col_stack: np.ndarray,
    centers: np.ndarray,
    images: np.ndarray,
) -> np.ndarray:
    """``(Φ_t − d_t) x_t`` for every tile: ``(T, rows, cols) -> (T, m)``."""
    term_rows = np.matmul(row_stack, images.sum(axis=2)[..., None])[..., 0]
    term_cols = np.matmul(col_stack, images.sum(axis=1)[..., None])[..., 0]
    cross = (np.matmul(row_stack, images) * col_stack).sum(axis=2)
    projected = term_rows + term_cols - 2.0 * cross
    return projected - centers[:, None] * images.sum(axis=(1, 2))[:, None]


def _phi_rdot_batch(
    row_stack: np.ndarray,
    col_stack: np.ndarray,
    centers: np.ndarray,
    measurements: np.ndarray,
) -> np.ndarray:
    """``(Φ_t − d_t)* y_t`` for every tile: ``(T, m) -> (T, rows, cols)``."""
    row_corr = np.matmul(
        row_stack.transpose(0, 2, 1), measurements[..., None]
    )[..., 0]
    col_corr = np.matmul(
        col_stack.transpose(0, 2, 1), measurements[..., None]
    )[..., 0]
    cross = np.matmul(
        (row_stack * measurements[..., None]).transpose(0, 2, 1), col_stack
    )
    back = row_corr[:, :, None] + col_corr[:, None, :] - 2.0 * cross
    return back - (centers * measurements.sum(axis=1))[:, None, None]


def _matvec_batch(
    row_stack: np.ndarray,
    col_stack: np.ndarray,
    centers: np.ndarray,
    dictionary: Dictionary,
    coefficients: np.ndarray,
) -> np.ndarray:
    """``A_t z_t`` for every tile ``t``: ``(T, n) -> (T, m)``."""
    n_tiles = coefficients.shape[0]
    rows, cols = dictionary.shape
    images = dictionary.synthesize_batch(coefficients).reshape(n_tiles, rows, cols)
    return _phi_dot_batch(row_stack, col_stack, centers, images)


def _rmatvec_batch(
    row_stack: np.ndarray,
    col_stack: np.ndarray,
    centers: np.ndarray,
    dictionary: Dictionary,
    measurements: np.ndarray,
) -> np.ndarray:
    """``A_t* y_t`` for every tile ``t``: ``(T, m) -> (T, n)``."""
    n_tiles = measurements.shape[0]
    back = _phi_rdot_batch(row_stack, col_stack, centers, measurements)
    return dictionary.analyze_batch(back.reshape(n_tiles, -1))


def _soft_threshold_batch(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    return np.sign(values) * np.maximum(np.abs(values) - thresholds, 0.0)


def steps_from_norms(sigmas: np.ndarray) -> np.ndarray:
    """Per-tile gradient steps ``1/σ²`` (unit step for degenerate σ = 0)."""
    sigmas = np.asarray(sigmas, dtype=float)
    steps = np.ones_like(sigmas)
    positive = sigmas > 0.0
    steps[positive] = 1.0 / sigmas[positive] ** 2
    return steps


def batched_operator_norms(
    operators: Sequence[StructuredSensingOperator],
    *,
    n_iterations: int | None = None,
    seed: int = 0,
    tolerance: float | None = None,
    warm_starts: Sequence[np.ndarray | None] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Largest singular value of every stacked operator, in one power iteration.

    The vectorised twin of
    :meth:`~repro.cs.operators.BaseSensingOperator.operator_norm`: same start
    vector (per tile), same normalisation recurrence, same relative-change
    early exit — applied to all tiles at once, with converged tiles frozen.

    Returns ``(sigmas, vectors)``; the converged vectors can be fed back as
    ``warm_starts`` for the next frame of a GOP chain (or stored in a
    :class:`~repro.cs.operators.StepSizeCache`).  ``n_iterations`` and
    ``tolerance`` default to the solo path's shared class knobs
    (:attr:`~repro.cs.operators.BaseSensingOperator.NORM_ITERATIONS` /
    ``NORM_TOLERANCE``), so tuning those keeps batched and per-tile step
    sizes configured identically.
    """
    if n_iterations is None:
        n_iterations = BaseSensingOperator.NORM_ITERATIONS
    if tolerance is None:
        tolerance = BaseSensingOperator.NORM_TOLERANCE
    row_stack, col_stack, centers, dictionary = _stack_factors(operators)
    n_tiles = row_stack.shape[0]
    n_coefficients = dictionary.n_pixels
    base = np.random.default_rng(seed).standard_normal(n_coefficients)
    vectors = np.tile(base, (n_tiles, 1))
    if warm_starts is not None:
        for index, warm in enumerate(warm_starts):
            if warm is not None:
                vectors[index] = np.asarray(warm, dtype=float).reshape(-1)
    norms = np.linalg.norm(vectors, axis=1)
    if (norms == 0.0).any():
        raise ValueError("warm-start vectors must be non-zero")
    vectors = vectors / norms[:, None]
    rows, cols = dictionary.shape
    if getattr(dictionary, "orthonormal", False):
        # σ(Φ Ψ) = σ(Φ) for orthonormal Ψ — iterate on the factors alone,
        # mirroring the solo operator_norm shortcut bit for bit in structure.
        def step_products(stack: np.ndarray) -> np.ndarray:
            images = stack.reshape(-1, rows, cols)
            projected = _phi_dot_batch(row_stack, col_stack, centers, images)
            back = _phi_rdot_batch(row_stack, col_stack, centers, projected)
            return back.reshape(stack.shape)
    else:
        def step_products(stack: np.ndarray) -> np.ndarray:
            return _rmatvec_batch(
                row_stack, col_stack, centers, dictionary,
                _matvec_batch(row_stack, col_stack, centers, dictionary, stack),
            )
    sigmas = np.zeros(n_tiles)
    active = np.ones(n_tiles, dtype=bool)
    for _ in range(max(1, int(n_iterations))):
        if not active.any():
            break
        products = step_products(vectors)
        norms = np.linalg.norm(products, axis=1)
        dead = active & (norms == 0.0)
        sigmas[dead] = 0.0
        active &= ~dead
        safe = np.where(norms > 0.0, norms, 1.0)
        previous = sigmas.copy()
        updated = products / safe[:, None]
        vectors[active] = updated[active]
        new_sigmas = np.sqrt(norms)
        sigmas[active] = new_sigmas[active]
        if tolerance > 0.0:
            settled = active & (
                np.abs(sigmas - previous) <= tolerance * np.maximum(sigmas, 1e-300)
            )
            active &= ~settled
    return sigmas, vectors


def batched_proximal_gradient(
    operators: Sequence[StructuredSensingOperator],
    measurements: np.ndarray,
    *,
    regularization: float | np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    step_sizes: np.ndarray | None = None,
    accelerated: bool = True,
    profile: SolverProfile | None = None,
) -> list[SolverResult]:
    """Run FISTA (or ISTA) on every tile of a homogeneous operator stack.

    Parameters
    ----------
    operators:
        Equal-shape :class:`StructuredSensingOperator` instances, one per tile.
    measurements:
        Measurement stack, shape ``(T, m)`` (already centred by the caller).
    regularization:
        The l1 weight λ — a scalar shared by every tile or one value per tile.
    max_iterations, tolerance:
        Per-tile iteration budget and relative-change stopping criterion,
        exactly as in the per-tile solvers.
    step_sizes:
        Per-tile gradient steps; estimated via :func:`batched_operator_norms`
        when omitted.
    accelerated:
        ``True`` for FISTA (Nesterov momentum), ``False`` for plain ISTA.
    profile:
        Opt-in :class:`~repro.telemetry.SolverProfile`: per iteration it
        records the LASSO objective and residual norm summed over all
        tiles, plus how many tiles entered the iteration already frozen
        (converged).  The recorded step size is the mean per-tile step;
        provenance is ``"provided"``/``"estimated"`` for the whole stack.
        Read-only — the solve itself is unchanged.

    Returns
    -------
    list of SolverResult
        One result per tile, with per-tile iteration counts, convergence
        flags and residual histories.
    """
    row_stack, col_stack, centers, dictionary = _stack_factors(operators)
    n_tiles = row_stack.shape[0]
    measurements = np.asarray(measurements, dtype=float)
    if measurements.shape != (n_tiles, row_stack.shape[1]):
        raise ValueError(
            f"measurements must have shape ({n_tiles}, {row_stack.shape[1]}), "
            f"got {measurements.shape}"
        )
    check_positive("max_iterations", max_iterations)
    check_positive("tolerance", tolerance)
    regularization = np.broadcast_to(
        np.asarray(regularization, dtype=float), (n_tiles,)
    ).copy()
    if (regularization < 0).any():
        raise ValueError("regularization must be non-negative")
    step_provenance = "provided"
    if step_sizes is None:
        sigmas, _ = batched_operator_norms(operators)
        step_sizes = steps_from_norms(sigmas)
        step_provenance = "estimated"
    else:
        step_sizes = np.broadcast_to(
            np.asarray(step_sizes, dtype=float), (n_tiles,)
        ).copy()
        if (step_sizes <= 0).any():
            raise ValueError("step_sizes must be positive")
    if profile is not None:
        profile.record_step_size(float(step_sizes.mean()), provenance=step_provenance)
        profile.n_tiles = n_tiles

    n_coefficients = dictionary.n_pixels
    coefficients = np.zeros((n_tiles, n_coefficients))
    momentum_point = coefficients.copy()
    momentum = 1.0
    # A is linear, so A @ momentum_point is a linear combination of the
    # already-computed A @ candidate and A @ coefficients — tracking the two
    # measurement-domain images saves one full matvec per iteration compared
    # to the per-tile reference loop (which recomputes the residual from
    # scratch), while the residual norms stay exact.
    measured_point = np.zeros_like(measurements)
    measured_coefficients = np.zeros_like(measurements)
    active = np.ones(n_tiles, dtype=bool)
    converged = np.zeros(n_tiles, dtype=bool)
    iterations = np.zeros(n_tiles, dtype=int)
    histories: list[list[float]] = [[] for _ in range(n_tiles)]
    for iteration in range(1, int(max_iterations) + 1):
        if not active.any():
            break
        gradient = _rmatvec_batch(
            row_stack, col_stack, centers, dictionary,
            measured_point - measurements,
        )
        candidate = _soft_threshold_batch(
            momentum_point - step_sizes[:, None] * gradient,
            (step_sizes * regularization)[:, None],
        )
        measured_candidate = _matvec_batch(
            row_stack, col_stack, centers, dictionary, candidate
        )
        if accelerated:
            next_momentum = (1.0 + np.sqrt(1.0 + 4.0 * momentum ** 2)) / 2.0
            weight = (momentum - 1.0) / next_momentum
            next_point = candidate + weight * (candidate - coefficients)
            next_measured = measured_candidate + weight * (
                measured_candidate - measured_coefficients
            )
            momentum = next_momentum
        else:
            next_point = candidate
            next_measured = measured_candidate
        change = np.linalg.norm(candidate - coefficients, axis=1)
        scale = np.maximum(np.linalg.norm(coefficients, axis=1), 1e-12)
        coefficients[active] = candidate[active]
        momentum_point[active] = next_point[active]
        measured_point[active] = next_measured[active]
        measured_coefficients[active] = measured_candidate[active]
        iterations[active] = iteration
        residual_norms = np.linalg.norm(
            measurements - measured_coefficients, axis=1
        )
        for index in np.flatnonzero(active):
            histories[index].append(float(residual_norms[index]))
        if profile is not None:
            # Aggregate objective over the whole stack; `active` still holds
            # the set that entered this iteration, so the frozen count is the
            # tiles that were already settled when the iteration started.
            objective = 0.5 * float((residual_norms ** 2).sum()) + float(
                (regularization * np.abs(coefficients).sum(axis=1)).sum()
            )
            profile.record_iteration(
                objective,
                float(np.linalg.norm(residual_norms)),
                frozen=n_tiles - int(active.sum()),
            )
        settled = active & (change / scale <= tolerance)
        converged |= settled
        active &= ~settled
    if profile is not None:
        profile.finish(converged=bool(converged.all()))
    return [
        SolverResult(
            coefficients=coefficients[index],
            n_iterations=int(iterations[index]),
            converged=bool(converged[index]),
            residual_norm=histories[index][-1] if histories[index] else 0.0,
            history=histories[index],
        )
        for index in range(n_tiles)
    ]
