"""Tests for the incremental tiled reconstructor."""

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.recon.incremental import IncrementalTiledReconstructor
from repro.recon.pipeline import reconstruct_tiled
from repro.sensor.shard import TiledSensorArray


@pytest.fixture(scope="module")
def capture():
    array = TiledSensorArray(
        (32, 48), tile_shape=(16, 16), compression_ratio=0.2, executor="serial", seed=6
    )
    return array.capture_scene(make_scene("blobs", (32, 48), seed=3))


RECON_KWARGS = dict(solver="fista", max_iterations=25)


class TestIncrementalTiledReconstructor:
    def test_matches_reconstruct_tiled_byte_for_byte(self, capture):
        """Eager add_tile ≡ the per-tile executor of reconstruct_tiled."""
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        for slot, frame in capture.frames():
            reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)
        incremental = reconstructor.result()
        direct = reconstruct_tiled(capture, executor="serial", **RECON_KWARGS)
        assert incremental.image.tobytes() == direct.image.tobytes()
        assert incremental.capture_metadata["event_statistics"] == (
            direct.capture_metadata["event_statistics"]
        )

    def test_staged_matches_reconstruct_tiled_byte_for_byte(self, capture):
        """stage_tile + solve_staged ≡ the default batched reconstruct_tiled."""
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        for slot, frame in capture.frames():
            reconstructor.stage_tile(slot.grid_row, slot.grid_col, frame)
        results = reconstructor.solve_staged()
        assert len(results) == reconstructor.n_tiles
        assert reconstructor.is_complete
        staged = reconstructor.result()
        direct = reconstruct_tiled(capture, **RECON_KWARGS)
        assert staged.image.tobytes() == direct.image.tobytes()

    def test_staged_duplicate_rejected(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        slot, frame = next(iter(capture.frames()))
        reconstructor.stage_tile(slot.grid_row, slot.grid_col, frame)
        with pytest.raises(ValueError, match="already"):
            reconstructor.stage_tile(slot.grid_row, slot.grid_col, frame)
        with pytest.raises(ValueError, match="already"):
            reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)

    def test_tile_order_does_not_matter(self, capture):
        pairs = list(capture.frames())
        forward = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        backward = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        for slot, frame in pairs:
            forward.add_tile(slot.grid_row, slot.grid_col, frame)
        for slot, frame in reversed(pairs):
            backward.add_tile(slot.grid_row, slot.grid_col, frame)
        assert forward.result().image.tobytes() == backward.result().image.tobytes()

    def test_progress_tracking_and_partial_image(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        pairs = list(capture.frames())
        assert reconstructor.n_tiles == len(pairs)
        assert not reconstructor.is_complete
        slot, frame = pairs[0]
        reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)
        assert reconstructor.n_completed == 1
        partial = reconstructor.partial_image()
        assert partial[slot.row_slice, slot.col_slice].any()
        untouched = np.ones(capture.scene_shape, dtype=bool)
        untouched[slot.row_slice, slot.col_slice] = False
        assert not partial[untouched].any()

    def test_incomplete_result_raises(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        with pytest.raises(ValueError, match="incomplete"):
            reconstructor.result()

    def test_duplicate_tile_rejected(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        slot, frame = next(iter(capture.frames()))
        reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)
        with pytest.raises(ValueError, match="already"):
            reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)

    def test_geometry_mismatch_rejected(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        pairs = list(capture.frames())
        _, frame = pairs[0]
        # Scene 48 cols / tile 16 => all tiles 16x16; shrink the grid instead:
        # a 16x16 frame into a reconstructor expecting a 8-col edge tile.
        other = IncrementalTiledReconstructor((16, 24), (16, 16), **RECON_KWARGS)
        with pytest.raises(ValueError, match="slot expects"):
            other.add_tile(0, 1, frame)

    def test_out_of_grid_position_rejected(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        _, frame = next(iter(capture.frames()))
        with pytest.raises(ValueError, match="outside"):
            reconstructor.add_tile(9, 9, frame)

    def test_metrics_against_explicit_reference(self, capture):
        reconstructor = IncrementalTiledReconstructor(
            capture.scene_shape, capture.tile_shape, **RECON_KWARGS
        )
        for slot, frame in capture.frames():
            reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)
        result = reconstructor.result(reference=capture.digital_image())
        assert "psnr_db" in result.metrics
        direct = reconstruct_tiled(capture, **RECON_KWARGS)
        assert result.metrics["psnr_db"] == pytest.approx(direct.metrics["psnr_db"])
