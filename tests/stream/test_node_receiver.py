"""Tests for the camera node, the bit-rate governor and the stream receiver."""

import asyncio

import numpy as np
import pytest

from repro.io.framing import frame_overhead_bits
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.node import (
    CHUNK_OVERHEAD_BITS,
    BitrateGovernor,
    CameraNode,
    ChannelBudgetError,
)
from repro.stream.protocol import (
    Chunk,
    ChunkType,
    StreamProtocolError,
    encode_chunk,
    encode_stream_end,
)
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport


CONFIG = SensorConfig(rows=16, cols=16)


def run(coro):
    return asyncio.run(coro)


async def _stream_and_receive(send_coro_factory, receiver=None, max_buffered=4):
    transport = LoopbackTransport(max_buffered=max_buffered)
    receiver = receiver or StreamReceiver(reconstruct=False)
    send_task = asyncio.create_task(send_coro_factory(transport))
    result = await receiver.run(transport)
    stats = await send_task
    return result, stats


class TestBitrateGovernor:
    def test_ungoverned_passes_the_configured_budget(self):
        governor = BitrateGovernor()
        assert governor.samples_for_frame(CONFIG) == CONFIG.samples_per_frame
        assert governor.ratio_for_frame(CONFIG, CONFIG.n_pixels) is None

    def test_budget_fits_samples_after_overhead(self):
        budget = 2000  # tight enough that the governor actually degrades
        governor = BitrateGovernor(bits_per_frame=budget)
        n_samples = governor.samples_for_frame(CONFIG)
        overhead = CHUNK_OVERHEAD_BITS + frame_overhead_bits(CONFIG, version=2)
        assert overhead + n_samples * CONFIG.compressed_sample_bits <= budget
        assert (
            overhead + (n_samples + 1) * CONFIG.compressed_sample_bits > budget
        )

    def test_seedless_frames_fit_more_samples(self):
        governor = BitrateGovernor(bits_per_frame=2000)
        with_seed = governor.samples_for_frame(CONFIG, include_seed=True)
        seedless = governor.samples_for_frame(CONFIG, include_seed=False)
        assert seedless >= with_seed

    def test_impossible_budget_raises(self):
        with pytest.raises(ChannelBudgetError):
            BitrateGovernor(bits_per_frame=100).samples_for_frame(CONFIG)

    def test_tiled_ratio_respects_budget(self):
        governor = BitrateGovernor(bits_per_frame=30000)
        ratio = governor.ratio_for_frame(CONFIG, 64 * 64, n_tiles=16)
        assert 0.0 < ratio < 1.0
        total_sample_bits = ratio * 64 * 64 * CONFIG.compressed_sample_bits
        overhead = 16 * (CHUNK_OVERHEAD_BITS + frame_overhead_bits(CONFIG, version=2))
        assert total_sample_bits + overhead <= 30000 + CONFIG.compressed_sample_bits

    def test_tiled_impossible_budget_raises(self):
        with pytest.raises(ChannelBudgetError):
            BitrateGovernor(bits_per_frame=500).ratio_for_frame(
                CONFIG, 64 * 64, n_tiles=16
            )


class TestSingleSensorStream:
    def test_frames_survive_the_wire(self):
        imager = CompressiveImager(CONFIG, seed=3)
        reference = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=i) for i in range(3)]

        async def scenario(transport):
            return await CameraNode(transport).stream_frames(imager, scenes)

        result, stats = run(_stream_and_receive(scenario))
        assert result.n_frames == 3
        assert result.announced_frames == 3
        assert result.header.kind == "frame"
        for index, received in enumerate(result.frames):
            expected = reference.capture_scene(
                scenes[index], n_samples=CONFIG.samples_per_frame
            )
            assert np.array_equal(received.capture.samples, expected.samples)
            assert np.array_equal(received.capture.seed_state, expected.seed_state)
        assert stats.n_bytes == result.n_bytes

    def test_governed_stream_degrades_sample_count(self):
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]
        budget = 1800

        async def scenario(transport):
            node = CameraNode(
                transport, governor=BitrateGovernor(bits_per_frame=budget)
            )
            return await node.stream_frames(imager, scenes)

        result, stats = run(_stream_and_receive(scenario))
        assert stats.samples_per_frame[0] < CONFIG.samples_per_frame
        assert result.frames[0].capture.n_samples == stats.samples_per_frame[0]
        # The governed frame actually fits the budget on the wire.
        assert stats.bytes_per_frame[0] * 8 <= budget

    def test_reconstruction_happens_when_enabled(self):
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]

        async def scenario(transport):
            return await CameraNode(transport).stream_frames(imager, scenes)

        receiver = StreamReceiver(max_iterations=20)
        result, _ = run(_stream_and_receive(scenario, receiver=receiver))
        reconstruction = result.frames[0].reconstruction
        assert reconstruction is not None
        assert reconstruction.image.shape == (16, 16)


class TestVideoGop:
    @staticmethod
    def _sequencer(seed=7):
        return VideoSequencer(
            CompressiveImager(CONFIG, seed=seed), samples_per_frame=50, seed=seed
        )

    def test_gop_stream_matches_direct_capture(self):
        scenes = [make_scene("blobs", (16, 16), seed=i) for i in range(7)]

        async def scenario(transport):
            node = CameraNode(transport, gop_size=3)
            return await node.stream_video(self._sequencer(), scenes)

        result, _ = run(_stream_and_receive(scenario))
        direct = self._sequencer().capture_sequence(scenes).frames
        assert result.n_frames == 7
        for received, expected in zip(result.frames, direct):
            assert np.array_equal(received.capture.samples, expected.samples)
            assert np.array_equal(received.capture.seed_state, expected.seed_state)

    def test_seed_bytes_ride_only_on_keyframes(self):
        scenes = [make_scene("blobs", (16, 16), seed=i) for i in range(4)]

        async def scenario(transport):
            node = CameraNode(transport, gop_size=4)
            return await node.stream_video(self._sequencer(), scenes)

        async def collect(transport):
            sizes = []
            while True:
                data = await transport.recv()
                if data is None:
                    break
                sizes.append(len(data))
            return sizes

        async def run_both():
            transport = LoopbackTransport(max_buffered=16)
            node_task = asyncio.create_task(scenario(transport))
            sizes = await collect(transport)
            await node_task
            return sizes

        sizes = run(run_both())
        # chunk 0 = header, 1 = keyframe, 2..4 = seedless frames, 5 = end.
        keyframe_size, delta_sizes = sizes[1], sizes[2:5]
        assert all(size < keyframe_size for size in delta_sizes)
        assert all(size == delta_sizes[0] for size in delta_sizes)

    def test_event_statistics_survive_the_wire(self):
        scenes = [make_scene("blobs", (16, 16), seed=i) for i in range(2)]

        async def scenario(transport):
            node = CameraNode(transport, gop_size=2)
            return await node.stream_video(
                self._sequencer(), scenes, fidelity="event"
            )

        result, _ = run(_stream_and_receive(scenario))
        direct = self._sequencer().capture_sequence(scenes, fidelity="event").frames
        for received, expected in zip(result.frames, direct):
            for key in (
                "n_lost_events",
                "n_queued_events",
                "n_lsb_errors",
                "max_queue_delay",
                "n_saturated_pixels",
                "event_statistics",
                "fidelity",
            ):
                assert received.capture.metadata[key] == expected.metadata[key]


class TestReceiverProtocolErrors:
    @staticmethod
    def _run_receiver(wire_chunks):
        async def scenario():
            transport = LoopbackTransport(max_buffered=len(wire_chunks) + 1)
            for chunk in wire_chunks:
                await transport.send(encode_chunk(chunk))
            await transport.close()
            return await StreamReceiver(reconstruct=False).run(transport)

        return run(scenario())

    def test_frame_before_stream_start(self):
        chunk = Chunk(
            chunk_type=ChunkType.FRAME_DATA, stream_id=1, sequence=0, payload=b"x" * 8
        )
        with pytest.raises(StreamProtocolError, match="stream start"):
            self._run_receiver([chunk])

    def test_sequence_gap_detected(self):
        chunk = Chunk(
            chunk_type=ChunkType.STREAM_END,
            stream_id=1,
            sequence=5,
            payload=encode_stream_end(0),
        )
        with pytest.raises(StreamProtocolError, match="sequence"):
            self._run_receiver([chunk])

    def test_eof_before_stream_end(self):
        with pytest.raises(StreamProtocolError, match="stream-end"):
            self._run_receiver([])

    def test_truncated_stream_mid_frame(self):
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]

        async def scenario():
            transport = LoopbackTransport(max_buffered=16)
            await CameraNode(transport).stream_frames(imager, scenes)
            # Re-deliver all but the final (stream-end) chunk.
            data = bytearray()
            while True:
                item = await transport.recv()
                if item is None:
                    break
                data.extend(item)
            replay = LoopbackTransport(max_buffered=4)
            await replay.send(bytes(data[: len(data) // 2]))
            await replay.close()
            return await StreamReceiver(reconstruct=False).run(replay)

        with pytest.raises(StreamProtocolError):
            run(scenario())


class TestTiledSingleFrame:
    """One mosaic frame streamed tile-by-tile through iter_capture."""

    @staticmethod
    def _current(array, seed=0):
        from repro.optics.photo import PhotoConversion
        from repro.utils.rng import derive_seed

        scene = make_scene("blobs", array.scene_shape, seed=seed)
        conversion = PhotoConversion(seed=derive_seed(array.seed, "tiled-photo"))
        return conversion.convert(scene)

    def test_tiles_and_statistics_survive_the_wire(self):
        from repro.sensor.shard import TiledSensorArray

        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), compression_ratio=0.15,
            executor="serial", seed=5,
        )
        current = self._current(array)

        async def scenario(transport):
            return await CameraNode(transport).stream_tiled(array, current)

        result, stats = run(_stream_and_receive(scenario))
        direct = array.capture(current)
        received = result.frames[0].capture
        assert np.array_equal(received.samples, direct.samples)
        assert received.metadata["event_statistics"] == (
            direct.metadata["event_statistics"]
        )
        assert stats.n_frames == 1
        assert stats.samples_per_frame == [direct.n_samples]
        assert stats.bytes_per_frame[0] < stats.n_bytes

    def test_governed_tiled_frame_fits_budget(self):
        from repro.sensor.shard import TiledSensorArray

        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), compression_ratio=0.3,
            executor="serial", seed=5,
        )
        current = self._current(array)
        budget = 6000  # tight enough to force degradation below R = 0.3

        async def scenario(transport):
            node = CameraNode(
                transport, governor=BitrateGovernor(bits_per_frame=budget)
            )
            return await node.stream_tiled(array, current)

        result, stats = run(_stream_and_receive(scenario))
        ungoverned = array.capture(current)
        assert result.frames[0].capture.n_samples < ungoverned.n_samples
        assert stats.bytes_per_frame[0] * 8 <= budget

    def test_photocurrent_mode_of_tiled_video(self):
        from repro.sensor.shard import TiledSensorArray

        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), compression_ratio=0.15,
            executor="serial", seed=5,
        )
        currents = [self._current(array, seed=i) for i in range(2)]

        async def scenario(transport):
            node = CameraNode(transport, gop_size=2)
            return await node.stream_tiled_video(
                array, currents, photocurrents=True
            )

        result, _ = run(_stream_and_receive(scenario))
        # Fresh array: the streaming node advanced the original's tile CAs.
        fresh = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), compression_ratio=0.15,
            executor="serial", seed=5,
        )
        direct = fresh.capture_sequence(currents)
        for received, expected in zip(result.frames, direct):
            assert np.array_equal(received.capture.samples, expected.samples)


class TestReceiverBarrierErrors:
    """Malformed mosaic streams fail loudly, never silently."""

    @staticmethod
    def _tiled_wire_chunks():
        """Capture one 2x2 mosaic and return its wire chunks as bytes."""
        from repro.sensor.shard import TiledSensorArray

        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), compression_ratio=0.15,
            executor="serial", seed=5,
        )
        current = TestTiledSingleFrame._current(array)

        async def scenario():
            transport = LoopbackTransport(max_buffered=32)
            await CameraNode(transport).stream_tiled(array, current)
            items = []
            while True:
                item = await transport.recv()
                if item is None:
                    break
                items.append(item)
            return items

        return run(scenario())

    @staticmethod
    def _replay(items):
        async def scenario():
            transport = LoopbackTransport(max_buffered=len(items) + 1)
            for item in items:
                await transport.send(item)
            await transport.close()
            return await StreamReceiver(reconstruct=False).run(transport)

        return run(scenario())

    def test_intact_replay_decodes(self):
        items = self._tiled_wire_chunks()
        result = self._replay(items)
        assert result.n_frames == 1

    def test_missing_tile_at_barrier_is_detected(self):
        items = self._tiled_wire_chunks()
        # Drop one tile chunk (index 2: header, tile0, tile1, ...) and renumber
        # the remaining sequence so only the missing tile is the violation.
        from repro.stream.protocol import ChunkDecoder

        chunks = ChunkDecoder().feed(b"".join(items))
        chunks = [c for i, c in enumerate(chunks) if i != 2]
        renumbered = [
            encode_chunk(Chunk(c.chunk_type, c.stream_id, seq, c.payload))
            for seq, c in enumerate(chunks)
        ]
        with pytest.raises(StreamProtocolError, match="missing"):
            self._replay(renumbered)

    def test_duplicate_tile_is_detected(self):
        items = self._tiled_wire_chunks()
        from repro.stream.protocol import ChunkDecoder

        chunks = ChunkDecoder().feed(b"".join(items))
        chunks.insert(2, chunks[1])  # replay tile (0, 0)
        renumbered = [
            encode_chunk(Chunk(c.chunk_type, c.stream_id, seq, c.payload))
            for seq, c in enumerate(chunks)
        ]
        with pytest.raises(StreamProtocolError, match="duplicate"):
            self._replay(renumbered)

    def test_duplicate_stream_start_is_detected(self):
        items = self._tiled_wire_chunks()
        from repro.stream.protocol import ChunkDecoder

        chunks = ChunkDecoder().feed(b"".join(items))
        chunks.insert(1, chunks[0])
        renumbered = [
            encode_chunk(Chunk(c.chunk_type, c.stream_id, seq, c.payload))
            for seq, c in enumerate(chunks)
        ]
        with pytest.raises(StreamProtocolError, match="duplicate stream-start"):
            self._replay(renumbered)


class TestReceiveStreamHelper:
    def test_one_shot_convenience(self):
        from repro.stream.receiver import receive_stream

        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]

        async def scenario():
            transport = LoopbackTransport(max_buffered=8)
            send_task = asyncio.create_task(
                CameraNode(transport).stream_frames(imager, scenes)
            )
            result = await receive_stream(transport, reconstruct=False)
            await send_task
            return result

        assert run(scenario()).n_frames == 1


class TestReceiverReuse:
    def test_second_run_decodes_a_fresh_stream(self):
        imager = CompressiveImager(CONFIG, seed=3)
        receiver = StreamReceiver(reconstruct=False)

        async def one_stream(seed):
            transport = LoopbackTransport(max_buffered=8)
            send_task = asyncio.create_task(
                CameraNode(transport).stream_frames(
                    imager, [make_scene("blobs", (16, 16), seed=seed)]
                )
            )
            result = await receiver.run(transport)
            await send_task
            return result

        first = run(one_stream(0))
        second = run(one_stream(1))
        assert first.n_frames == second.n_frames == 1
        assert first is not second
        # The second run decoded the *new* stream, not the cached old one.
        assert not np.array_equal(
            first.frames[0].capture.samples, second.frames[0].capture.samples
        )


class TestNodeReuse:
    def test_node_streams_twice_with_fresh_sequences(self):
        imager = CompressiveImager(CONFIG, seed=3)

        async def scenario():
            node = CameraNode(LoopbackTransport(max_buffered=8))
            results = []
            for seed in (0, 1):
                transport = LoopbackTransport(max_buffered=8)
                node.transport = transport
                send_task = asyncio.create_task(
                    node.stream_frames(
                        imager, [make_scene("blobs", (16, 16), seed=seed)]
                    )
                )
                results.append(
                    await StreamReceiver(reconstruct=False).run(transport)
                )
                await send_task
            return results

        first, second = run(scenario())
        assert first.n_frames == second.n_frames == 1


class TestTileGeometryValidation:
    def test_pure_decoder_rejects_tile_slot_mismatch(self):
        from repro.stream.protocol import (
            ChunkDecoder,
            StreamHeader,
            encode_stream_header,
        )

        items = TestReceiverBarrierErrors._tiled_wire_chunks()
        chunks = ChunkDecoder().feed(b"".join(items))
        # Announce 8x8 tiles for the same 32x32 scene: the 16x16 tile frames
        # no longer match their slots, which even a pure decoder must catch.
        lying_header = StreamHeader(
            kind="tiled", scene_shape=(32, 32), tile_shape=(8, 8), gop_size=1
        )
        chunks[0] = Chunk(
            chunks[0].chunk_type,
            chunks[0].stream_id,
            chunks[0].sequence,
            encode_stream_header(lying_header),
        )
        rewired = [encode_chunk(chunk) for chunk in chunks]
        with pytest.raises(StreamProtocolError, match="slot expects"):
            TestReceiverBarrierErrors._replay(rewired)


class TestNodeFailureClosesChannel:
    def test_receiver_unblocks_when_the_node_dies_mid_stream(self):
        imager = CompressiveImager(CONFIG, seed=3)
        scenes = [make_scene("blobs", (16, 16), seed=0)]

        async def scenario():
            transport = LoopbackTransport(max_buffered=4)
            node = CameraNode(
                transport, governor=BitrateGovernor(bits_per_frame=100)
            )
            send_task = asyncio.create_task(node.stream_frames(imager, scenes))
            # The governor rejects the budget after STREAM_START: the node
            # must close the channel so the receiver errors out instead of
            # blocking forever on a stream that will never finish.
            with pytest.raises(StreamProtocolError, match="closed before"):
                await asyncio.wait_for(
                    StreamReceiver(reconstruct=False).run(transport), timeout=5.0
                )
            with pytest.raises(ChannelBudgetError):
                await send_task

        run(scenario())


class TestChunksAfterStreamEnd:
    def test_coalesced_post_end_chunk_is_rejected(self):
        from repro.stream.protocol import ChunkDecoder

        items = TestReceiverBarrierErrors._tiled_wire_chunks()
        chunks = ChunkDecoder().feed(b"".join(items))
        # Replay a FRAME_DATA chunk *after* the stream end, renumbered so the
        # sequence is consecutive — only its position is the violation.
        chunks.append(chunks[1])
        renumbered = [
            encode_chunk(Chunk(c.chunk_type, c.stream_id, seq, c.payload))
            for seq, c in enumerate(chunks)
        ]
        # Coalesce everything into one byte slice, as TCP might.
        async def scenario():
            transport = LoopbackTransport(max_buffered=2)
            await transport.send(b"".join(renumbered))
            await transport.close()
            return await StreamReceiver(reconstruct=False).run(transport)

        with pytest.raises(StreamProtocolError, match="after the stream end"):
            run(scenario())
