"""Tests for the sparsifying dictionaries."""

import numpy as np
import pytest

from repro.cs.dictionaries import (
    DCT2Dictionary,
    Haar2Dictionary,
    IdentityDictionary,
    make_dictionary,
)


ALL_DICTS = [
    IdentityDictionary((16, 16)),
    DCT2Dictionary((16, 16)),
    Haar2Dictionary((16, 16)),
]


class TestFactory:
    def test_factory_names(self):
        assert isinstance(make_dictionary("dct", (8, 8)), DCT2Dictionary)
        assert isinstance(make_dictionary("haar", (8, 8)), Haar2Dictionary)
        assert isinstance(make_dictionary("identity", (8, 8)), IdentityDictionary)

    def test_factory_is_case_insensitive(self):
        assert isinstance(make_dictionary("DCT", (8, 8)), DCT2Dictionary)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_dictionary("curvelet", (8, 8))

    def test_haar_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Haar2Dictionary((12, 12))


class TestOrthonormality:
    @pytest.mark.parametrize("dictionary", ALL_DICTS, ids=lambda d: type(d).__name__)
    def test_analyze_synthesize_round_trip(self, dictionary):
        rng = np.random.default_rng(0)
        image = rng.standard_normal(dictionary.n_pixels)
        recovered = dictionary.synthesize(dictionary.analyze(image))
        assert np.allclose(recovered, image, atol=1e-10)

    @pytest.mark.parametrize("dictionary", ALL_DICTS, ids=lambda d: type(d).__name__)
    def test_energy_preserved(self, dictionary):
        rng = np.random.default_rng(1)
        image = rng.standard_normal(dictionary.n_pixels)
        coefficients = dictionary.analyze(image)
        assert np.linalg.norm(coefficients) == pytest.approx(np.linalg.norm(image))

    @pytest.mark.parametrize("dictionary", ALL_DICTS, ids=lambda d: type(d).__name__)
    def test_atoms_are_unit_norm(self, dictionary):
        for index in (0, 7, dictionary.n_pixels - 1):
            assert np.linalg.norm(dictionary.atom(index)) == pytest.approx(1.0)

    def test_dense_matrix_is_orthogonal(self):
        dictionary = DCT2Dictionary((8, 8))
        psi = dictionary.dense()
        assert np.allclose(psi.T @ psi, np.eye(64), atol=1e-10)

    def test_haar_dense_matrix_is_orthogonal(self):
        dictionary = Haar2Dictionary((8, 8))
        psi = dictionary.dense()
        assert np.allclose(psi.T @ psi, np.eye(64), atol=1e-10)


class TestSparsification:
    def test_dct_dc_atom_is_constant(self):
        dictionary = DCT2Dictionary((8, 8))
        atom = dictionary.atom(0).reshape(8, 8)
        assert np.allclose(atom, atom[0, 0])

    def test_smooth_image_is_compressible_in_dct(self):
        from repro.optics.scenes import make_scene

        dictionary = DCT2Dictionary((32, 32))
        scene = make_scene("blobs", (32, 32), seed=1)
        profile = dictionary.sparsity_profile(scene)
        assert profile[0.05] > 0.95  # 5 % of coefficients hold >95 % of the energy

    def test_piecewise_constant_image_is_compressible_in_haar(self):
        from repro.optics.scenes import make_scene

        dictionary = Haar2Dictionary((32, 32))
        scene = make_scene("text", (32, 32), seed=1)
        profile = dictionary.sparsity_profile(scene)
        assert profile[0.2] > 0.95

    def test_white_noise_is_not_compressible(self):
        rng = np.random.default_rng(2)
        dictionary = DCT2Dictionary((32, 32))
        noise = rng.standard_normal((32, 32))
        profile = dictionary.sparsity_profile(noise)
        assert profile[0.05] < 0.3

    def test_identity_dictionary_keeps_pixel_sparsity(self):
        dictionary = IdentityDictionary((16, 16))
        image = np.zeros(256)
        image[[3, 77, 200]] = 1.0
        assert np.count_nonzero(dictionary.analyze(image)) == 3


class TestShapes:
    def test_wrong_vector_length_rejected(self):
        dictionary = DCT2Dictionary((8, 8))
        with pytest.raises(ValueError):
            dictionary.analyze(np.zeros(63))

    def test_atom_index_out_of_range(self):
        with pytest.raises(ValueError):
            DCT2Dictionary((8, 8)).atom(64)

    def test_to_image_reshapes(self):
        dictionary = DCT2Dictionary((4, 8))
        assert dictionary.to_image(np.zeros(32)).shape == (4, 8)

    def test_non_square_dct_round_trip(self):
        dictionary = DCT2Dictionary((4, 8))
        rng = np.random.default_rng(3)
        image = rng.standard_normal(32)
        assert np.allclose(dictionary.synthesize(dictionary.analyze(image)), image)
