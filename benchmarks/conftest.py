"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one artefact of the paper (a table, a
figure, an equation or a system-level claim), asserts the *shape* expectations
recorded in DESIGN.md, and times the underlying kernel with pytest-benchmark.
Run them with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated tables printed to stdout.
"""

from collections.abc import Iterable, Mapping

import pytest


def print_table(title: str, rows: Iterable[Mapping], columns=None) -> None:
    """Print a list of dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        print(f"\n{title}\n  (no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), max(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    print(f"\n{title}")
    print("  " + "  ".join(str(column).rjust(widths[column]) for column in columns))
    for row in rows:
        print("  " + "  ".join(_fmt(row.get(column)).rjust(widths[column]) for column in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@pytest.fixture(scope="session")
def benchmark_seed() -> int:
    """One seed for the whole benchmark session, for exact reproducibility."""
    return 2018
