"""Seeded equivalence regression tests for the batched event-accurate engine.

The event-accurate capture path used to run every selection pattern, column
and pixel through Python objects (``PixelEvent`` lists, the scalar
``ColumnBusArbiter``, per-code ``SampleAndAdd`` additions); it is now a
column-parallel engine: one per-column firing-time sort, one vectorised
single-server emission recurrence over all sample x column bus instances, a
vectorised re-pairing of reorderable collision pools and one batched TDC
sampling / Sample & Add fold.  These tests pin the contract that made the
rewrite safe: the batched engine is **event-for-event identical** to the
legacy loop — samples, ``n_lost_events``, ``n_queued_events``,
``n_lsb_errors`` and ``max_queue_delay`` — across sensor shapes, event
densities and collision regimes (simultaneous fires, long event durations,
deadline straddling, saturated scenes).  The legacy loop stays reachable as
``capture(engine="reference")``; the scalar arbiter itself is additionally
pinned against :func:`repro.sensor.column_bus.arbitrate_columns` on crafted
event sets whose exact ties would be measure-zero under physical firing
times.
"""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.pixel.event import events_from_arrays
from repro.sensor.column_bus import ColumnBusArbiter, arbitrate_columns
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer

EVENT_METADATA_KEYS = (
    "n_lost_events",
    "n_queued_events",
    "n_lsb_errors",
    "max_queue_delay",
)


def photocurrents(shape, seed=0):
    scene = make_scene("blobs", shape, seed=seed)
    return PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)


def capture_pair(config, current, n_samples, *, seed=99, imager_kwargs=None, **kwargs):
    """The same capture through the reference loop and the batched engine."""
    imager_kwargs = imager_kwargs or {}
    reference = CompressiveImager(config, seed=seed, **imager_kwargs).capture(
        current, n_samples=n_samples, fidelity="event", engine="reference", **kwargs
    )
    batched = CompressiveImager(config, seed=seed, **imager_kwargs).capture(
        current, n_samples=n_samples, fidelity="event", engine="batched", **kwargs
    )
    return reference, batched


def assert_event_identical(reference, batched):
    assert batched.samples.dtype == reference.samples.dtype
    assert batched.samples.tobytes() == reference.samples.tobytes()
    for key in EVENT_METADATA_KEYS:
        assert batched.metadata[key] == reference.metadata[key], key


SENSOR_CASES = [
    pytest.param(dict(rows=16, cols=16), dict(), id="16x16-default"),
    pytest.param(dict(rows=32, cols=32), dict(), id="32x32-default"),
    pytest.param(dict(rows=16, cols=32), dict(), id="16x32-rectangular"),
    pytest.param(dict(rows=32, cols=16), dict(), id="32x16-rectangular"),
    pytest.param(dict(rows=16, cols=16), dict(steps_per_sample=3), id="16x16-stride3"),
    pytest.param(dict(rows=16, cols=16), dict(rule=90), id="16x16-rule90"),
]


class TestEventCaptureEquivalence:
    @pytest.mark.parametrize("config_kwargs, imager_kwargs", SENSOR_CASES)
    @pytest.mark.parametrize("lsb_error", [True, False], ids=["lsb", "no-lsb"])
    def test_batched_matches_reference_loop(
        self, config_kwargs, imager_kwargs, lsb_error
    ):
        config = SensorConfig(**config_kwargs)
        current = photocurrents((config.rows, config.cols), seed=7)
        reference, batched = capture_pair(
            config, current, 24, imager_kwargs=imager_kwargs, lsb_error=lsb_error
        )
        assert_event_identical(reference, batched)

    def test_simultaneous_fires_whole_column_queues(self):
        """A constant scene fires every selected pixel of a column at once."""
        config = SensorConfig(rows=16, cols=16)
        current = np.full((16, 16), 5e-9)
        reference, batched = capture_pair(config, current, 10)
        assert reference.metadata["n_queued_events"] > 0  # regime check
        assert_event_identical(reference, batched)

    @pytest.mark.parametrize("event_duration", [5e-8, 5e-7, 2e-6], ids=str)
    def test_heavy_queueing_regimes(self, event_duration):
        """Long bus occupations force deep queues and pool reordering."""
        config = SensorConfig(rows=16, cols=16, event_duration=event_duration)
        current = photocurrents((16, 16), seed=2)
        reference, batched = capture_pair(config, current, 15)
        assert_event_identical(reference, batched)

    def test_deadline_straddling_drops_events(self):
        """Events pushed past the conversion window are dropped identically."""
        config = SensorConfig(rows=16, cols=16, event_duration=2e-6)
        current = np.full((16, 16), 5e-9)
        reference, batched = capture_pair(config, current, 8)
        assert reference.metadata["n_lost_events"] > 0  # regime check
        assert_event_identical(reference, batched)

    def test_saturated_scene_loses_out_of_window_events(self):
        """Without auto-exposure, dim pixels never fire inside the window."""
        config = SensorConfig(rows=16, cols=16)
        current = photocurrents((16, 16), seed=5) * 1e-3
        reference, batched = capture_pair(config, current, 20, auto_expose=False)
        assert reference.metadata["n_lost_events"] > 0  # regime check
        assert_event_identical(reference, batched)

    def test_seeded_fuzz_across_shapes_and_densities(self):
        rng = np.random.default_rng(2018)
        for trial in range(12):
            rows = int(rng.choice([4, 8, 16]))
            cols = int(rng.choice([4, 8, 16]))
            config = SensorConfig(
                rows=rows,
                cols=cols,
                event_duration=float(rng.choice([5e-9, 5e-8, 5e-7, 2e-6])),
            )
            if rng.random() < 0.3:
                current = np.full((rows, cols), 5e-9)
            else:
                current = photocurrents((rows, cols), seed=trial)
                if rng.random() < 0.3:
                    current = current * 1e-3
            reference, batched = capture_pair(
                config,
                current,
                int(rng.integers(1, 20)),
                seed=int(rng.integers(0, 1000)),
                lsb_error=bool(rng.random() < 0.7),
                auto_expose=bool(rng.random() < 0.7),
            )
            assert_event_identical(reference, batched)

    def test_generator_left_where_reference_left_it(self):
        """A follow-up capture must continue the CA exactly as before."""
        config = SensorConfig(rows=16, cols=16)
        current = photocurrents((16, 16), seed=3)
        reference_imager = CompressiveImager(config, seed=4)
        reference_imager.capture(current, n_samples=9, fidelity="event", engine="reference")
        batched_imager = CompressiveImager(config, seed=4)
        batched_imager.capture(current, n_samples=9, fidelity="event")
        assert np.array_equal(
            reference_imager.selection._automaton.state,
            batched_imager.selection._automaton.state,
        )
        assert (
            reference_imager.selection.sample_index
            == batched_imager.selection.sample_index
        )

    def test_event_statistics_marked_exact(self):
        config = SensorConfig(rows=16, cols=16)
        frame = CompressiveImager(config, seed=1).capture(
            photocurrents((16, 16)), n_samples=4, fidelity="event"
        )
        assert frame.metadata["event_statistics"] == "exact"


class TestBatchedArbitrationAgainstScalar:
    """Pin :func:`arbitrate_columns` against the scalar specification directly.

    Crafted fire times reach the exact-tie branches (an event firing at the
    very instant the bus frees, simultaneous fires, reordering pools) that
    physically generated times only hit with probability zero.
    """

    def run_both(self, columns, event_duration, deadline=None):
        """``columns`` is a list of (rows, fire_times) event sets."""
        n_slots = max(len(rows) for rows, _ in columns)
        fire = np.zeros((len(columns), n_slots))
        active = np.zeros((len(columns), n_slots), dtype=bool)
        row_ids = np.zeros((len(columns), n_slots), dtype=np.int64)
        scalar = []
        arbiter = ColumnBusArbiter(event_duration=event_duration)
        for g, (rows, times) in enumerate(columns):
            order = sorted(range(len(rows)), key=lambda i: (times[i], rows[i]))
            for k, i in enumerate(order):
                fire[g, k] = times[i]
                row_ids[g, k] = rows[i]
                active[g, k] = True
            scalar.append(
                arbiter.arbitrate(
                    events_from_arrays(rows, 0, times), deadline=deadline
                )
            )
        batch = arbitrate_columns(
            fire, active, row_ids, event_duration=event_duration, deadline=deadline
        )
        return scalar, batch

    def assert_matches(self, scalar, batch):
        for g, result in enumerate(scalar):
            mask = batch.delivered[g]
            assert int(np.count_nonzero(mask)) == result.n_events
            assert np.array_equal(
                batch.rows[g][mask], [e.row for e in result.events]
            )
            assert np.array_equal(
                batch.emit_times[g][mask], [e.emit_time for e in result.events]
            )
            assert np.array_equal(
                batch.fire_times[g][mask], [e.fire_time for e in result.events]
            )

    def test_reordering_pool_topmost_first(self):
        # Row 9 takes the bus; rows 5 and 1 queue; 1 must be released first.
        columns = [([9, 5, 1], [0.0, 4e-9, 8e-9])]
        scalar, batch = self.run_both(columns, event_duration=100e-9)
        self.assert_matches(scalar, batch)

    def test_fire_exactly_when_bus_frees(self):
        # The second event fires at the exact instant the bus frees while a
        # lower-row pixel is already waiting: the waiting pixel still wins
        # only if it is topmost — this is the tie the scalar resolves with
        # ``fire <= bus_free``.
        duration = 10e-9
        columns = [
            ([9, 5, 0], [0.0, 4e-9, duration]),
            ([9, 0, 5], [0.0, 4e-9, duration]),
            ([0, 9, 5], [0.0, duration, 2 * duration]),
        ]
        scalar, batch = self.run_both(columns, event_duration=duration)
        self.assert_matches(scalar, batch)

    def test_simultaneous_fires_release_top_down(self):
        columns = [(list(range(8)), [1e-6] * 8), ([3, 1, 7], [0.0, 0.0, 0.0])]
        scalar, batch = self.run_both(columns, event_duration=5e-9)
        self.assert_matches(scalar, batch)

    def test_deadline_inside_a_pool(self):
        # Only two of four queued events fit before the deadline; the
        # topmost-first rule decides *which* two are delivered.
        columns = [([9, 5, 1, 3], [0.0, 1e-9, 2e-9, 3e-9])]
        scalar, batch = self.run_both(columns, event_duration=1e-6, deadline=1.5e-6)
        self.assert_matches(scalar, batch)
        assert batch.n_dropped == 2

    def test_mixed_group_sizes_and_empty_groups(self):
        columns = [
            ([], []),
            ([2], [5e-7]),
            ([4, 2], [1e-7, 1e-7]),
            ([7, 3, 5, 1], [0.0, 2e-9, 4e-9, 6e-9]),
        ]
        scalar, batch = self.run_both(columns, event_duration=50e-9)
        self.assert_matches(scalar, batch)

    def test_random_event_sets(self):
        rng = np.random.default_rng(7)
        columns = []
        for _ in range(50):
            n = int(rng.integers(0, 12))
            rows = list(rng.permutation(16)[:n])
            # Quantised times manufacture exact ties between columns' events.
            times = list(rng.integers(0, 40, size=n) * 25e-9)
            columns.append((rows, times))
        scalar, batch = self.run_both(columns, event_duration=60e-9, deadline=8e-7)
        self.assert_matches(scalar, batch)


class TestEventCaptureBatch:
    def sequential_event_batch(self, imager, currents, n_samples):
        """The per-frame loop capture_batch replaces, at event fidelity."""
        from repro.ca.selection import CASelectionGenerator

        frames = []
        for current in currents:
            frames.append(
                imager.capture(current, n_samples=n_samples, fidelity="event")
            )
            end_state = imager.selection._automaton.state
            imager.selection = CASelectionGenerator(
                imager.config.rows,
                imager.config.cols,
                seed_state=end_state,
                rule=imager.rule_number,
                steps_per_sample=imager.steps_per_sample,
                warmup_steps=0,
            )
            imager.warmup_steps = 0
        return frames

    def test_capture_batch_event_matches_sequential_loop(self):
        config = SensorConfig(rows=16, cols=16)
        currents = [photocurrents((16, 16), seed=s) for s in range(3)]
        expected = self.sequential_event_batch(
            CompressiveImager(config, seed=21), currents, 12
        )
        frames = CompressiveImager(config, seed=21).capture_batch(
            currents, n_samples=12, fidelity="event"
        )
        assert len(frames) == len(expected)
        for frame, reference in zip(frames, expected):
            assert frame.metadata["fidelity"] == "event"
            assert np.array_equal(frame.seed_state, reference.seed_state)
            assert frame.warmup_steps == reference.warmup_steps
            assert np.array_equal(frame.digital_image, reference.digital_image)
            assert_event_identical(reference, frame)

    def test_video_sequencer_event_fidelity(self):
        config = SensorConfig(rows=16, cols=16)
        sequencer = VideoSequencer(
            CompressiveImager(config, seed=5),
            conversion=PhotoConversion(prnu_sigma=0.0, shot_noise=False),
            samples_per_frame=10,
        )
        scenes = [make_scene("blobs", (16, 16), seed=s) for s in range(3)]
        result = sequencer.capture_sequence(scenes, fidelity="event")
        assert result.n_frames == 3
        for frame in result.frames:
            assert frame.metadata["fidelity"] == "event"
            assert frame.metadata["event_statistics"] == "exact"
