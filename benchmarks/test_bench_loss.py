"""E16 — lossy-channel resilience: PSNR vs chunk drop rate.

The ``loss`` group pins the *graceful degradation* claim of the resilience
layer: a streamed 64x64 video at increasing seeded chunk-loss rates must
keep reconstructing every frame, with PSNR falling **monotonically and
gently** (masked row-subset solves on the surviving Φ) rather than
collapsing the moment a chunk dies.

* ``test_loss_psnr_vs_drop_rate`` — the PSNR-vs-loss curve at 0 %, 15 %
  and 40 % drop, each frame reconstructed from whatever survived;
* ``test_loss_resilient_decode_overhead`` — wall-clock of the resilient
  decode path itself (no reconstruction) under 10 % loss, wired into the
  regression gate like every other streaming hot path.
"""

import asyncio

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.cs.metrics import psnr
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.fault import LossyTransport
from repro.stream.hub import ReceiverHub
from repro.stream.node import CameraNode
from repro.stream.transport import LoopbackTransport

N_FRAMES = 2
N_SAMPLES = 512
DROP_RATES = (0.0, 0.15, 0.4)


def _sequencer():
    return VideoSequencer(
        CompressiveImager(SensorConfig(), seed=2018),
        samples_per_frame=N_SAMPLES,
        seed=2018,
    )


def _scenes():
    return [
        make_scene("natural", (64, 64), seed=index) for index in range(N_FRAMES)
    ]


def _reference_images():
    """Ground-truth TDC codes from an identical local capture run."""
    capture = _sequencer().capture_sequence(_scenes())
    return [frame.digital_image.astype(float) for frame in capture.frames]


def _stream_lossy_once(drop_rate, *, reconstruct, max_iterations=10):
    async def scenario():
        transport = LoopbackTransport(max_buffered=64)
        lossy = LossyTransport(transport, seed=33, drop_rate=drop_rate)
        hub = ReceiverHub(
            resilient=True,
            reconstruct=reconstruct,
            max_iterations=max_iterations,
        )
        node = CameraNode(lossy, gop_size=2, segments_per_frame=8)
        send_task = asyncio.create_task(
            node.stream_video(_sequencer(), _scenes(), keep_digital_image=False)
        )
        try:
            results = await hub.attach(transport, expected_streams=1)
        finally:
            await hub.close()
        await send_task
        return lossy, hub, results[0]

    return asyncio.run(scenario())


def _psnr_sweep():
    references = _reference_images()
    curve = []
    for rate in DROP_RATES:
        lossy, hub, result = _stream_lossy_once(rate, reconstruct=True)
        assert result.n_frames == N_FRAMES  # every frame landed, at every rate
        values = [
            psnr(reference, frame.reconstruction.image)
            for reference, frame in zip(references, result.frames)
        ]
        stats = hub.stats()
        curve.append(
            {
                "drop_rate": rate,
                "chunks_dropped": len(lossy.dropped),
                "samples_lost": sum(
                    r.n_samples_expected - r.n_samples_received
                    for r in hub.session_stats[1].frame_loss
                ),
                "psnr_db": float(np.mean(values)),
                "partial_frames": stats.n_partial_frames,
            }
        )
    return curve


@pytest.mark.benchmark(group="loss")
def test_loss_psnr_vs_drop_rate(benchmark):
    """PSNR vs seeded chunk loss: monotone, graceful, never a crash."""
    curve = benchmark.pedantic(_psnr_sweep, rounds=1, iterations=1)
    print_table("E16 — PSNR vs chunk drop rate (64x64 video)", curve)

    clean, lossy, heavy = (point["psnr_db"] for point in curve)
    # Loss was actually injected where it should be (and only there).
    assert curve[0]["chunks_dropped"] == 0
    assert curve[1]["chunks_dropped"] > 0
    assert curve[2]["chunks_dropped"] > curve[1]["chunks_dropped"]
    # Graceful degradation: monotone non-increasing (small tolerance for
    # solver noise), a clear drop by 40 % loss, and no collapse to noise.
    tolerance = 0.5
    assert clean + tolerance >= lossy >= heavy - tolerance
    assert clean > heavy
    assert heavy > 5.0
    assert all(np.isfinite(point["psnr_db"]) for point in curve)


@pytest.mark.benchmark(group="loss")
def test_loss_resilient_decode_overhead(benchmark):
    """Wall-clock of the resilient decode path under 10 % chunk loss."""
    lossy, hub, result = benchmark.pedantic(
        lambda: _stream_lossy_once(0.1, reconstruct=False),
        rounds=3,
        iterations=1,
    )
    assert result.n_frames == N_FRAMES
    assert hub.stats().n_lost_chunks == len(lossy.dropped)
    print(
        f"\nresilient decode, 10% loss: {benchmark.stats.stats.median * 1e3:.1f} ms "
        f"for {N_FRAMES} frames ({len(lossy.dropped)} chunks dropped)"
    )
