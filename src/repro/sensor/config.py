"""Sensor configuration: the Table II parameters and everything derived from them.

The defaults reproduce the prototype of Section IV: a 64x64 array of 22 µm
pixels in 0.18 µm CMOS, 8-bit time-to-digital conversion clocked at 24 MHz,
30 fps frame rate and a maximum compressed-sample rate of 50 kHz.  All other
architectural quantities used throughout the library — the conversion window,
the column-accumulator and compressed-sample bit widths (Eq. 1), the maximum
compression ratio and the compressed-sample rate (Eq. 2) — are computed here
so there is exactly one source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class SensorConfig:
    """Architectural parameters of the compressive imager.

    Attributes
    ----------
    rows, cols:
        Pixel-array resolution (Table II: 64 x 64).
    pixel_bits:
        Bits of the per-pixel time-to-digital code, ``N_b`` (8).
    clock_frequency:
        Time-to-digital conversion clock (Table II: 24 MHz).
    frame_rate:
        Image frame rate ``f_s`` (Table II: 30 fps).
    compression_ratio:
        Compressed samples delivered per frame divided by the number of
        pixels, ``R``.  The paper bounds it at 0.4 (= ``N_b / N_B``).
    event_duration:
        Duration of one pixel pulse on the column bus, set by the
        user-controllable delay of the column control unit (the paper's
        worked example uses 5 ns).
    pixel_pitch:
        Pixel size in metres (Table II: 22 µm).
    fill_factor:
        Photodiode fill factor (Table II: 9.2 %).
    technology:
        Process name, carried for reporting only.
    supply_voltage, io_voltage:
        Core / IO supplies (Table II: 1.8 V and 3.3 V).
    """

    rows: int = 64
    cols: int = 64
    pixel_bits: int = 8
    clock_frequency: float = 24.0e6
    frame_rate: float = 30.0
    compression_ratio: float = 0.4
    event_duration: float = 5.0e-9
    pixel_pitch: float = 22.0e-6
    fill_factor: float = 0.092
    technology: str = "CMOS 0.18um 1P6M"
    supply_voltage: float = 1.8
    io_voltage: float = 3.3

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("pixel_bits", self.pixel_bits)
        check_positive("clock_frequency", self.clock_frequency)
        check_positive("frame_rate", self.frame_rate)
        check_in_range("compression_ratio", self.compression_ratio, 0.0, 1.0, inclusive=False)
        check_positive("event_duration", self.event_duration)
        check_positive("pixel_pitch", self.pixel_pitch)
        check_in_range("fill_factor", self.fill_factor, 0.0, 1.0)
        check_positive("supply_voltage", self.supply_voltage)
        check_positive("io_voltage", self.io_voltage)

    # ------------------------------------------------------------ geometry
    @property
    def n_pixels(self) -> int:
        """Total number of pixels ``M * N``."""
        return self.rows * self.cols

    @property
    def array_width(self) -> float:
        """Physical width of the pixel array (m)."""
        return self.cols * self.pixel_pitch

    @property
    def array_height(self) -> float:
        """Physical height of the pixel array (m)."""
        return self.rows * self.pixel_pitch

    # ----------------------------------------------------------- bit widths
    @property
    def pixel_code_range(self) -> int:
        """Number of distinct pixel codes, ``2**N_b`` (256)."""
        return 1 << self.pixel_bits

    @property
    def column_sum_bits(self) -> int:
        """Bits of the per-column accumulator: ``N_b + log2(rows)`` (14 for 64 rows)."""
        return self.pixel_bits + int(math.ceil(math.log2(self.rows)))

    @property
    def compressed_sample_bits(self) -> int:
        """Bits of one compressed sample — Eq. (1): ``N_b + log2(M*N)`` (20)."""
        return self.pixel_bits + int(math.ceil(math.log2(self.n_pixels)))

    @property
    def max_compression_ratio(self) -> float:
        """Ratio beyond which raw read-out is cheaper: ``N_b / N_B`` (0.4)."""
        return self.pixel_bits / self.compressed_sample_bits

    # --------------------------------------------------------------- timing
    @property
    def clock_period(self) -> float:
        """Time-to-digital clock period (s)."""
        return 1.0 / self.clock_frequency

    @property
    def conversion_time(self) -> float:
        """Length of the TDC window: ``2**N_b`` clock periods (~10.7 µs at 24 MHz)."""
        return self.pixel_code_range * self.clock_period

    @property
    def samples_per_frame(self) -> int:
        """Compressed samples delivered per frame: ``R * M * N``."""
        return int(round(self.compression_ratio * self.n_pixels))

    @property
    def compressed_sample_rate(self) -> float:
        """Eq. (2): ``f_cs = R * M * N * f_s`` (≈ 49 kHz for the defaults)."""
        return self.compression_ratio * self.n_pixels * self.frame_rate

    @property
    def compressed_sample_period(self) -> float:
        """Time available to generate one compressed sample (≈ 20 µs)."""
        return 1.0 / self.compressed_sample_rate

    @property
    def frame_time(self) -> float:
        """Frame period ``1 / f_s``."""
        return 1.0 / self.frame_rate

    def event_overlap_probability(self, n_selected: int = None) -> float:
        """Probability that a given pixel event overlaps another event in its column.

        The paper's worked example: 5 ns events, 64 selected pixels in a
        column, firing at random within the conversion window → "a 6.25 %
        chance that two events will randomly overlap".  With events placed
        uniformly in the window, the chance that one particular event
        collides with at least one of the other ``n_selected - 1`` is
        ``1 - (1 - 2d/T)**(n-1)``; for the default configuration this is
        ≈ 6 %, matching the paper's estimate.  The token protocol exists
        precisely so that these overlaps serialise instead of losing pulses.
        """
        if n_selected is None:
            n_selected = self.rows
        check_positive("n_selected", n_selected)
        window = self.conversion_time
        pairwise = min(1.0, 2.0 * self.event_duration / window)
        return 1.0 - (1.0 - pairwise) ** (int(n_selected) - 1)

    def any_overlap_probability(self, n_selected: int = None) -> float:
        """Birthday-style probability that *any* two of the column's events overlap.

        This is the stricter quantity (much larger than
        :meth:`event_overlap_probability` for dense columns) and is what the
        token-protocol benchmark measures empirically.
        """
        if n_selected is None:
            n_selected = self.rows
        check_positive("n_selected", n_selected)
        window = self.conversion_time
        probability_clear = 1.0
        for k in range(1, int(n_selected)):
            probability_clear *= max(0.0, 1.0 - 2.0 * k * self.event_duration / window)
        return 1.0 - probability_clear

    # ------------------------------------------------------------- reporting
    def as_dict(self) -> dict[str, object]:
        """Flat dictionary of the configured and derived quantities (for Table II)."""
        return {
            "technology": self.technology,
            "resolution": f"{self.rows} x {self.cols}",
            "pixel_pitch_um": self.pixel_pitch * 1e6,
            "fill_factor": self.fill_factor,
            "pixel_bits": self.pixel_bits,
            "column_sum_bits": self.column_sum_bits,
            "compressed_sample_bits": self.compressed_sample_bits,
            "max_compression_ratio": self.max_compression_ratio,
            "clock_frequency_mhz": self.clock_frequency / 1e6,
            "frame_rate_fps": self.frame_rate,
            "compressed_sample_rate_khz": self.compressed_sample_rate / 1e3,
            "conversion_time_us": self.conversion_time * 1e6,
            "supply_voltage": self.supply_voltage,
            "io_voltage": self.io_voltage,
        }
