"""Image-quality and recovery metrics used throughout the benchmarks."""

from __future__ import annotations


import numpy as np

from repro.utils.validation import check_positive


def _as_pair(
    reference: np.ndarray, estimate: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    reference = np.asarray(reference, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    if reference.shape != estimate.shape:
        raise ValueError(
            f"reference shape {reference.shape} and estimate shape {estimate.shape} differ"
        )
    if reference.size == 0:
        raise ValueError("arrays must be non-empty")
    return reference, estimate


def mse(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Mean squared error."""
    reference, estimate = _as_pair(reference, estimate)
    return float(np.mean((reference - estimate) ** 2))


def nmse(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Normalised MSE: ``||x - x̂||² / ||x||²``."""
    reference, estimate = _as_pair(reference, estimate)
    denominator = float(np.sum(reference ** 2))
    if denominator == 0.0:
        return float(np.sum(estimate ** 2) > 0)
    return float(np.sum((reference - estimate) ** 2) / denominator)


def psnr(
    reference: np.ndarray, estimate: np.ndarray, *, data_range: float | None = None
) -> float:
    """Peak signal-to-noise ratio in dB.

    ``data_range`` defaults to the dynamic range of the reference (max-min),
    or 1.0 for a constant reference.
    """
    reference, estimate = _as_pair(reference, estimate)
    error = mse(reference, estimate)
    if data_range is None:
        data_range = float(reference.max() - reference.min())
        if data_range == 0.0:
            data_range = 1.0
    check_positive("data_range", data_range)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range ** 2 / error))


def reconstruction_snr(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Reconstruction SNR in dB: ``10 log10(||x||² / ||x - x̂||²)``."""
    value = nmse(reference, estimate)
    if value == 0.0:
        return float("inf")
    return float(-10.0 * np.log10(value))


def ssim(
    reference: np.ndarray,
    estimate: np.ndarray,
    *,
    data_range: float | None = None,
    window: int = 8,
) -> float:
    """Mean structural similarity over non-overlapping windows.

    A compact SSIM implementation (non-overlapping square windows, uniform
    weighting) — adequate for ranking reconstructions, which is all the
    benchmarks need.
    """
    reference, estimate = _as_pair(reference, estimate)
    if reference.ndim != 2:
        raise ValueError("ssim expects 2-D images")
    check_positive("window", window)
    if data_range is None:
        data_range = float(reference.max() - reference.min())
        if data_range == 0.0:
            data_range = 1.0
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    rows, cols = reference.shape
    window = int(min(window, rows, cols))
    scores = []
    for top in range(0, rows - window + 1, window):
        for left in range(0, cols - window + 1, window):
            ref_block = reference[top:top + window, left:left + window]
            est_block = estimate[top:top + window, left:left + window]
            mu_x = ref_block.mean()
            mu_y = est_block.mean()
            var_x = ref_block.var()
            var_y = est_block.var()
            cov = ((ref_block - mu_x) * (est_block - mu_y)).mean()
            numerator = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
            denominator = (mu_x ** 2 + mu_y ** 2 + c1) * (var_x + var_y + c2)
            scores.append(numerator / denominator)
    if not scores:
        raise ValueError("image smaller than the SSIM window")
    return float(np.mean(scores))


def support_recovery_rate(
    true_coefficients: np.ndarray, estimate: np.ndarray, *, sparsity: int | None = None
) -> float:
    """Fraction of the true support recovered among the largest estimated entries."""
    true_coefficients = np.asarray(true_coefficients, dtype=float).reshape(-1)
    estimate = np.asarray(estimate, dtype=float).reshape(-1)
    if true_coefficients.shape != estimate.shape:
        raise ValueError("coefficient vectors must have the same length")
    true_support = set(np.nonzero(true_coefficients)[0].tolist())
    if not true_support:
        return 1.0
    if sparsity is None:
        sparsity = len(true_support)
    estimated_support = set(
        np.argsort(np.abs(estimate))[::-1][: int(sparsity)].tolist()
    )
    return float(len(true_support & estimated_support) / len(true_support))
