"""Deterministic fault injection for streaming transports.

:class:`LossyTransport` wraps any :class:`~repro.stream.transport.Transport`
and subjects the sender's byte slices to seeded drop / truncate / duplicate /
reorder faults — the adversary the loss-resilience layer is built against,
and the harness the fault-injection suite drives.  Every decision comes from
one :func:`repro.utils.rng.new_rng` generator, so a ``(seed, rates)`` pair
replays the exact same fault pattern on every run, and the transport records
*which* send indices it hit so tests can assert the receiver's loss metadata
matches the injected loss exactly.

Because the camera node sends exactly one chunk per ``send`` call, the fault
granularity is the chunk: a dropped slice is a lost chunk, a truncated slice
is a corrupted one, and the recorded send indices line up one-to-one with
chunk sequence numbers.

Reordering needs a *next* slice to swap with, so the transport holds each
slice for one send: the fault decision for slice ``k`` is applied when slice
``k + 1`` arrives, and ``close()`` flushes the final held slice **intact** —
the stream-end chunk always survives, mirroring a real channel where the
sender would retransmit its terminal control message until acknowledged.
``protect_first=True`` (default) likewise exempts slice 0, the stream header,
without which no receiver could do anything at all.
"""

from __future__ import annotations

from repro.stream.transport import Transport
from repro.utils.rng import derive_seed, new_rng


class LossyTransport:
    """A transport wrapper injecting seeded chunk-level faults.

    Parameters
    ----------
    inner:
        The transport actually carrying the surviving slices.
    seed:
        Base seed; the fault generator is derived via
        :func:`repro.utils.rng.derive_seed` so it cannot couple with any
        other randomness in an experiment.
    drop_rate, truncate_rate, duplicate_rate, reorder_rate:
        Per-slice fault probabilities; one uniform draw per slice picks at
        most one fault, so the rates must sum to at most 1.
    protect_first:
        Deliver slice 0 (the stream header) intact regardless of the draw.

    Attributes
    ----------
    dropped, truncated, duplicated, reordered:
        Send indices (0-based, in the order the sender called ``send``) each
        fault actually hit — the ground truth the fault-injection tests
        compare receiver-side loss metadata against.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        seed: int,
        drop_rate: float = 0.0,
        truncate_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        protect_first: bool = True,
    ) -> None:
        rates = (drop_rate, truncate_rate, duplicate_rate, reorder_rate)
        if any(rate < 0.0 for rate in rates) or sum(rates) > 1.0:
            raise ValueError(
                "fault rates must be non-negative and sum to at most 1, got "
                f"drop={drop_rate}, truncate={truncate_rate}, "
                f"duplicate={duplicate_rate}, reorder={reorder_rate}"
            )
        self.inner = inner
        self.drop_rate = float(drop_rate)
        self.truncate_rate = float(truncate_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.reorder_rate = float(reorder_rate)
        self.protect_first = bool(protect_first)
        self._rng = new_rng(derive_seed(seed, "lossy-transport"))
        self._held: tuple[int, bytes] | None = None
        self.n_sends = 0
        self.dropped: list[int] = []
        self.truncated: list[int] = []
        self.duplicated: list[int] = []
        self.reordered: list[int] = []

    @property
    def n_faults(self) -> int:
        """Total slices hit by any fault."""
        return (
            len(self.dropped)
            + len(self.truncated)
            + len(self.duplicated)
            + len(self.reordered)
        )

    async def _flush_held(self, incoming: tuple[int, bytes] | None) -> None:
        """Apply the fault draw to the held slice and deliver the outcome.

        ``incoming`` is the slice that triggered the flush (``None`` on
        close); a *reorder* delivers it first and the held slice after,
        consuming both.
        """
        if self._held is None:
            if incoming is not None:
                self._held = incoming
            return
        index, data = self._held
        self._held = incoming
        if self.protect_first and index == 0:
            await self.inner.send(data)
            return
        draw = float(self._rng.random())
        if draw < self.drop_rate:
            self.dropped.append(index)
            return
        draw -= self.drop_rate
        if draw < self.truncate_rate:
            if len(data) > 1:
                self.truncated.append(index)
                cut = int(self._rng.integers(1, len(data)))
                await self.inner.send(data[:cut])
            else:
                await self.inner.send(data)
            return
        draw -= self.truncate_rate
        if draw < self.duplicate_rate:
            self.duplicated.append(index)
            await self.inner.send(data)
            await self.inner.send(data)
            return
        draw -= self.duplicate_rate
        if draw < self.reorder_rate and incoming is not None:
            self.reordered.append(index)
            self._held = None
            await self.inner.send(incoming[1])
            await self.inner.send(data)
            return
        await self.inner.send(data)

    async def send(self, data: bytes) -> None:
        """Hold this slice and deliver its predecessor through the fault draw."""
        incoming = (self.n_sends, bytes(data))
        self.n_sends += 1
        await self._flush_held(incoming)

    async def recv(self) -> bytes | None:
        """Pass-through to the inner transport (feedback path is unfaulted)."""
        return await self.inner.recv()

    async def close(self) -> None:
        """Deliver the final held slice intact, then close the inner transport."""
        held, self._held = self._held, None
        if held is not None:
            await self.inner.send(held[1])
        await self.inner.close()
