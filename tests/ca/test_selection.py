"""Tests for the CA-driven row/column selection generator."""

import numpy as np
import pytest

from repro.ca.selection import CASelectionGenerator


class TestConstruction:
    def test_seed_state_length_must_match(self):
        with pytest.raises(ValueError):
            CASelectionGenerator(8, 8, seed_state=np.ones(10, dtype=np.uint8))

    def test_seed_state_preserved(self):
        seed = np.array([1, 0] * 8, dtype=np.uint8)
        generator = CASelectionGenerator(8, 8, seed_state=seed)
        assert np.array_equal(generator.seed_state, seed)

    def test_random_seed_reproducible(self):
        a = CASelectionGenerator(8, 8, seed=5)
        b = CASelectionGenerator(8, 8, seed=5)
        assert np.array_equal(a.seed_state, b.seed_state)


class TestPatterns:
    def test_mask_shape_and_binary(self):
        generator = CASelectionGenerator(16, 12, seed=1)
        pattern = generator.next_pattern()
        assert pattern.mask.shape == (16, 12)
        assert set(np.unique(pattern.mask)).issubset({0, 1})

    def test_mask_is_xor_of_signals(self):
        generator = CASelectionGenerator(8, 8, seed=2)
        pattern = generator.next_pattern()
        expected = np.bitwise_xor.outer(pattern.row_signals, pattern.col_signals)
        assert np.array_equal(pattern.mask, expected)

    def test_pattern_indices_increase(self):
        generator = CASelectionGenerator(8, 8, seed=2)
        indices = [generator.next_pattern().index for _ in range(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_successive_patterns_differ(self):
        generator = CASelectionGenerator(16, 16, seed=3, warmup_steps=4)
        first = generator.next_pattern().mask
        second = generator.next_pattern().mask
        assert not np.array_equal(first, second)

    def test_density_close_to_half(self):
        """The XOR construction selects each pixel in half of the signal combinations."""
        generator = CASelectionGenerator(32, 32, seed=4, warmup_steps=8)
        densities = [generator.next_pattern().density for _ in range(64)]
        assert 0.35 < float(np.mean(densities)) < 0.65

    def test_as_vector_matches_mask_raster_order(self):
        generator = CASelectionGenerator(4, 4, seed=5)
        pattern = generator.next_pattern()
        assert np.array_equal(pattern.as_vector(), pattern.mask.reshape(-1))

    def test_patterns_iterator_count(self):
        generator = CASelectionGenerator(8, 8, seed=6)
        assert len(list(generator.patterns(7))) == 7


class TestDeterminismAndReset:
    def test_reset_replays_the_same_sequence(self):
        generator = CASelectionGenerator(12, 12, seed=7, warmup_steps=3)
        first_run = [generator.next_pattern().mask for _ in range(5)]
        generator.reset()
        second_run = [generator.next_pattern().mask for _ in range(5)]
        for a, b in zip(first_run, second_run):
            assert np.array_equal(a, b)

    def test_measurement_matrix_matches_pattern_stream(self):
        generator = CASelectionGenerator(8, 8, seed=8, warmup_steps=2)
        matrix = generator.measurement_matrix(6)
        generator.reset()
        for row_index in range(6):
            assert np.array_equal(matrix[row_index], generator.next_pattern().as_vector())

    def test_measurement_matrix_does_not_disturb_generator(self):
        generator = CASelectionGenerator(8, 8, seed=9)
        first = generator.next_pattern().mask
        generator.measurement_matrix(10)
        second = generator.next_pattern().mask
        fresh = CASelectionGenerator(8, 8, seed_state=generator.seed_state, warmup_steps=0)
        fresh_first = fresh.next_pattern().mask
        fresh_second = fresh.next_pattern().mask
        assert np.array_equal(first, fresh_first)
        assert np.array_equal(second, fresh_second)

    def test_same_seed_two_generators_identical(self):
        """The property the channel relies on: seed fully determines Φ."""
        seed = CASelectionGenerator(16, 16, seed=10).seed_state
        a = CASelectionGenerator(16, 16, seed_state=seed, warmup_steps=5)
        b = CASelectionGenerator(16, 16, seed_state=seed, warmup_steps=5)
        assert np.array_equal(a.measurement_matrix(20), b.measurement_matrix(20))

    def test_steps_per_sample_changes_sequence(self):
        seed = CASelectionGenerator(8, 8, seed=11).seed_state
        one = CASelectionGenerator(8, 8, seed_state=seed, steps_per_sample=1)
        two = CASelectionGenerator(8, 8, seed_state=seed, steps_per_sample=2)
        assert not np.array_equal(one.measurement_matrix(5), two.measurement_matrix(5))


class TestMatrixProperties:
    def test_matrix_rows_are_distinct(self):
        generator = CASelectionGenerator(16, 16, seed=12, warmup_steps=4)
        matrix = generator.measurement_matrix(40)
        assert len({row.tobytes() for row in matrix}) == 40

    def test_matrix_dtype_and_shape(self):
        generator = CASelectionGenerator(8, 12, seed=13)
        matrix = generator.measurement_matrix(9)
        assert matrix.shape == (9, 96)
        assert matrix.dtype == np.uint8


class TestBatchedStateAccess:
    def test_next_masks_match_pattern_stream(self):
        seed = CASelectionGenerator(8, 8, seed=20).seed_state
        batched = CASelectionGenerator(8, 8, seed_state=seed, warmup_steps=2)
        sequential = CASelectionGenerator(8, 8, seed_state=seed, warmup_steps=2)
        masks = batched.next_masks(7)
        for row in masks:
            assert np.array_equal(row, sequential.next_pattern().as_vector())
        assert batched.sample_index == sequential.sample_index

    def test_next_states_continue_mid_stream(self):
        seed = CASelectionGenerator(8, 8, seed=21).seed_state
        batched = CASelectionGenerator(8, 8, seed_state=seed, steps_per_sample=2)
        sequential = CASelectionGenerator(8, 8, seed_state=seed, steps_per_sample=2)
        batched.next_pattern()
        sequential.next_pattern()
        states = batched.next_states(4)
        for state in states:
            pattern = sequential.next_pattern()
            expected = np.concatenate([pattern.row_signals, pattern.col_signals])
            assert np.array_equal(state, expected)

    def test_partial_iterator_consumption_stays_lazy(self):
        """Breaking out of patterns() must leave the generator on the last
        pattern actually taken, not at the end of the requested stretch."""
        generator = CASelectionGenerator(8, 8, seed=22)
        iterator = generator.patterns(10)
        next(iterator)
        next(iterator)
        assert generator.sample_index == 2
        follow_up = generator.next_pattern()
        fresh = CASelectionGenerator(8, 8, seed_state=generator.seed_state, warmup_steps=0)
        expected = [fresh.next_pattern() for _ in range(3)][2]
        assert np.array_equal(follow_up.mask, expected.mask)
