"""E2 — Table II: summary of chip features.

Regenerates every row of Table II.  Architectural rows (technology, pixel
size, resolution, frame rate, clock, supplies, maximum compressed-sample
rate) come directly from the configuration; die size and power come from the
parametric power/area model.  The assertions check the architectural rows
exactly and the modelled rows to the coarse tolerances appropriate for a
bottom-up estimate.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sensor.config import SensorConfig
from repro.sensor.power import PAPER_TABLE_II, PowerAreaModel, chip_feature_summary


def test_table2_chip_feature_summary(benchmark):
    summary = benchmark(chip_feature_summary, SensorConfig(), PowerAreaModel())

    rows = []
    for key, paper_value in PAPER_TABLE_II.items():
        rows.append({"feature": key, "paper": paper_value, "reproduced": summary.get(key)})
    print_table("Table II — summary of chip features", rows, ["feature", "paper", "reproduced"])

    # Architectural rows match exactly.
    assert summary["technology"] == PAPER_TABLE_II["technology"]
    assert summary["resolution"] == PAPER_TABLE_II["resolution"]
    assert summary["pixel_size_um"] == PAPER_TABLE_II["pixel_size_um"]
    assert summary["fill_factor_percent"] == pytest.approx(PAPER_TABLE_II["fill_factor_percent"])
    assert summary["photodiode_type"] == PAPER_TABLE_II["photodiode_type"]
    assert summary["power_supply_v"] == PAPER_TABLE_II["power_supply_v"]
    assert summary["frame_rate_fps"] == PAPER_TABLE_II["frame_rate_fps"]
    assert summary["clock_frequency_mhz"] == PAPER_TABLE_II["clock_frequency_mhz"]

    # Eq. (2) operating point: the paper rounds 49.152 kHz up to "50 kHz".
    assert summary["max_compressed_sample_rate_khz"] == pytest.approx(49.152)
    assert (
        abs(
            summary["max_compressed_sample_rate_khz"]
            - PAPER_TABLE_II["max_compressed_sample_rate_khz"]
        )
        < 1.0
    )

    # Modelled rows: below the stated power bound, die size within ~40 %.
    assert summary["predicted_power_mw"] < PAPER_TABLE_II["predicted_power_mw"]
    paper_area = PAPER_TABLE_II["die_size_mm"][0] * PAPER_TABLE_II["die_size_mm"][1]
    model_area = summary["die_size_mm"][0] * summary["die_size_mm"][1]
    assert 0.6 * paper_area < model_area < 1.4 * paper_area


def test_table2_power_breakdown(benchmark):
    """Per-block power contributions (not in the paper, but implied by the design)."""
    model = PowerAreaModel()
    breakdown = benchmark(model.power_breakdown, SensorConfig())
    rows = [{"block": k, "power_mw": v * 1e3} for k, v in breakdown.items()]
    print_table("Power breakdown (model)", rows)
    assert breakdown["pixel_array"] > breakdown["ca_ring"]
