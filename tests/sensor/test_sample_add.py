"""Tests for the per-column accumulators and the compressed-sample adder."""

import pytest

from repro.pixel.event import PixelEvent
from repro.sensor.sample_add import (
    AccumulatorOverflowError,
    ColumnAccumulator,
    SampleAndAdd,
    required_sample_bits,
)


class TestColumnAccumulator:
    def test_accumulates_codes(self):
        accumulator = ColumnAccumulator(n_bits=14)
        accumulator.add_many([10, 20, 30])
        assert accumulator.value == 60
        assert accumulator.n_samples == 3

    def test_reset_clears(self):
        accumulator = ColumnAccumulator()
        accumulator.add(100)
        accumulator.reset()
        assert accumulator.value == 0
        assert accumulator.n_samples == 0

    def test_14_bits_hold_64_max_codes(self):
        """Eq. (1) applied to one column: 64 codes of 255 fit in 14 bits."""
        accumulator = ColumnAccumulator(n_bits=14)
        accumulator.add_many([255] * 64)
        assert accumulator.value == 64 * 255
        assert accumulator.value <= accumulator.max_value

    def test_13_bits_overflow_on_worst_case_column(self):
        accumulator = ColumnAccumulator(n_bits=13)
        with pytest.raises(AccumulatorOverflowError):
            accumulator.add_many([255] * 64)

    def test_saturating_mode_clips_instead_of_raising(self):
        accumulator = ColumnAccumulator(n_bits=8, strict=False)
        accumulator.add_many([200, 200])
        assert accumulator.value == 255

    def test_negative_code_rejected(self):
        with pytest.raises(ValueError):
            ColumnAccumulator().add(-1)


class TestSampleAndAdd:
    def test_column_routing(self):
        adder = SampleAndAdd(n_columns=4, column_bits=14, sample_bits=20)
        adder.add_code(0, 10)
        adder.add_code(2, 20)
        assert adder.column_sums.tolist() == [10, 0, 20, 0]

    def test_compressed_sample_is_sum_of_columns(self):
        adder = SampleAndAdd(n_columns=4)
        for col in range(4):
            adder.add_code(col, 100 * (col + 1))
        assert adder.compressed_sample() == 1000

    def test_20_bits_hold_full_frame_worst_case(self):
        """Eq. (1): 4096 codes of 255 fit in 20 bits."""
        adder = SampleAndAdd(n_columns=64, column_bits=14, sample_bits=20)
        for col in range(64):
            for _ in range(64):
                adder.add_code(col, 255)
        assert adder.compressed_sample() == 64 * 64 * 255
        assert adder.compressed_sample() < (1 << 20)

    def test_19_bits_overflow_on_full_frame_worst_case(self):
        adder = SampleAndAdd(n_columns=64, column_bits=14, sample_bits=19)
        for col in range(64):
            for _ in range(64):
                adder.add_code(col, 255)
        with pytest.raises(AccumulatorOverflowError):
            adder.compressed_sample()

    def test_out_of_range_column_rejected(self):
        with pytest.raises(ValueError):
            SampleAndAdd(n_columns=4).add_code(4, 1)

    def test_reset_clears_all_columns(self):
        adder = SampleAndAdd(n_columns=3)
        adder.add_code(1, 5)
        adder.reset()
        assert adder.column_sums.sum() == 0

    def test_accumulate_events(self):
        adder = SampleAndAdd(n_columns=4)
        events = [
            PixelEvent(row=0, col=1, fire_time=1e-6).with_sampled_code(10),
            PixelEvent(row=1, col=1, fire_time=2e-6).with_sampled_code(20),
            PixelEvent(row=0, col=3, fire_time=3e-6).with_sampled_code(5),
        ]
        assert adder.accumulate_events(events) == 35

    def test_accumulate_events_requires_codes(self):
        adder = SampleAndAdd(n_columns=4)
        with pytest.raises(ValueError):
            adder.accumulate_events([PixelEvent(row=0, col=0, fire_time=1e-6)])


class TestRequiredSampleBits:
    def test_paper_values(self):
        assert required_sample_bits(4096, 8) == 20
        assert required_sample_bits(64, 8) == 14

    def test_small_cases(self):
        assert required_sample_bits(1, 8) == 8
        assert required_sample_bits(2, 1) == 2
