"""Property-based tests for the transmission bitstream layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.bitstream import BitReader, BitWriter, pack_samples, unpack_samples


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(1, 24), st.integers(0, 2**24 - 1)), min_size=1, max_size=40
    )
)
def test_mixed_width_round_trip(data):
    """Any sequence of (width, value) pairs survives the writer/reader round trip."""
    writer = BitWriter()
    normalised = []
    for n_bits, value in data:
        value %= 1 << n_bits
        normalised.append((n_bits, value))
        writer.write(value, n_bits)
    reader = BitReader(writer.getvalue())
    for n_bits, value in normalised:
        assert reader.read(n_bits) == value


@settings(max_examples=50, deadline=None)
@given(
    n_bits=st.integers(1, 32),
    values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200),
)
def test_pack_unpack_round_trip(n_bits, values):
    samples = np.array([value % (1 << n_bits) for value in values], dtype=np.int64)
    packed = pack_samples(samples, n_bits)
    assert len(packed) == (len(samples) * n_bits + 7) // 8
    assert np.array_equal(unpack_samples(packed, len(samples), n_bits), samples)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(0, (1 << 20) - 1), min_size=1, max_size=100))
def test_twenty_bit_packing_is_denser_than_words(values):
    """The whole point: 20-bit packing always beats 32-bit word transmission."""
    packed = pack_samples(values, 20)
    assert len(packed) <= len(values) * 4
    if len(values) >= 2:
        assert len(packed) < len(values) * 4
