"""Tile-by-tile reconstruction of sharded captures."""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_tiled
from repro.sensor.shard import TiledSensorArray


@pytest.fixture(scope="module")
def tiled_capture():
    scene = make_scene("blobs", (32, 48), seed=4)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    array = TiledSensorArray((32, 48), tile_shape=(16, 16), seed=9)
    return array.capture(current)


class TestReconstructTiled:
    def test_stitches_full_scene(self, tiled_capture):
        result = reconstruct_tiled(tiled_capture, max_iterations=60)
        assert result.image.shape == (32, 48)
        grid_rows = len(result.tile_results)
        grid_cols = len(result.tile_results[0])
        assert (grid_rows, grid_cols) == tiled_capture.grid_shape

    def test_metrics_against_stitched_digital_image(self, tiled_capture):
        result = reconstruct_tiled(tiled_capture, max_iterations=60)
        assert set(result.metrics) == {"psnr_db", "snr_db"}
        # R = 0.4 on a smooth scene recovers a clearly recognisable image.
        assert result.metrics["psnr_db"] > 15.0

    def test_capture_metadata_carried(self, tiled_capture):
        result = reconstruct_tiled(tiled_capture, max_iterations=30)
        assert result.capture_metadata["n_tiles"] == tiled_capture.n_tiles
        assert result.capture_metadata["event_statistics"] == "modelled"

    def test_thread_executor_matches_serial(self, tiled_capture):
        serial = reconstruct_tiled(tiled_capture, max_iterations=40)
        threaded = reconstruct_tiled(
            tiled_capture, max_iterations=40, executor="thread", max_workers=2
        )
        assert np.array_equal(serial.image, threaded.image)

    def test_explicit_reference_overrides_digital_image(self, tiled_capture):
        reference = tiled_capture.digital_image().astype(float)
        result = reconstruct_tiled(
            tiled_capture, max_iterations=30, reference=reference
        )
        assert result.metrics["psnr_db"] > 0.0

    def test_no_reference_no_metrics(self):
        scene = make_scene("blobs", (16, 16), seed=4)
        current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
        array = TiledSensorArray((16, 16), tile_shape=(16, 16), seed=9)
        capture = array.capture(current, keep_digital_image=False)
        result = reconstruct_tiled(capture, max_iterations=20)
        assert result.metrics == {}

    def test_invalid_executor_rejected(self, tiled_capture):
        with pytest.raises(ValueError, match="executor"):
            reconstruct_tiled(tiled_capture, executor="process")
