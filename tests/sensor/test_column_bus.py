"""Tests for the column-bus token protocol (C_in/C_out) and event termination."""

import numpy as np
import pytest

from repro.pixel.event import PixelEvent
from repro.sensor.column_bus import (
    ArbitrationResult,
    ColumnBusArbiter,
    ColumnControlUnit,
    GateLevelColumn,
)


def events_from_times(times):
    return [PixelEvent(row=row, col=0, fire_time=t) for row, t in enumerate(times)]


class TestColumnControlUnit:
    def test_termination_delay_sets_event_end(self):
        unit = ColumnControlUnit(termination_delay=5e-9)
        assert unit.termination_time(1e-6) == pytest.approx(1e-6 + 5e-9)

    def test_sample_strobe_at_leading_edge(self):
        unit = ColumnControlUnit()
        assert unit.sample_strobe_time(2e-6) == 2e-6

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            ColumnControlUnit(termination_delay=0.0)


class TestArbiterNoContention:
    def test_well_separated_events_unqueued(self):
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        result = arbiter.arbitrate(events_from_times([1e-6, 2e-6, 3e-6]))
        assert result.n_events == 3
        assert result.n_queued == 0
        for event in result.events:
            assert event.emit_time == event.fire_time

    def test_emission_order_is_time_order(self):
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        result = arbiter.arbitrate(events_from_times([3e-6, 1e-6, 2e-6]))
        assert [event.row for event in result.events] == [1, 2, 0]

    def test_bus_busy_time_accumulates(self):
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        result = arbiter.arbitrate(events_from_times([1e-6, 2e-6]))
        assert result.bus_busy_time == pytest.approx(10e-9)


class TestArbiterContention:
    def test_no_pulse_is_ever_lost(self):
        """The protocol's central guarantee: every event is delivered."""
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        times = np.full(64, 1e-6)  # all 64 pixels fire simultaneously
        result = arbiter.arbitrate(events_from_times(times))
        assert result.n_events == 64
        assert len({event.row for event in result.events}) == 64

    def test_simultaneous_events_serialise_top_down(self):
        """Release is sequential from the top of the column downwards."""
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        result = arbiter.arbitrate(events_from_times([1e-6] * 8))
        assert [event.row for event in result.events] == list(range(8))

    def test_no_two_events_overlap_on_the_bus(self):
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 200e-9, size=32)  # heavy contention
        result = arbiter.arbitrate(events_from_times(times))
        emits = sorted(event.emit_time for event in result.events)
        assert all(b - a >= 5e-9 - 1e-15 for a, b in zip(emits, emits[1:]))

    def test_queued_events_counted_and_delayed(self):
        arbiter = ColumnBusArbiter(event_duration=10e-9)
        result = arbiter.arbitrate(events_from_times([1e-6, 1e-6 + 1e-9]))
        assert result.n_queued == 1
        assert result.max_queue_delay >= 8e-9

    def test_waiting_topmost_pixel_wins_over_lower_one(self):
        """If two pixels are waiting when the bus frees, the upper one goes first."""
        arbiter = ColumnBusArbiter(event_duration=100e-9)
        # Row 5 fires first and takes the bus; rows 2 and 7 fire while it is busy.
        events = [
            PixelEvent(row=5, col=0, fire_time=0.0),
            PixelEvent(row=7, col=0, fire_time=10e-9),
            PixelEvent(row=2, col=0, fire_time=20e-9),
        ]
        result = arbiter.arbitrate(events)
        assert [event.row for event in result.events] == [5, 2, 7]

    def test_duplicate_rows_rejected(self):
        arbiter = ColumnBusArbiter()
        with pytest.raises(ValueError):
            arbiter.arbitrate([
                PixelEvent(row=1, col=0, fire_time=1e-6),
                PixelEvent(row=1, col=0, fire_time=2e-6),
            ])

    def test_deadline_drops_late_events(self):
        arbiter = ColumnBusArbiter(event_duration=1e-6)
        result = arbiter.arbitrate(events_from_times([0.0, 0.1e-6, 0.2e-6]), deadline=1.5e-6)
        assert result.n_events == 2  # the third would start after the deadline

    def test_empty_event_list(self):
        result = ColumnBusArbiter().arbitrate([])
        assert isinstance(result, ArbitrationResult)
        assert result.n_events == 0


class TestArbiterEdgeCases:
    """Boundary behaviour of the scalar specification.

    These are the regimes the batched engine's equivalence suite leans on:
    exact simultaneity, events straddling the frame-termination (deadline)
    instant, and columns with no events at all.
    """

    def test_simultaneous_events_share_one_fire_instant(self):
        """All-equal fire times: emissions are spaced by the event duration."""
        duration = 5e-9
        arbiter = ColumnBusArbiter(event_duration=duration)
        result = arbiter.arbitrate(events_from_times([2e-6] * 5))
        emits = [event.emit_time for event in result.events]
        assert emits == pytest.approx([2e-6 + k * duration for k in range(5)])
        # The first occupant was not queued; everyone behind it was.
        assert result.n_queued == 4
        assert result.max_queue_delay == pytest.approx(4 * duration)

    def test_event_firing_exactly_at_deadline_is_dropped(self):
        arbiter = ColumnBusArbiter(event_duration=5e-9)
        result = arbiter.arbitrate(events_from_times([1e-6, 2e-6]), deadline=2e-6)
        assert result.n_events == 1
        assert result.events[0].row == 0

    def test_event_queued_across_the_deadline_is_dropped(self):
        """An event that fires inside the window but cannot be emitted
        before the frame terminates is lost — the counter has stopped."""
        duration = 1e-6
        arbiter = ColumnBusArbiter(event_duration=duration)
        result = arbiter.arbitrate(
            events_from_times([1.4e-6, 1.5e-6]), deadline=2e-6
        )
        assert result.n_events == 1
        assert result.events[0].fire_time == pytest.approx(1.4e-6)

    def test_emission_exactly_at_deadline_is_dropped(self):
        """``emit_time >= deadline`` is exclusive: the counter sample at the
        termination instant no longer exists."""
        duration = 1e-6
        arbiter = ColumnBusArbiter(event_duration=duration)
        result = arbiter.arbitrate(events_from_times([0.0, 0.5e-6]), deadline=1e-6)
        assert result.n_events == 1
        assert result.events[0].emit_time == 0.0

    def test_emission_just_inside_deadline_survives(self):
        arbiter = ColumnBusArbiter(event_duration=1e-6)
        result = arbiter.arbitrate(events_from_times([0.0, 0.5e-6]), deadline=1e-6 + 1e-9)
        assert result.n_events == 2
        assert result.events[1].emit_time == pytest.approx(1e-6)

    def test_drops_do_not_occupy_the_bus(self):
        """A dropped event must not postpone anything (the pulse never made
        it onto the bus), and every post-deadline waiter drops with it."""
        duration = 1e-6
        arbiter = ColumnBusArbiter(event_duration=duration)
        result = arbiter.arbitrate(
            events_from_times([0.0, 0.1e-6, 0.2e-6, 0.3e-6]), deadline=2.5e-6
        )
        assert result.n_events == 3
        assert [e.emit_time for e in result.events] == pytest.approx(
            [0.0, 1e-6, 2e-6]
        )

    def test_zero_event_column_returns_empty_result(self):
        result = ColumnBusArbiter().arbitrate([], deadline=1e-6)
        assert result.n_events == 0
        assert result.n_queued == 0
        assert result.max_queue_delay == 0.0
        assert result.bus_busy_time == 0.0

    def test_zero_event_groups_in_batched_arbitration(self):
        from repro.sensor.column_bus import arbitrate_columns

        fire = np.zeros((3, 4))
        active = np.zeros((3, 4), dtype=bool)
        active[1, 2] = True
        fire[1, 2] = 1e-6
        rows = np.zeros((3, 4), dtype=np.int64)
        batch = arbitrate_columns(fire, active, rows, event_duration=5e-9)
        assert batch.n_delivered == 1
        assert batch.n_dropped == 0
        assert np.count_nonzero(batch.delivered[0]) == 0
        assert np.count_nonzero(batch.delivered[2]) == 0


class TestGateLevelColumnAgreesWithArbiter:
    """The explicit C_in/C_out chain simulation validates the analytic arbiter."""

    def test_same_events_and_order_under_contention(self):
        fire_times = [50e-9, 10e-9, 10e-9, None, 80e-9, None, 10e-9, 200e-9]
        duration = 20e-9
        column = GateLevelColumn(len(fire_times), event_duration=duration)
        gate_events = column.simulate(fire_times, time_step=2e-9)
        arbiter = ColumnBusArbiter(event_duration=duration)
        analytic = arbiter.arbitrate(
            [
                PixelEvent(row=row, col=0, fire_time=t)
                for row, t in enumerate(fire_times)
                if t is not None
            ]
        )
        assert [e.row for e in gate_events] == [e.row for e in analytic.events]

    def test_gate_level_loses_nothing(self):
        fire_times = [5e-9] * 16
        column = GateLevelColumn(16, event_duration=10e-9)
        events = column.simulate(fire_times, time_step=1e-9)
        assert len(events) == 16
        assert [event.row for event in events] == list(range(16))

    def test_gate_level_rejects_bad_time_step(self):
        column = GateLevelColumn(4, event_duration=5e-9)
        with pytest.raises(ValueError):
            column.simulate([None] * 4, time_step=10e-9)

    def test_gate_level_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            GateLevelColumn(4).simulate([1e-6] * 3)
