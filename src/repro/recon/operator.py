"""Rebuilding the measurement operator at the receiver.

The whole point of generating Φ with a seeded cellular automaton is that the
receiving end can reconstruct Φ *exactly* from the seed — no matrix is ever
transmitted or stored.  These helpers do precisely that, and package the
result into the centred :class:`~repro.cs.operators.SensingOperator` the
solvers expect.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ca.selection import ca_measurement_matrix
from repro.cs.dictionaries import Dictionary, make_dictionary
from repro.cs.operators import SensingOperator
from repro.sensor.imager import CompressedFrame
from repro.utils.validation import check_positive


def measurement_matrix_from_seed(
    seed_state: np.ndarray,
    n_samples: int,
    shape: Tuple[int, int],
    *,
    rule: int = 30,
    steps_per_sample: int = 1,
    warmup_steps: int = 8,
) -> np.ndarray:
    """Regenerate the 0/1 measurement matrix Φ from the CA seed.

    This must (and, by construction, does) produce bit-for-bit the same
    matrix the sensor used: both ends call the one batched builder,
    :func:`repro.ca.selection.ca_measurement_matrix`, so the capture and
    reconstruction matrices cannot drift apart.  The property is pinned by
    the round-trip property tests.
    """
    check_positive("n_samples", n_samples)
    rows, cols = shape
    return ca_measurement_matrix(
        int(n_samples),
        rows,
        cols,
        np.asarray(seed_state),
        rule=rule,
        steps_per_sample=steps_per_sample,
        warmup_steps=warmup_steps,
    ).astype(float)


def frame_operator(
    frame: CompressedFrame,
    *,
    dictionary: str = "dct",
    center: bool = True,
) -> Tuple[SensingOperator, float]:
    """Build the sensing operator for a captured frame.

    Returns the operator and the selection density used for centring (0.0
    when ``center`` is false).  Centring subtracts the mean entry from the
    0/1 matrix, which removes the large DC component shared by all rows of
    the XOR construction and is what makes smooth dictionaries usable.
    """
    phi = measurement_matrix_from_seed(
        frame.seed_state,
        frame.n_samples,
        (frame.config.rows, frame.config.cols),
        rule=frame.rule_number,
        steps_per_sample=frame.steps_per_sample,
        warmup_steps=frame.warmup_steps,
    )
    density = float(phi.mean()) if center else 0.0
    if center:
        phi = phi - density
    psi: Dictionary = make_dictionary(dictionary, (frame.config.rows, frame.config.cols))
    return SensingOperator(phi, psi), density
