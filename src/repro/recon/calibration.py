"""Calibration between counter codes and light intensity.

The sensor's digital image is made of *time* codes: the counter value at
which each pixel fired.  Bright pixels fire early (small codes), dark pixels
late (large codes), and the relationship is reciprocal —
``t = (V_rst - V_ref) * C / I_ph`` — so converting a reconstructed code image
back into a light-intensity image requires inverting that curve with the
conversion parameters (clock period, voltage swing, pixel capacitance) used
during capture.
"""

from __future__ import annotations


import numpy as np

from repro.pixel.time_encoder import TimeEncoder
from repro.sensor.tdc import GlobalCounterTDC
from repro.utils.validation import check_positive


def codes_to_intensity(
    codes: np.ndarray,
    *,
    encoder: TimeEncoder,
    tdc: GlobalCounterTDC,
    full_scale_current: float | None = None,
) -> np.ndarray:
    """Convert counter codes back into (relative or absolute) light intensity.

    Parameters
    ----------
    codes:
        Reconstructed code image (floats are fine — the reconstruction is
        continuous-valued).
    encoder, tdc:
        The conversion chain parameters used during capture.
    full_scale_current:
        When given, the result is normalised so this photocurrent maps to
        1.0; otherwise absolute photocurrents (A) are returned.
    """
    codes = np.asarray(codes, dtype=float)
    times = tdc.code_to_time(np.clip(codes, 0.0, tdc.max_code))
    times = np.maximum(times, tdc.clock_period * 1e-3)
    currents = encoder.photocurrent_from_time(times)
    if full_scale_current is not None:
        check_positive("full_scale_current", full_scale_current)
        return np.clip(currents / full_scale_current, 0.0, None)
    return currents


def intensity_to_codes(
    photocurrent: np.ndarray,
    *,
    encoder: TimeEncoder,
    tdc: GlobalCounterTDC,
) -> np.ndarray:
    """Forward map: photocurrent to the ideal counter code (no noise, no queueing)."""
    photocurrent = np.asarray(photocurrent, dtype=float)
    times = encoder.ideal_firing_times(photocurrent)
    return tdc.ideal_codes(times)
