"""The recon-equivalence invariant, end to end.

``reconstruct_frame(operator="structured")`` — the matrix-free default — must
produce the same image as ``operator="dense"`` — the executable reference —
to within tight floating-point tolerance, across dictionaries, non-square
geometries, CA sequencing variants (warm-up / steps-per-sample) and all five
solvers; and the batched multi-tile solve must agree with the per-tile path
the same way.  Whenever the solver stack or the operator algebra changes,
this suite is the tripwire: the dense path stays in the tree precisely so
the fast path can be pinned against it.
"""

import numpy as np
import pytest

from repro.cs.operators import StepSizeCache
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.operator import frame_operator
from repro.recon.pipeline import reconstruct_frame, reconstruct_tiled
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.shard import TiledSensorArray

#: The invariant's tolerance: solver outputs of the two operator flavours
#: agree to this absolute tolerance (code units; images span ~1000 codes).
EQUIV_ATOL = 1e-8


def capture(shape=(16, 16), *, seed=3, n_samples=90, scene_seed=1, **imager_kwargs):
    rows, cols = shape
    imager = CompressiveImager(
        SensorConfig(rows=rows, cols=cols), seed=seed, **imager_kwargs
    )
    scene = make_scene("blobs", shape, seed=scene_seed)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    return imager.capture(current, n_samples=n_samples)


class TestFrameOperatorFlavours:
    @pytest.mark.parametrize("shape", [(16, 16), (16, 32), (32, 16)])
    def test_density_is_bit_identical(self, shape):
        frame = capture(shape)
        _, dense_density = frame_operator(frame, operator="dense")
        _, structured_density = frame_operator(frame, operator="structured")
        assert dense_density == structured_density

    def test_materialised_phi_is_bit_identical(self, shape=(16, 16)):
        frame = capture(shape)
        dense_op, _ = frame_operator(frame, operator="dense")
        structured_op, _ = frame_operator(frame, operator="structured")
        assert structured_op.phi.tobytes() == dense_op.phi.tobytes()

    def test_unknown_flavour_rejected(self):
        frame = capture()
        with pytest.raises(ValueError, match="operator"):
            frame_operator(frame, operator="sparse")
        with pytest.raises(ValueError, match="operator"):
            reconstruct_frame(frame, operator="sparse")


class TestReconstructFrameEquivalence:
    @pytest.mark.parametrize("dictionary", ["identity", "dct", "haar"])
    @pytest.mark.parametrize("solver", ["fista", "ista", "iht", "omp", "cosamp"])
    def test_structured_matches_dense(self, dictionary, solver):
        frame = capture((16, 16))
        kwargs = dict(
            dictionary=dictionary, solver=solver, max_iterations=40, sparsity=12
        )
        dense = reconstruct_frame(frame, operator="dense", **kwargs)
        structured = reconstruct_frame(frame, operator="structured", **kwargs)
        np.testing.assert_allclose(
            structured.image, dense.image, atol=EQUIV_ATOL
        )
        assert structured.solver_result.n_iterations == (
            dense.solver_result.n_iterations
        )

    @pytest.mark.parametrize("shape", [(16, 32), (32, 16)])
    @pytest.mark.parametrize("solver", ["fista", "omp"])
    def test_non_square_shapes(self, shape, solver):
        frame = capture(shape, n_samples=150)
        kwargs = dict(solver=solver, max_iterations=40, sparsity=15)
        dense = reconstruct_frame(frame, operator="dense", **kwargs)
        structured = reconstruct_frame(frame, operator="structured", **kwargs)
        np.testing.assert_allclose(structured.image, dense.image, atol=EQUIV_ATOL)

    @pytest.mark.parametrize(
        "steps_per_sample,warmup_steps", [(1, 0), (2, 8), (3, 3)]
    )
    def test_ca_sequencing_variants(self, steps_per_sample, warmup_steps):
        frame = capture(
            (16, 16),
            steps_per_sample=steps_per_sample,
            warmup_steps=warmup_steps,
        )
        dense = reconstruct_frame(frame, operator="dense", max_iterations=40)
        structured = reconstruct_frame(frame, operator="structured", max_iterations=40)
        np.testing.assert_allclose(structured.image, dense.image, atol=EQUIV_ATOL)

    @pytest.mark.parametrize("seed", [3, 17, 90])
    def test_seeds(self, seed):
        frame = capture((16, 16), seed=seed, scene_seed=seed + 1)
        dense = reconstruct_frame(frame, operator="dense", max_iterations=40)
        structured = reconstruct_frame(frame, operator="structured", max_iterations=40)
        np.testing.assert_allclose(structured.image, dense.image, atol=EQUIV_ATOL)

    def test_default_flavour_is_structured(self):
        frame = capture()
        default = reconstruct_frame(frame, max_iterations=30)
        structured = reconstruct_frame(
            frame, max_iterations=30, operator="structured"
        )
        assert default.image.tobytes() == structured.image.tobytes()


class TestTiledEquivalence:
    @pytest.fixture(scope="class")
    def tiled_capture(self):
        array = TiledSensorArray(
            (32, 48), tile_shape=(16, 16), compression_ratio=0.3, seed=6
        )
        scene = make_scene("blobs", (32, 48), seed=2)
        current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
        return array.capture(current)

    def test_batched_structured_matches_dense_per_tile(self, tiled_capture):
        """The headline chain: batched structured vs the dense per-tile loop."""
        batched = reconstruct_tiled(tiled_capture, max_iterations=40)
        dense = reconstruct_tiled(
            tiled_capture, max_iterations=40, executor="serial", operator="dense"
        )
        np.testing.assert_allclose(batched.image, dense.image, atol=EQUIV_ATOL)

    def test_cosamp_honours_iteration_budget(self, tiled_capture):
        """The CoSaMP clamp is gone: an explicit budget reaches the solver."""
        _, frame = next(iter(tiled_capture.frames()))
        generous = reconstruct_frame(
            frame, solver="cosamp", sparsity=4, max_iterations=50
        )
        assert generous.solver_result.n_iterations <= 50
        single = reconstruct_frame(
            frame, solver="cosamp", sparsity=40, max_iterations=1
        )
        assert single.solver_result.n_iterations == 1
        # And the classic default of 30 still applies when nothing is passed.
        default = reconstruct_frame(frame, solver="cosamp", sparsity=40)
        assert default.solver_result.n_iterations <= 30


class TestSolveTilesBatched:
    def test_empty_input(self):
        from repro.recon.batch import solve_tiles_batched

        assert solve_tiles_batched([]) == []

    def test_heterogeneous_geometry_rejected(self):
        from repro.recon.batch import solve_tiles_batched

        small = capture((16, 16))
        large = capture((16, 32), n_samples=120)
        with pytest.raises(ValueError, match="equal-geometry"):
            solve_tiles_batched([small, large])

    def test_greedy_solver_rejected(self):
        from repro.recon.batch import solve_tiles_batched

        with pytest.raises(ValueError, match="solver"):
            solve_tiles_batched([capture()], solver="omp")

    def test_explicit_regularization_matches_per_tile(self):
        from repro.recon.batch import solve_tiles_batched

        frame = capture()
        batched = solve_tiles_batched(
            [frame], regularization=5.0, max_iterations=30
        )[0]
        solo = reconstruct_frame(frame, regularization=5.0, max_iterations=30)
        np.testing.assert_allclose(batched.image, solo.image, atol=EQUIV_ATOL)

    def test_all_cached_steps_skip_power_iteration(self):
        from repro.recon.batch import solve_tiles_batched

        frame = capture()
        cache = StepSizeCache()
        first = solve_tiles_batched([frame], max_iterations=20, step_cache=cache)[0]
        hits_before = cache.exact_hits
        again = solve_tiles_batched([frame], max_iterations=20, step_cache=cache)[0]
        assert cache.exact_hits > hits_before
        assert first.image.tobytes() == again.image.tobytes()


class TestStepCacheEndToEnd:
    def test_exact_hits_are_deterministic(self):
        frame = capture()
        cache = StepSizeCache()
        first = reconstruct_frame(frame, max_iterations=30, step_cache=cache)
        assert len(cache) == 1
        # Re-solving the very same frame hits the exact key and reproduces
        # the image bit for bit.
        second = reconstruct_frame(frame, max_iterations=30, step_cache=cache)
        assert cache.exact_hits >= 1
        assert first.image.tobytes() == second.image.tobytes()

    def test_gop_chain_warm_start_stays_close(self):
        imager = CompressiveImager(SensorConfig(rows=16, cols=16), seed=5)
        scenes = [make_scene("blobs", (16, 16), seed=index) for index in range(3)]
        frames = imager.capture_batch(
            [
                PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
                for scene in scenes
            ],
            n_samples=90,
        )
        cache = StepSizeCache()
        chained = [
            reconstruct_frame(frame, max_iterations=40, step_cache=cache)
            for frame in frames
        ]
        isolated = [
            reconstruct_frame(frame, max_iterations=40) for frame in frames
        ]
        # Later frames of the chain warm-start their power iteration from the
        # previous frame's converged vector...
        assert cache.warm_hits >= 2
        # ...which perturbs only the step-size estimate: the reconstructions
        # stay numerically interchangeable with the isolated solves (within
        # a hundredth of a code on a ~1000-code scale; this is the round-off
        # trade that keeps warm starts opt-in rather than default).
        for warm, cold in zip(chained, isolated):
            np.testing.assert_allclose(warm.image, cold.image, atol=5e-2)

    def test_tiled_video_cache_accumulates(self):
        array = TiledSensorArray(
            (32, 32), tile_shape=(16, 16), compression_ratio=0.3, seed=8
        )
        scenes = [make_scene("blobs", (32, 32), seed=40 + i) for i in range(2)]
        captures = array.capture_scene_sequence(scenes)
        cache = StepSizeCache()
        for capture_result in captures:
            reconstruct_tiled(capture_result, max_iterations=30, step_cache=cache)
        # 2 frames x 4 tiles, each a distinct operator identity.
        assert len(cache) == 8
        assert cache.warm_hits >= 4
