"""Tests for the top-level CompressiveImager."""

import numpy as np
import pytest

from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


def photocurrents(shape, seed=0):
    scene = make_scene("blobs", shape, seed=seed)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    return conversion.convert(scene)


class TestConstruction:
    def test_conversion_window_must_fit_sample_period(self):
        # A huge counter at a slow clock cannot finish within the 20 us budget.
        config = SensorConfig(clock_frequency=1e6)
        with pytest.raises(ValueError, match="conversion window"):
            CompressiveImager(config)

    def test_ca_seed_is_rows_plus_cols_bits(self, small_imager, small_config):
        assert small_imager.selection.seed_state.size == small_config.rows + small_config.cols

    def test_same_seed_same_ca_seed_state(self, small_config):
        a = CompressiveImager(small_config, seed=7)
        b = CompressiveImager(small_config, seed=7)
        assert np.array_equal(a.selection.seed_state, b.selection.seed_state)


class TestExposureAndCodes:
    def test_auto_expose_keeps_pixels_inside_window(self, small_imager, small_config):
        current = photocurrents((16, 16))
        small_imager.auto_expose(current)
        codes = small_imager.digital_image(current)
        assert codes.max() < small_imager.tdc.max_code
        assert codes.min() >= 0

    def test_digital_image_monotonic_in_light(self, small_imager):
        current = photocurrents((16, 16))
        small_imager.auto_expose(current)
        codes = small_imager.digital_image(current)
        brightest = np.unravel_index(np.argmax(current), current.shape)
        darkest = np.unravel_index(np.argmin(current), current.shape)
        assert codes[brightest] <= codes[darkest]

    def test_wrong_shape_rejected(self, small_imager):
        with pytest.raises(ValueError):
            small_imager.firing_times(np.zeros((8, 8)))

    def test_auto_expose_requires_positive_currents(self, small_imager):
        with pytest.raises(ValueError):
            small_imager.auto_expose(np.zeros((16, 16)))


class TestBehaviouralCapture:
    def test_default_sample_count_follows_compression_ratio(self, small_imager, small_config):
        frame = small_imager.capture(photocurrents((16, 16)))
        assert frame.n_samples == small_config.samples_per_frame

    def test_samples_match_phi_times_codes_without_lsb_error(self, small_imager):
        """Behavioural capture is exactly y = Φ x when the LSB error is disabled."""
        current = photocurrents((16, 16))
        frame = small_imager.capture(current, n_samples=40, lsb_error=False)
        phi = frame.measurement_matrix()
        expected = phi.astype(np.int64) @ frame.digital_image.reshape(-1)
        assert np.array_equal(frame.samples, expected)

    def test_samples_fit_in_compressed_sample_bits(self, small_imager, small_config):
        frame = small_imager.capture(photocurrents((16, 16)), n_samples=64)
        assert frame.samples.max() < (1 << small_config.compressed_sample_bits)
        assert frame.samples.min() >= 0

    def test_lsb_error_perturbs_samples_only_slightly(self, small_imager):
        current = photocurrents((16, 16))
        clean = small_imager.capture(current, n_samples=50, lsb_error=False)
        noisy = small_imager.capture(current, n_samples=50, lsb_error=True)
        difference = np.abs(noisy.samples - clean.samples)
        assert difference.max() <= 16  # a handful of +1 LSB bumps per sample at most
        assert noisy.metadata["n_lsb_errors"] >= 0

    def test_capture_is_reproducible(self, small_config):
        current = photocurrents((16, 16))
        a = CompressiveImager(small_config, seed=3).capture(current, n_samples=30)
        b = CompressiveImager(small_config, seed=3).capture(current, n_samples=30)
        assert np.array_equal(a.samples, b.samples)

    def test_metadata_fields_present(self, small_imager):
        frame = small_imager.capture(photocurrents((16, 16)), n_samples=10)
        for key in ("fidelity", "n_lsb_errors", "n_lost_events", "n_saturated_pixels"):
            assert key in frame.metadata

    def test_behavioural_metadata_is_modelled(self, small_imager):
        """Behavioural captures report modelled event statistics, not zeros."""
        frame = small_imager.capture(photocurrents((16, 16)), n_samples=20)
        assert frame.metadata["event_statistics"] == "modelled"
        # Auto-exposed scene: nothing falls outside the window...
        assert frame.metadata["n_lost_events"] == 0
        # ...but the overlap model still predicts a non-zero queueing
        # expectation (a float — it is an expectation, not a count).
        assert isinstance(frame.metadata["n_queued_events"], float)
        assert frame.metadata["n_queued_events"] > 0.0

    def test_behavioural_lost_count_matches_event_prefilter(self, small_config):
        """The modelled loss count equals the event engine's out-of-window
        losses — the behavioural sum keeps those pixels at ``max_code``
        while the event engine drops their pulse, which is exactly the
        distinction the metadata documents."""
        current = photocurrents((16, 16), seed=5) * 1e-3  # dim: most saturate
        behavioural = CompressiveImager(small_config, seed=11).capture(
            current, n_samples=15, auto_expose=False
        )
        event = CompressiveImager(small_config, seed=11).capture(
            current, n_samples=15, auto_expose=False, fidelity="event"
        )
        assert behavioural.metadata["n_lost_events"] > 0
        assert (
            behavioural.metadata["n_lost_events"] == event.metadata["n_lost_events"]
        )

    def test_keep_digital_image_flag(self, small_imager):
        frame = small_imager.capture(
            photocurrents((16, 16)), n_samples=5, keep_digital_image=False
        )
        assert frame.digital_image is None

    def test_invalid_fidelity_rejected(self, small_imager):
        with pytest.raises(ValueError):
            small_imager.capture(photocurrents((16, 16)), n_samples=5, fidelity="spice")


class TestEventCapture:
    def test_event_capture_close_to_behavioural(self, small_imager):
        """The event-accurate path must agree with Φx up to the ±1 LSB queueing error."""
        current = photocurrents((16, 16), seed=3)
        behavioural = small_imager.capture(current, n_samples=12, lsb_error=False)
        event = small_imager.capture(current, n_samples=12, fidelity="event")
        assert event.metadata["n_lost_events"] == 0
        n_selected_bound = small_imager.config.n_pixels
        assert np.all(np.abs(event.samples - behavioural.samples) <= n_selected_bound)
        # The relative error of each sample stays tiny.
        relative = np.abs(event.samples - behavioural.samples) / behavioural.samples
        assert relative.max() < 0.02

    def test_event_capture_without_lsb_error_matches_exactly(self, small_imager):
        current = photocurrents((16, 16), seed=4)
        behavioural = small_imager.capture(current, n_samples=8, lsb_error=False)
        event = small_imager.capture(current, n_samples=8, fidelity="event", lsb_error=False)
        assert event.metadata["n_lost_events"] == 0
        assert np.array_equal(event.samples, behavioural.samples)

    def test_event_capture_reports_queueing(self, small_imager):
        # A constant scene makes all selected pixels of a column fire together,
        # which exercises the token protocol heavily.
        current = np.full((16, 16), 5e-9)
        frame = small_imager.capture(current, n_samples=4, fidelity="event")
        assert frame.metadata["n_queued_events"] > 0


class TestCompressedFrame:
    def test_compression_ratio_and_bit_savings(self, small_imager):
        frame = small_imager.capture(photocurrents((16, 16)), n_samples=51)
        assert frame.compression_ratio == pytest.approx(51 / 256)
        assert frame.raw_bits == 256 * 8
        assert frame.compressed_bits == 51 * frame.config.compressed_sample_bits
        assert frame.bit_savings == pytest.approx(1 - frame.compressed_bits / frame.raw_bits)

    def test_measurement_matrix_reproducible_from_seed_only(self, small_imager):
        """Receiver-side property: the frame's seed fully determines Φ."""
        frame = small_imager.capture(photocurrents((16, 16)), n_samples=20)
        phi_a = frame.measurement_matrix()
        phi_b = frame.measurement_matrix()
        assert np.array_equal(phi_a, phi_b)
        assert phi_a.shape == (20, 256)

    def test_ideal_samples_match_behavioural_without_error(self, small_imager):
        current = photocurrents((16, 16))
        frame = small_imager.capture(current, n_samples=15, lsb_error=False)
        codes = frame.digital_image
        small_imager.selection.reset()
        ideal = small_imager.ideal_samples(codes, 15)
        assert np.array_equal(ideal, frame.samples)

    def test_capture_scene_wrapper(self, small_imager):
        frame = small_imager.capture_scene(make_scene("gradient", (16, 16), seed=1), n_samples=10)
        assert frame.n_samples == 10
