"""Pure-python summary statistics shared by every latency report.

:func:`percentile` moved here from ``repro.stream.hub`` (which still
re-exports it) so the hub, the metrics snapshots, the benchmarks and the
operator docs all compute quantiles through one function — by the same
linear-interpolation rule as ``numpy.percentile(..., method="linear")``,
which the property suite pins exactly.
"""

from __future__ import annotations

from collections.abc import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``values`` by linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    position = (len(ordered) - 1) * (q / 100.0)
    below = int(position)
    above = min(below + 1, len(ordered) - 1)
    weight = position - below
    return ordered[below] * (1.0 - weight) + ordered[above] * weight


#: The quantiles every latency summary reports (p50 / p90 / p99).
SUMMARY_QUANTILES: tuple[float, ...] = (50.0, 90.0, 99.0)


def quantile_summary(
    values: Sequence[float], quantiles: Sequence[float] = SUMMARY_QUANTILES
) -> dict[str, float]:
    """``{"p50": ..., "p90": ..., "p99": ...}`` for a latency series.

    >>> summary = quantile_summary([1.0, 2.0, 3.0, 4.0])
    >>> summary["p50"]
    2.5
    """
    return {f"p{q:g}": percentile(values, q) for q in quantiles}
