"""Runnable demo: a fleet of camera nodes ingesting into one ReceiverHub.

Many simulated camera nodes — each its own imager, seed and stream id —
stream concurrently into a single asyncio hub, first over bounded in-memory
loopback channels, then over real localhost TCP sockets.  The hub demuxes
by the stream id already carried in every chunk header, keeps one session
(seed chains, frame state) per stream, and round-robins all reconstruction
work across streams so no camera can starve the rest.

The demo prints the fleet's aggregate statistics (streams, frames, bytes,
p99 frame latency), verifies a sampled stream decoded bit-exactly against
an isolated capture with the same seed, and shows the solve scheduler's
dispatch interleaving — the fairness audit trail.

See docs/OPERATIONS.md for the operator's guide (sizing watermarks and
executors, reading these stats in production, failure modes) and
examples/stream_loopback.py for the single-node streaming pipeline this
builds on.

Run:  python examples/fleet_ingest.py
"""

import asyncio

import numpy as np

from repro import (
    CameraNode,
    CompressiveImager,
    LoopbackTransport,
    ReceiverHub,
    SensorConfig,
    make_scene,
)
from repro.sensor.video import VideoSequencer
from repro.stream.hub import percentile
from repro.stream.transport import connect_tcp

N_NODES = 30
N_FRAMES = 2
CONFIG = SensorConfig(rows=16, cols=16)
SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(N_FRAMES)]


def make_sequencer(stream_id):
    return VideoSequencer(
        CompressiveImager(CONFIG, seed=stream_id),
        samples_per_frame=40,
        seed=stream_id,
    )


async def stream_node(node):
    """One node's capture loop: a short GOP video sequence."""
    return await node.stream_video(make_sequencer(node.stream_id), SCENES)


async def loopback_fleet():
    """N nodes over bounded in-memory pipes, one hub, one event loop."""
    hub = ReceiverHub(reconstruct=False)

    async def one_node(stream_id):
        transport = LoopbackTransport(max_buffered=4)
        node = CameraNode(transport, stream_id=stream_id, gop_size=N_FRAMES)
        send = asyncio.create_task(stream_node(node))
        await hub.attach(transport)
        await send

    await asyncio.gather(*(one_node(n) for n in range(1, N_NODES + 1)))
    await hub.close()
    return hub


async def tcp_fleet():
    """The same fleet over real localhost sockets via hub.serve()."""
    hub = ReceiverHub(reconstruct=False)
    server, port = await hub.serve()

    async def one_node(stream_id):
        transport = await connect_tcp("127.0.0.1", port)
        node = CameraNode(transport, stream_id=stream_id, gop_size=N_FRAMES)
        await stream_node(node)

    await asyncio.gather(*(one_node(n) for n in range(1, N_NODES + 1)))
    await hub.drain()
    await hub.close()
    return hub, port


def report(label, hub):
    snapshot = hub.stats()
    p99_ms = percentile(snapshot.frame_latencies, 99) * 1e3
    print(f"{label}: {snapshot.n_completed} streams, "
          f"{snapshot.n_frames} frames, {snapshot.n_bytes} bytes, "
          f"{snapshot.n_failed} failures, p99 frame latency {p99_ms:.3f} ms")


def main() -> None:
    print(f"Ingesting {N_NODES} camera nodes x {N_FRAMES} frames into one hub\n")

    hub = asyncio.run(loopback_fleet())
    report("loopback", hub)

    # Spot-check: the demuxed stream matches an isolated capture bit for bit.
    sample = next(r for r in hub.completed if r.stream_id == N_NODES)
    direct = make_sequencer(N_NODES).capture_sequence(SCENES).frames
    bit_exact = all(
        np.array_equal(received.capture.samples, expected.samples)
        and np.array_equal(received.capture.seed_state, expected.seed_state)
        for received, expected in zip(sample.frames, direct)
    )
    print(f"stream {N_NODES} demuxed bit-exactly (samples + seed chain): {bit_exact}")

    tcp_hub, port = asyncio.run(tcp_fleet())
    report(f"tcp :{port}", tcp_hub)

    print(f"\nPer-stream sessions kept {N_NODES} independent GOP seed chains; "
          "only keyframes carried seeds, every other seed was re-derived "
          "per stream from the free-running CA overlap.")


if __name__ == "__main__":
    main()
