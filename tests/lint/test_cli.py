"""CLI behaviour of ``python -m repro._lint`` and the whole-repo clean pass."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro._lint import iter_python_files, lint_paths, rule_ids

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _run_lint(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro._lint", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_whole_repo_is_clean_in_process():
    """The acceptance bar: zero findings over src, tests and examples."""
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "examples"]
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exits_zero_on_clean_tree():
    result = _run_lint("src", "tests", "examples")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_exits_one_on_findings(tmp_path):
    rogue = tmp_path / "src" / "repro" / "sensor"
    rogue.mkdir(parents=True)
    (rogue / "rogue.py").write_text(
        "import numpy as np\n\n\ndef jitter(n):\n    return np.random.rand(n)\n",
        encoding="utf-8",
    )
    result = _run_lint(str(tmp_path / "src"))
    assert result.returncode == 1
    assert "REPRO003" in result.stdout
    # file:line:col prefix so editors can jump to the violation.
    assert "rogue.py:5:" in result.stdout


def test_cli_disable_flag_drops_the_rule(tmp_path):
    rogue = tmp_path / "src" / "repro" / "sensor"
    rogue.mkdir(parents=True)
    (rogue / "rogue.py").write_text(
        "import numpy as np\n\n\ndef jitter(n):\n    return np.random.rand(n)\n",
        encoding="utf-8",
    )
    result = _run_lint("--disable", "REPRO003", str(tmp_path / "src"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_json_output(tmp_path):
    rogue = tmp_path / "src" / "repro" / "sensor"
    rogue.mkdir(parents=True)
    (rogue / "rogue.py").write_text(
        "import numpy as np\n\n\ndef jitter(n):\n    return np.random.rand(n)\n",
        encoding="utf-8",
    )
    result = _run_lint("--json", str(tmp_path / "src"))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload[0]["rule_id"] == "REPRO003"
    assert payload[0]["line"] == 5
    assert payload[0]["hint"]


def test_cli_list_rules():
    result = _run_lint("--list-rules")
    assert result.returncode == 0
    for rule_id in rule_ids():
        assert rule_id in result.stdout


def test_cli_wire_fingerprint_matches_pins():
    from repro._lint.rules.frozen_wire import EXPECTED_FINGERPRINTS

    result = _run_lint("--wire-fingerprint")
    assert result.returncode == 0
    for module_rel, digest in EXPECTED_FINGERPRINTS.items():
        assert digest in result.stdout, f"{module_rel} digest not reported"


def test_cli_exit_two_on_unreadable_path():
    result = _run_lint("no/such/dir")
    assert result.returncode == 2


def test_iter_python_files_skips_caches(tmp_path):
    package = tmp_path / "pkg"
    cache = package / "__pycache__"
    cache.mkdir(parents=True)
    (package / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (cache / "mod.cpython-311.pyc").write_text("", encoding="utf-8")
    files = list(iter_python_files([package]))
    assert [f.name for f in files] == ["mod.py"]


@pytest.mark.parametrize("subdir", ["src", "tests", "examples"])
def test_lint_scope_covers_tree(subdir):
    """Every .py file under the linted roots is actually visited."""
    root = REPO_ROOT / subdir
    visited = set(iter_python_files([root]))
    on_disk = {
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    }
    assert visited == on_disk
