"""E16 — fleet ingest hub throughput (many nodes → one receiver).

The ``hub`` group times :class:`~repro.stream.hub.ReceiverHub` muxing a
fleet of loopback camera nodes on one event loop, reconstruction disabled so
the numbers isolate the hub machinery (connection fan-in, per-chunk demux,
per-stream session FSMs, seed-chain decode, stats accounting):

* ``test_hub_fan_in_40_nodes`` — 40 concurrent 16x16 GOP-video nodes, two
  frames each: the sustained **streams/s** of the accept-to-complete path;
* ``test_hub_p99_frame_latency`` — the p99 of per-frame latency (first
  chunk landed → frame fully decoded) across the same fan-in, i.e. what a
  fleet operator would alert on (see docs/OPERATIONS.md).

Both are wired into ``benchmarks/baseline.json``, so CI's regression gate
(``benchmarks/check_regression.py``) guards the fleet path exactly like the
single-node streaming hot path.
"""

import asyncio

import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.hub import ReceiverHub, percentile
from repro.stream.node import CameraNode
from repro.stream.transport import LoopbackTransport

N_NODES = 40
N_FRAMES = 2
CONFIG = SensorConfig(rows=16, cols=16)
SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(N_FRAMES)]


def _run_fleet_once():
    async def scenario():
        hub = ReceiverHub(reconstruct=False)

        async def one_node(stream_id):
            transport = LoopbackTransport(max_buffered=4)
            sequencer = VideoSequencer(
                CompressiveImager(CONFIG, seed=stream_id),
                samples_per_frame=40,
                seed=stream_id,
            )
            node = CameraNode(transport, stream_id=stream_id, gop_size=N_FRAMES)
            send = asyncio.create_task(
                node.stream_video(sequencer, SCENES, keep_digital_image=False)
            )
            await hub.attach(transport)
            await send

        await asyncio.gather(
            *(one_node(stream_id) for stream_id in range(1, N_NODES + 1))
        )
        await hub.close()
        return hub

    return asyncio.run(scenario())


@pytest.mark.benchmark(group="hub")
def test_hub_fan_in_40_nodes(benchmark):
    """Streams/sec sustained by one hub muxing 40 concurrent video nodes."""
    hub = benchmark.pedantic(_run_fleet_once, rounds=3, iterations=1)
    assert len(hub.completed) == N_NODES
    assert not hub.failures
    streams_per_second = N_NODES / benchmark.stats.stats.median
    print(f"\nhub fan-in: {streams_per_second:.1f} streams/s "
          f"({N_NODES} nodes x {N_FRAMES} frames)")


@pytest.mark.benchmark(group="hub")
def test_hub_p99_frame_latency(benchmark):
    """p99 of first-chunk→frame-decoded latency across the 40-node fleet."""
    hub = benchmark.pedantic(_run_fleet_once, rounds=3, iterations=1)
    latencies = hub.stats().frame_latencies
    assert len(latencies) == N_NODES * N_FRAMES
    p99 = percentile(latencies, 99)
    print(f"\nhub p99 frame latency: {p99 * 1e3:.1f} ms "
          f"(median wall {benchmark.stats.stats.median * 1e3:.1f} ms)")
