"""Rule registry: one module per architectural contract."""

from __future__ import annotations


from repro._lint.rules.async_hygiene import RULE as ASYNC_HYGIENE
from repro._lint.rules.base import Rule
from repro._lint.rules.dense_phi import RULE as DENSE_PHI
from repro._lint.rules.frozen_wire import RULE as FROZEN_WIRE
from repro._lint.rules.rng_discipline import RULE as RNG_DISCIPLINE
from repro._lint.rules.shared_phi import RULE as SHARED_PHI
from repro._lint.rules.timing import RULE as TIMING_DISCIPLINE

#: Every registered rule, in rule-id order.
RULES: tuple[Rule, ...] = (
    SHARED_PHI,         # REPRO001
    DENSE_PHI,          # REPRO002
    RNG_DISCIPLINE,     # REPRO003
    ASYNC_HYGIENE,      # REPRO004
    FROZEN_WIRE,        # REPRO005
    TIMING_DISCIPLINE,  # REPRO006
)


def rule_ids() -> tuple[str, ...]:
    """The registered rule ids, in order."""
    return tuple(rule.rule_id for rule in RULES)


__all__ = ["RULES", "Rule", "rule_ids"]
