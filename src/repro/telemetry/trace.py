"""Per-frame lifecycle traces: where did frame 37 of stream 4 spend its time?

A :class:`FrameTracer` keeps one :class:`FrameTrace` per ``(stream_id,
frame_index)``, each holding named :class:`Span` intervals for the pipeline
stages (``capture → encode → transport → decode → queue_wait → solve``).
Three properties shape the implementation:

* **Merge semantics** — tiled and segmented frames report the same stage
  several times (once per tile / segment / chunk).  Repeated ``begin`` keeps
  the earliest start and repeated ``end`` keeps the latest end, so a span is
  always the envelope of the work for that stage of that frame.
* **Half-open tolerance** — the transport span starts on the node and ends
  on the hub.  Over loopback both halves share one tracer and the span
  joins; over TCP each process sees only its half, so ``end`` without an
  open ``begin`` is a no-op rather than an error.
* **Thread safety + bounded memory** — solve spans close on executor
  threads, and a long-running hub must not grow without bound, so the
  tracer locks every mutation and evicts the oldest frames past
  ``max_frames``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.telemetry.clock import MONOTONIC_CLOCK, Clock

__all__ = [
    "SPAN_CAPTURE",
    "SPAN_DECODE",
    "SPAN_ENCODE",
    "SPAN_QUEUE_WAIT",
    "SPAN_SOLVE",
    "SPAN_TRANSPORT",
    "STAGES",
    "FrameTrace",
    "FrameTracer",
    "Span",
]

SPAN_CAPTURE = "capture"
SPAN_ENCODE = "encode"
SPAN_TRANSPORT = "transport"
SPAN_DECODE = "decode"
SPAN_QUEUE_WAIT = "queue_wait"
SPAN_SOLVE = "solve"

#: Pipeline stages in wire order — the order a frame experiences them.
STAGES: tuple[str, ...] = (
    SPAN_CAPTURE,
    SPAN_ENCODE,
    SPAN_TRANSPORT,
    SPAN_DECODE,
    SPAN_QUEUE_WAIT,
    SPAN_SOLVE,
)


@dataclass
class Span:
    """One named stage interval within a frame's lifecycle.

    ``start``/``end`` are clock readings; either may be ``None`` while the
    span is open (or when only one half of a cross-process stage was seen).
    """

    name: str
    start: float | None = None
    end: float | None = None

    @property
    def duration(self) -> float | None:
        """Seconds from start to end, or ``None`` while incomplete."""
        if self.start is None or self.end is None:
            return None
        return max(0.0, self.end - self.start)

    def merge_begin(self, timestamp: float) -> None:
        self.start = timestamp if self.start is None else min(self.start, timestamp)

    def merge_end(self, timestamp: float) -> None:
        self.end = timestamp if self.end is None else max(self.end, timestamp)


@dataclass
class FrameTrace:
    """Every recorded span for one ``(stream_id, frame_index)``."""

    stream_id: int
    frame_index: int
    spans: dict[str, Span] = field(default_factory=dict)

    def duration(self, name: str) -> float | None:
        """Seconds spent in stage ``name``, or ``None`` if not (fully) seen."""
        span = self.spans.get(name)
        return None if span is None else span.duration

    @property
    def total(self) -> float | None:
        """Envelope seconds from the first span start to the last span end."""
        starts = [s.start for s in self.spans.values() if s.start is not None]
        ends = [s.end for s in self.spans.values() if s.end is not None]
        if not starts or not ends:
            return None
        return max(0.0, max(ends) - min(starts))

    def as_dict(self) -> dict[str, float]:
        """``{stage: seconds}`` for every completed span, in wire order."""
        out: dict[str, float] = {}
        ordered = sorted(
            self.spans.values(),
            key=lambda s: (STAGES.index(s.name) if s.name in STAGES else len(STAGES)),
        )
        for span in ordered:
            if span.duration is not None:
                out[span.name] = span.duration
        return out

    def describe(self) -> str:
        """One human line: ``stream 4 frame 37: capture=1.2ms ... solve=8.1ms``."""
        stages = ", ".join(
            f"{name}={seconds * 1e3:.3f}ms" for name, seconds in self.as_dict().items()
        )
        return f"stream {self.stream_id} frame {self.frame_index}: {stages}"


class FrameTracer:
    """Bounded, thread-safe store of per-frame lifecycle traces."""

    def __init__(self, *, clock: Clock | None = None, max_frames: int = 1024) -> None:
        if max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {max_frames}")
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._max_frames = max_frames
        self._lock = threading.Lock()
        self._traces: OrderedDict[tuple[int, int], FrameTrace] = OrderedDict()
        self.n_evicted = 0

    def _trace(self, stream_id: int, frame_index: int) -> FrameTrace:
        key = (stream_id, frame_index)
        trace = self._traces.get(key)
        if trace is None:
            trace = FrameTrace(stream_id=stream_id, frame_index=frame_index)
            self._traces[key] = trace
            while len(self._traces) > self._max_frames:
                self._traces.popitem(last=False)
                self.n_evicted += 1
        return trace

    def begin(self, stream_id: int, frame_index: int, name: str) -> None:
        """Open (or widen) stage ``name`` at the current clock reading."""
        timestamp = self._clock.now()
        with self._lock:
            trace = self._trace(stream_id, frame_index)
            span = trace.spans.get(name)
            if span is None:
                span = Span(name=name)
                trace.spans[name] = span
            span.merge_begin(timestamp)

    def end(self, stream_id: int, frame_index: int, name: str) -> float | None:
        """Close (or extend) stage ``name``; returns its duration so far.

        An ``end`` for a span that was never begun *in this tracer* is a
        no-op returning ``None`` — that is the TCP half of a cross-process
        transport span, not a bug.
        """
        timestamp = self._clock.now()
        with self._lock:
            trace = self._traces.get((stream_id, frame_index))
            if trace is None:
                return None
            span = trace.spans.get(name)
            if span is None or span.start is None:
                return None
            span.merge_end(timestamp)
            return span.duration

    def add_span(
        self, stream_id: int, frame_index: int, name: str, start: float, end: float
    ) -> float | None:
        """Record a stage measured externally (e.g. one interval per GOP)."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts ({end} < {start})")
        with self._lock:
            trace = self._trace(stream_id, frame_index)
            span = trace.spans.get(name)
            if span is None:
                span = Span(name=name)
                trace.spans[name] = span
            span.merge_begin(start)
            span.merge_end(end)
            return span.duration

    def get(self, stream_id: int, frame_index: int) -> FrameTrace | None:
        with self._lock:
            return self._traces.get((stream_id, frame_index))

    def traces(self) -> list[FrameTrace]:
        """Every retained trace, oldest first."""
        with self._lock:
            return list(self._traces.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def slowest(self, n: int = 10, *, stage: str | None = None) -> list[FrameTrace]:
        """The ``n`` slowest frames by ``stage`` (default: total envelope)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")

        def sort_key(trace: FrameTrace) -> float:
            value = trace.total if stage is None else trace.duration(stage)
            return -1.0 if value is None else value

        with self._lock:
            ranked = sorted(self._traces.values(), key=sort_key, reverse=True)
        return [
            trace
            for trace in ranked[:n]
            if (trace.total if stage is None else trace.duration(stage)) is not None
        ]
