"""Tests for the moving-scene generators."""

import numpy as np
import pytest

from repro.optics.motion import (
    brightness_ramp_sequence,
    drifting_sequence,
    orbiting_blob_sequence,
    random_walk_sequence,
    translate_scene,
)


class TestTranslateScene:
    def test_wraps_around(self):
        scene = np.arange(16, dtype=float).reshape(4, 4)
        shifted = translate_scene(scene, 1, 0)
        assert np.array_equal(shifted[0], scene[3])

    def test_zero_shift_is_identity(self):
        scene = np.random.default_rng(0).random((8, 8))
        assert np.array_equal(translate_scene(scene, 0, 0), scene)

    def test_full_period_shift_is_identity(self):
        scene = np.random.default_rng(1).random((8, 8))
        assert np.array_equal(translate_scene(scene, 8, 8), scene)


class TestSequences:
    def test_drifting_sequence_preserves_content(self):
        frames = drifting_sequence("blobs", 5, (32, 32), velocity=(2, 1), seed=3)
        assert len(frames) == 5
        # Cyclic translation preserves the histogram exactly.
        for frame in frames[1:]:
            assert np.allclose(np.sort(frame.ravel()), np.sort(frames[0].ravel()))

    def test_orbiting_blob_moves(self):
        frames = orbiting_blob_sequence(8, (32, 32))
        centroids = []
        for frame in frames:
            rows, cols = np.indices(frame.shape)
            weight = frame - frame.min()
            centroids.append(
                (np.sum(rows * weight) / weight.sum(), np.sum(cols * weight) / weight.sum())
            )
        distinct = {(round(r, 1), round(c, 1)) for r, c in centroids}
        assert len(distinct) > 4

    def test_orbiting_blob_values_in_range(self):
        for frame in orbiting_blob_sequence(4, (16, 16)):
            assert frame.min() >= 0.0
            assert frame.max() <= 1.0

    def test_brightness_ramp_is_monotone(self):
        frames = brightness_ramp_sequence("gradient", 5, (16, 16), low=0.2, high=1.0, seed=1)
        means = [frame.mean() for frame in frames]
        assert all(b >= a - 1e-12 for a, b in zip(means, means[1:]))

    def test_brightness_ramp_validates_range(self):
        with pytest.raises(ValueError):
            brightness_ramp_sequence("gradient", 3, low=0.8, high=0.5)

    def test_random_walk_reproducible(self):
        a = random_walk_sequence("blobs", 4, (16, 16), seed=9)
        b = random_walk_sequence("blobs", 4, (16, 16), seed=9)
        for frame_a, frame_b in zip(a, b):
            assert np.array_equal(frame_a, frame_b)

    def test_sequences_reject_zero_frames(self):
        with pytest.raises(ValueError):
            drifting_sequence("blobs", 0)
        with pytest.raises(ValueError):
            orbiting_blob_sequence(0)
