"""Deterministic random-number handling.

Everything in the library that involves randomness — CA seeds, LFSR seeds,
Gaussian measurement matrices, scene generation, noise injection — funnels
through :func:`new_rng` / :func:`derive_seed`, so every experiment is exactly
reproducible from a single integer seed.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread a generator through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: str | int) -> int:
    """Derive a stable sub-seed from ``base_seed`` and a sequence of labels.

    Used to give independent, reproducible randomness to the different
    subsystems of one experiment (e.g. ``derive_seed(seed, "scene", frame)``
    vs. ``derive_seed(seed, "comparator-offset")``) without the subsystems
    sharing a generator and therefore coupling their draws.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def random_bits(n_bits: int, seed: SeedLike = None, *, density: float = 0.5) -> np.ndarray:
    """Return ``n_bits`` i.i.d. Bernoulli(``density``) bits as ``uint8``."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = new_rng(seed)
    return (rng.random(n_bits) < density).astype(np.uint8)


def nonzero_seed_bits(n_bits: int, seed: SeedLike = None) -> np.ndarray:
    """Random bit vector guaranteed to contain at least one set bit.

    CA and LFSR registers initialised to all-zero get stuck in the zero
    state; seeds for those generators come from here.
    """
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    rng = new_rng(seed)
    bits = (rng.random(n_bits) < 0.5).astype(np.uint8)
    if not bits.any():
        bits[int(rng.integers(n_bits))] = 1
    return bits
