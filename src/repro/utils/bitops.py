"""Bit-level helpers for the digital blocks of the sensor model.

The sensor accumulates time-to-digital codes in fixed-width registers (8-bit
counter, 14-bit column accumulators, 20-bit compressed samples).  These
helpers implement the handful of fixed-point primitives the digital model
needs: width computation, saturation, wrap-around and bit (de)serialisation.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np


def bit_width(max_value: int) -> int:
    """Return the number of bits needed to represent ``max_value`` unsigned.

    ``bit_width(0)`` is defined as 1 so that a constant-zero register still
    has a width.
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    if max_value == 0:
        return 1
    return int(max_value).bit_length()


def saturate(value: int, n_bits: int) -> int:
    """Clamp ``value`` to the unsigned range representable with ``n_bits``."""
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    high = (1 << n_bits) - 1
    if value < 0:
        return 0
    if value > high:
        return high
    return int(value)


def wrap_unsigned(value: int, n_bits: int) -> int:
    """Wrap ``value`` modulo ``2**n_bits`` (behaviour of an overflowing counter)."""
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    return int(value) & ((1 << n_bits) - 1)


def int_to_bits(value: int, n_bits: int) -> list[int]:
    """Return ``value`` as a list of ``n_bits`` bits, most-significant first."""
    if value < 0:
        raise ValueError("int_to_bits only supports non-negative values")
    if value >= (1 << n_bits):
        raise ValueError(f"value {value} does not fit in {n_bits} bits")
    return [(value >> shift) & 1 for shift in range(n_bits - 1, -1, -1)]


def bits_to_int(bits: Iterable[int]) -> int:
    """Inverse of :func:`int_to_bits` (most-significant bit first)."""
    value = 0
    for bit in bits:
        bit = int(bit)
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit}")
        value = (value << 1) | bit
    return value


def popcount(array) -> int:
    """Number of set bits in a binary array."""
    return int(np.count_nonzero(np.asarray(array)))


def required_accumulator_bits(n_values: int, value_bits: int) -> int:
    """Bits needed to add ``n_values`` unsigned ``value_bits``-bit words without clipping.

    This is Eq. (1) of the paper expressed for exact integer arithmetic:
    the accumulator must hold ``n_values * (2**value_bits - 1)``.
    """
    if n_values <= 0:
        raise ValueError(f"n_values must be positive, got {n_values}")
    if value_bits <= 0:
        raise ValueError(f"value_bits must be positive, got {value_bits}")
    return bit_width(n_values * ((1 << value_bits) - 1))


def gray_encode(value: int) -> int:
    """Return the Gray code of ``value`` (used by counter-sampling tests)."""
    if value < 0:
        raise ValueError("gray_encode only supports non-negative values")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if code < 0:
        raise ValueError("gray_decode only supports non-negative values")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def quantize_to_bits(values: np.ndarray, n_bits: int, full_scale: float) -> np.ndarray:
    """Uniformly quantise ``values`` in ``[0, full_scale]`` to ``n_bits`` unsigned codes."""
    if full_scale <= 0:
        raise ValueError(f"full_scale must be positive, got {full_scale}")
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    levels = (1 << n_bits) - 1
    scaled = np.clip(np.asarray(values, dtype=float) / full_scale, 0.0, 1.0)
    return np.round(scaled * levels).astype(np.int64)


def dequantize_from_bits(codes: np.ndarray, n_bits: int, full_scale: float) -> np.ndarray:
    """Inverse mapping of :func:`quantize_to_bits` (mid-tread reconstruction)."""
    if full_scale <= 0:
        raise ValueError(f"full_scale must be positive, got {full_scale}")
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    levels = (1 << n_bits) - 1
    return np.asarray(codes, dtype=float) / levels * full_scale


def log2_ceil(value: int) -> int:
    """Smallest integer ``k`` with ``2**k >= value``."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return int(math.ceil(math.log2(value)))
