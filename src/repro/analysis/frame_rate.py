"""Eq. (2): compressed-sample rate, and the event-overlap analysis behind the token protocol.

``f_cs = R * M * N * f_s`` — because compressed samples are generated
sequentially, delivering ``R*M*N`` of them per frame at ``f_s`` frames per
second requires a compressed-sample rate of ``f_cs`` (≈ 50 kHz for the
prototype's 64x64 array at 30 fps and R = 0.4, i.e. ~20 µs per sample).
The overlap helpers quantify how often two pixel events of the same column
would collide without the serialising token protocol.
"""

from __future__ import annotations


import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_in_range, check_positive


def compressed_sample_rate(
    rows: int, cols: int, frame_rate: float, compression_ratio: float
) -> float:
    """Eq. (2): ``f_cs = R * M * N * f_s`` (Hz)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    check_positive("frame_rate", frame_rate)
    check_in_range("compression_ratio", compression_ratio, 0.0, 1.0, inclusive=False)
    return compression_ratio * rows * cols * frame_rate


def max_compression_ratio(pixel_bits: int, rows: int, cols: int) -> float:
    """The ``R < N_b / N_B`` bound of Section III-B (0.4 for the prototype)."""
    from repro.analysis.dynamic_range import compressed_sample_bits

    return pixel_bits / compressed_sample_bits(pixel_bits, rows, cols)


def sample_rate_table(
    frame_rates=(15.0, 30.0, 60.0),
    compression_ratios=(0.1, 0.2, 0.3, 0.4),
    array_sizes=((32, 32), (64, 64), (128, 128)),
) -> list[dict[str, float]]:
    """Tabulate Eq. (2) across the design space (E7 benchmark table)."""
    table = []
    for rows, cols in array_sizes:
        for frame_rate in frame_rates:
            for ratio in compression_ratios:
                rate = compressed_sample_rate(rows, cols, frame_rate, ratio)
                table.append(
                    {
                        "rows": int(rows),
                        "cols": int(cols),
                        "frame_rate_fps": float(frame_rate),
                        "compression_ratio": float(ratio),
                        "compressed_sample_rate_hz": float(rate),
                        "sample_period_us": 1e6 / rate,
                    }
                )
    return table


def simulate_overlap_probability(
    n_events: int,
    event_duration: float,
    window: float,
    *,
    n_trials: int = 2000,
    seed: SeedLike = None,
) -> dict[str, float]:
    """Monte-Carlo estimate of event-overlap probabilities in one column.

    Events are placed uniformly at random in the window.  Returns both the
    probability that a *given* event overlaps another (the quantity behind
    the paper's 6.25 % figure) and the probability that *any* two events of
    the column overlap (the quantity that matters for losing pulses without
    the token protocol).
    """
    check_positive("n_events", n_events)
    check_positive("event_duration", event_duration)
    check_positive("window", window)
    check_positive("n_trials", n_trials)
    rng = new_rng(seed)
    any_overlap = 0
    per_event_overlaps = 0
    total_events = 0
    for _ in range(int(n_trials)):
        starts = np.sort(rng.uniform(0.0, window, size=int(n_events)))
        gaps = np.diff(starts)
        collisions = gaps < event_duration
        if collisions.any():
            any_overlap += 1
        # An event overlaps a neighbour if the gap on either side is short.
        overlapping = np.zeros(int(n_events), dtype=bool)
        overlapping[:-1] |= collisions
        overlapping[1:] |= collisions
        per_event_overlaps += int(overlapping.sum())
        total_events += int(n_events)
    return {
        "p_any_overlap": any_overlap / float(n_trials),
        "p_event_overlaps": per_event_overlaps / float(total_events),
        "n_events": float(n_events),
        "event_duration": float(event_duration),
        "window": float(window),
    }
