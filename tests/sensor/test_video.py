"""Tests for multi-frame (video) capture with a continuously-running CA."""

import numpy as np
import pytest

from repro.optics.motion import orbiting_blob_sequence
from repro.optics.photo import PhotoConversion
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer, temporal_difference_energy


@pytest.fixture
def sequencer():
    config = SensorConfig(rows=32, cols=32)
    imager = CompressiveImager(config, seed=31)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    return VideoSequencer(imager, conversion=conversion, samples_per_frame=200)


class TestVideoSequencer:
    def test_one_frame_per_scene(self, sequencer):
        scenes = orbiting_blob_sequence(4, (32, 32))
        result = sequencer.capture_sequence(scenes)
        assert result.n_frames == 4
        assert result.samples_per_frame == 200
        assert result.total_bits == 4 * 200 * sequencer.imager.config.compressed_sample_bits

    def test_consecutive_frames_use_different_measurement_matrices(self, sequencer):
        scenes = orbiting_blob_sequence(3, (32, 32))
        result = sequencer.capture_sequence(scenes)
        phi_0 = result.frames[0].measurement_matrix()
        phi_1 = result.frames[1].measurement_matrix()
        assert not np.array_equal(phi_0, phi_1)

    def test_ca_continues_rather_than_reseeding(self, sequencer):
        """Frame k+1's seed is the CA state reached at the end of frame k."""
        scenes = orbiting_blob_sequence(2, (32, 32))
        result = sequencer.capture_sequence(scenes)
        first, second = result.frames
        # Re-run the CA for the first frame's samples and check it lands on the
        # second frame's seed.
        from repro.ca.selection import CASelectionGenerator

        generator = CASelectionGenerator(
            32, 32,
            seed_state=first.seed_state,
            steps_per_sample=first.steps_per_sample,
            warmup_steps=first.warmup_steps,
        )
        for _ in range(first.n_samples):
            generator.next_pattern()
        assert np.array_equal(generator._automaton.state, second.seed_state)

    def test_every_frame_reconstructs(self, sequencer):
        scenes = orbiting_blob_sequence(3, (32, 32))
        result = sequencer.capture_sequence(scenes)
        for frame in result.frames:
            reconstruction = reconstruct_frame(frame, max_iterations=150)
            assert reconstruction.metrics["psnr_db"] > 18.0

    def test_average_compression_ratio(self, sequencer):
        scenes = orbiting_blob_sequence(2, (32, 32))
        result = sequencer.capture_sequence(scenes)
        assert result.average_compression_ratio == pytest.approx(200 / 1024)

    def test_invalid_samples_per_frame_rejected(self):
        with pytest.raises(ValueError):
            VideoSequencer(CompressiveImager(SensorConfig(rows=16, cols=16)), samples_per_frame=0)


class TestTemporalDifferenceEnergy:
    def test_static_scene_has_low_energy(self, sequencer):
        scenes = [orbiting_blob_sequence(1, (32, 32))[0]] * 3
        result = sequencer.capture_sequence(scenes)
        energies = temporal_difference_energy(result.frames)
        assert energies.shape == (2,)
        # Different selection patterns alone produce some change, but it stays moderate.
        assert np.all(energies < 0.5)

    def test_moving_scene_has_higher_energy_than_static(self, sequencer):
        moving = orbiting_blob_sequence(3, (32, 32))
        static = [moving[0]] * 3
        moving_result = sequencer.capture_sequence(moving)
        static_result = sequencer.capture_sequence(static)
        assert temporal_difference_energy(moving_result.frames).mean() >= \
            temporal_difference_energy(static_result.frames).mean() - 0.05

    def test_fewer_than_two_frames(self, sequencer):
        assert temporal_difference_energy([]).size == 0


class TestStreamFrames:
    """The lazy frame-at-a-time path is bit-identical to the batched one."""

    @staticmethod
    def _make_sequencer(seed=21):
        imager = CompressiveImager(SensorConfig(rows=16, cols=16), seed=seed)
        return VideoSequencer(imager, samples_per_frame=48, seed=seed)

    def test_matches_capture_sequence_bit_for_bit(self):
        scenes = orbiting_blob_sequence(4, (16, 16))
        batched = self._make_sequencer().capture_sequence(scenes).frames
        streamed = list(self._make_sequencer().stream_frames(scenes))
        assert len(streamed) == len(batched)
        for lazy, batch in zip(streamed, batched):
            assert np.array_equal(lazy.samples, batch.samples)
            assert np.array_equal(lazy.seed_state, batch.seed_state)
            assert lazy.warmup_steps == batch.warmup_steps

    def test_lazy_consumption(self):
        sequencer = self._make_sequencer()
        consumed = []

        def scenes():
            for index in range(3):
                consumed.append(index)
                yield orbiting_blob_sequence(1, (16, 16))[0]

        iterator = sequencer.stream_frames(scenes())
        assert consumed == []
        next(iterator)
        assert consumed == [1 - 1]  # exactly one scene pulled so far

    def test_per_frame_sample_schedule(self):
        scenes = orbiting_blob_sequence(3, (16, 16))
        schedule = [48, 30, 12]
        frames = list(
            self._make_sequencer().stream_frames(
                scenes, samples_for_frame=lambda index: schedule[index]
            )
        )
        assert [frame.n_samples for frame in frames] == schedule
        # The CA chain stays consistent despite the varying frame lengths:
        # each frame's seed is the previous frame's last pattern state.
        from repro.stream.protocol import advance_seed_state

        chain = frames[0].seed_state
        for previous, current in zip(frames[:-1], frames[1:]):
            chain = advance_seed_state(
                chain,
                previous.rule_number,
                n_samples=previous.n_samples,
                steps_per_sample=previous.steps_per_sample,
                warmup_steps=previous.warmup_steps,
            )
            assert np.array_equal(chain, current.seed_state)
