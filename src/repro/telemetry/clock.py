"""Injected clocks: the one place in the library that reads wall time.

Every instrumented code path takes its clock from here (usually through a
:class:`~repro.telemetry.core.Telemetry` object) instead of calling
``time.monotonic()`` directly — the REPRO006 timing-discipline lint rule
enforces it.  Two things fall out of that seam:

* **Deterministic tests** — swap in a :class:`ManualClock` and every span
  duration, latency histogram and trace becomes an exact, asserted number
  instead of a flaky wall-clock read;
* **One clock per pipeline** — the node and hub halves of a frame trace
  subtract timestamps from each other, which is only meaningful when both
  read the same monotonic source.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Structural type of an injectable time source."""

    def now(self) -> float:
        """Seconds on a monotonically non-decreasing axis."""
        ...  # pragma: no cover - protocol body


class MonotonicClock:
    """The production clock: a thin veneer over ``time.monotonic``.

    This module is the sanctioned funnel for wall-clock reads (REPRO006);
    everything else in the library receives a :class:`Clock` instance.
    """

    def now(self) -> float:
        return time.monotonic()


class ManualClock:
    """A deterministic test clock: time moves only when told to.

    >>> clock = ManualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    >>> clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (never backward — the axis is monotonic)."""
        if seconds < 0:
            raise ValueError(f"a monotonic clock cannot go backward ({seconds})")
        self._now += float(seconds)


#: Shared production clock for code paths that run without a
#: :class:`~repro.telemetry.core.Telemetry` object (e.g. session frame
#: latencies with telemetry disabled).
MONOTONIC_CLOCK = MonotonicClock()
