"""Runnable demo: a tiled camera node streaming live to a receiver.

A 128x128 mosaic of four 64x64 compressive sensor tiles streams a two-frame
video sequence over a *bounded* in-memory loopback channel to an incremental
receiver.  Everything the paper promises crosses the wire and nothing else:
bit-packed compressed samples, the per-tile CA seed once per GOP (later
frames are seedless — the receiver re-derives their seeds from the CA's
one-pattern frame overlap), and the capture statistics block.

The receiver reconstructs incrementally — each tile is inverted the moment
its chunk lands — and the demo prints the running mosaic completion, then
verifies the streamed reconstruction is byte-identical to the in-process
pipeline and reports the backpressure the bounded channel exerted.

Run:  python examples/stream_loopback.py
"""

import asyncio

import numpy as np

from repro import (
    CameraNode,
    LoopbackTransport,
    StreamReceiver,
    TiledSensorArray,
    make_scene,
    psnr,
    reconstruct_tiled,
)

SCENE_SHAPE = (128, 128)
N_FRAMES = 2
RECON = dict(max_iterations=40)


def make_array():
    return TiledSensorArray(
        SCENE_SHAPE, tile_shape=(64, 64), compression_ratio=0.12, seed=11,
        executor="serial",
    )


async def run_stream(scenes):
    transport = LoopbackTransport(max_buffered=3)
    node = CameraNode(transport, gop_size=N_FRAMES)
    receiver = StreamReceiver(**RECON)
    # Run both ends concurrently; gather surfaces the first real failure.
    stats, result = await asyncio.gather(
        node.stream_tiled_video(make_array(), scenes), receiver.run(transport)
    )
    return transport, result, stats


def main() -> None:
    scenes = [make_scene("natural", SCENE_SHAPE, seed=30 + i) for i in range(N_FRAMES)]
    transport, result, stats = asyncio.run(run_stream(scenes))

    print(f"Streamed {result.n_frames} frames as {stats.n_chunks} chunks "
          f"({stats.n_bytes} bytes) over a loopback channel "
          f"bounded at {transport.max_buffered} chunks in flight")
    print(f"Channel high watermark: {transport.high_watermark} "
          f"(sender stalled {transport.stall_count} times)\n")

    direct_captures = make_array().capture_scene_sequence(scenes)
    for received, direct in zip(result.frames, direct_captures):
        direct_recon = reconstruct_tiled(direct, **RECON)
        identical = received.reconstruction.image.tobytes() == direct_recon.image.tobytes()
        reference = direct.digital_image().astype(float)
        quality = psnr(reference, received.reconstruction.image)
        samples_match = np.array_equal(received.capture.samples, direct.samples)
        print(f"frame {received.frame_index}: {received.capture.n_samples} samples, "
              f"R={received.capture.compression_ratio:.2f}, PSNR {quality:.2f} dB, "
              f"samples bit-exact: {samples_match}, "
              f"reconstruction byte-identical to in-process: {identical}")

    print("\nOnly each GOP's first frame carried the CA seeds; the receiver "
          "re-derived every later seed from the free-running CA overlap.")
    print("For the fleet-scale version of this pipeline — many nodes muxed "
          "into one ReceiverHub — see examples/fleet_ingest.py.")


if __name__ == "__main__":
    main()
