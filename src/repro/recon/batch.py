"""Batched multi-tile frame solves: one einsum pass over a whole mosaic.

:func:`solve_tiles_batched` is the mosaic-scale twin of
:func:`~repro.recon.pipeline.reconstruct_frame`: it applies the same
per-tile centring (matrix density + image-DC estimate), the same default l1
weight and the same FISTA/ISTA iteration — but to *all* equal-shape tiles of
a frame at once, through the stacked rank-structured operators of
:mod:`repro.cs.solvers.batched`.  Per-tile step sizes come from one batched
power iteration (optionally memoised / warm-started through a
:class:`~repro.cs.operators.StepSizeCache` along a GOP chain).

:class:`~repro.recon.incremental.IncrementalTiledReconstructor` routes its
staged tiles through this function, which is how both
:func:`~repro.recon.pipeline.reconstruct_tiled` and the streaming
:class:`~repro.stream.receiver.StreamReceiver` reach it — one code path, so
streamed and in-process mosaics stay byte-identical.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.cs.metrics import psnr, reconstruction_snr
from repro.cs.operators import StepSizeCache
from repro.cs.solvers.batched import (
    batched_operator_norms,
    batched_proximal_gradient,
    steps_from_norms,
)
from repro.recon.operator import frame_operator
from repro.sensor.imager import CompressedFrame
from repro.utils.validation import check_choice

if TYPE_CHECKING:
    from repro.recon.pipeline import ReconstructionResult


def batch_group_key(frame: CompressedFrame) -> tuple:
    """Tiles that may share one batched solve must agree on this key."""
    return (
        frame.config.rows,
        frame.config.cols,
        frame.n_samples,
        frame.rule_number,
        frame.steps_per_sample,
        frame.warmup_steps,
    )


def solve_tiles_batched(
    frames: Sequence[CompressedFrame],
    *,
    dictionary: str = "dct",
    solver: str = "fista",
    regularization: float | None = None,
    max_iterations: int | None = None,
    step_cache: StepSizeCache | None = None,
) -> list[ReconstructionResult]:
    """Solve a homogeneous group of tile frames in one batched pass.

    Parameters
    ----------
    frames:
        Equal-geometry frames (same :func:`batch_group_key`); callers group
        heterogeneous mosaics before calling.
    dictionary, solver, regularization, max_iterations:
        As in :func:`~repro.recon.pipeline.reconstruct_frame`; ``solver``
        must be one of the proximal family (``fista``/``ista``).
    step_cache:
        Optional step-size cache: exact hits skip the power iteration for a
        tile entirely, warm vectors from previous same-geometry solves seed
        the batched iteration for the rest.

    Returns
    -------
    list of ReconstructionResult
        One result per input frame, in order — the same shape of result the
        per-tile path produces, including per-tile metrics against the
        frame's digital image when it was kept.
    """
    from repro.recon.pipeline import (
        _DEFAULT_MAX_ITERATIONS,
        BATCHABLE_SOLVERS,
        ReconstructionResult,
    )

    check_choice("solver", solver, BATCHABLE_SOLVERS)
    if not frames:
        return []
    keys = {batch_group_key(frame) for frame in frames}
    if len(keys) > 1:
        raise ValueError(
            f"solve_tiles_batched needs equal-geometry frames, got keys {sorted(keys)}"
        )
    if max_iterations is None:
        max_iterations = _DEFAULT_MAX_ITERATIONS[solver]

    operators = []
    densities = []
    for frame in frames:
        operator, density = frame_operator(
            frame,
            dictionary=dictionary,
            center=True,
            operator="structured",
            step_cache=step_cache,
        )
        operators.append(operator)
        densities.append(density)
    n_pixels = frames[0].config.n_pixels

    # Per-tile centring, exactly as reconstruct_frame does it: the sample
    # mean estimates the image DC, which is removed from the measurements so
    # the solver only recovers the AC image.
    samples = np.stack([frame.samples.astype(float) for frame in frames])
    densities = np.asarray(densities)
    dc_estimates = np.where(
        densities > 0, samples.mean(axis=1) / np.where(densities > 0, densities, 1.0), 0.0
    )
    pixel_means = dc_estimates / n_pixels
    centered = samples - densities[:, None] * dc_estimates[:, None]
    for index, operator in enumerate(operators):
        centered[index] -= operator.phi_dot(np.full(n_pixels, pixel_means[index]))
    if regularization is None:
        regularizations = 0.02 * (np.abs(centered).max(axis=1) + 1.0)
    else:
        regularizations = np.full(len(frames), float(regularization))

    # Per-tile step sizes: exact cache hits ride the memoised value
    # verbatim, and one batched power iteration covers *only* the misses —
    # the whole point of the cache is not to pay those matmuls again.
    cached: dict[int, float] = {}
    warm_starts: list[np.ndarray | None] | None = None
    if step_cache is not None:
        warm_starts = []
        for index, operator in enumerate(operators):
            sigma = step_cache.norm(operator.norm_exact_key)
            if sigma is not None:
                cached[index] = sigma
            else:
                warm_starts.append(step_cache.warm_vector(operator.norm_warm_key))
    sigmas = np.zeros(len(operators))
    miss_indices = [index for index in range(len(operators)) if index not in cached]
    for index, sigma in cached.items():
        sigmas[index] = sigma
    if miss_indices:
        miss_sigmas, miss_vectors = batched_operator_norms(
            [operators[index] for index in miss_indices], warm_starts=warm_starts
        )
        for position, index in enumerate(miss_indices):
            sigmas[index] = miss_sigmas[position]
            if step_cache is not None and miss_sigmas[position] > 0.0:
                step_cache.store(
                    operators[index].norm_exact_key,
                    operators[index].norm_warm_key,
                    float(miss_sigmas[position]),
                    miss_vectors[position],
                )
    step_sizes = steps_from_norms(sigmas)

    solver_results = batched_proximal_gradient(
        operators,
        centered,
        regularization=regularizations,
        max_iterations=max_iterations,
        step_sizes=step_sizes,
        accelerated=(solver == "fista"),
    )

    results = []
    for frame, operator, solver_result, pixel_mean in zip(
        frames, operators, solver_results, pixel_means
    ):
        image = operator.coefficients_to_image(solver_result.coefficients) + pixel_mean
        metrics: dict[str, float] = {}
        if frame.digital_image is not None:
            reference = np.asarray(frame.digital_image, dtype=float)
            metrics = {
                "psnr_db": psnr(reference, image),
                "snr_db": reconstruction_snr(reference, image),
            }
        results.append(
            ReconstructionResult(
                image=image,
                solver_result=solver_result,
                dictionary=dictionary,
                solver=solver,
                metrics=metrics,
                capture_metadata=dict(frame.metadata),
            )
        )
    return results
