"""E9 — §I/§V: full-frame CA strategy versus block-based compressive sampling.

The conclusions present this as the comparison the prototype enables:
"Experimental characterization of the prototype will allow verifying the
advantages of full-frame compressive strategies versus block-based compressed
sampling."  We run it in simulation: equal measurement budgets, the paper's
CA-XOR full-frame Φ against 8x8 and 16x16 block CS and a dense Bernoulli
reference, across compression ratios.

Shape expectations (DESIGN.md): the full-frame strategy beats 8x8 block CS at
low compression ratios, with the gap narrowing (and possibly closing) as R
approaches the 0.4 bound; the CA-generated Φ tracks the dense random
reference.
"""


from benchmarks.conftest import print_table
from repro.analysis.experiments import strategy_comparison, sweep_compression_ratio


RATIOS = (0.1, 0.25, 0.4)
STRATEGIES = ("ca-xor", "block-8", "block-16", "bernoulli")
SCENES = ("blobs", "natural")


def test_fullframe_vs_block_psnr_sweep(benchmark):
    records = benchmark.pedantic(
        lambda: sweep_compression_ratio(
            SCENES, STRATEGIES, RATIOS, image_shape=(64, 64), max_iterations=200, seed=2018
        ),
        rounds=1, iterations=1,
    )
    summary = strategy_comparison(records)

    rows = []
    for strategy in STRATEGIES:
        row = {"strategy": strategy}
        for ratio in RATIOS:
            row[f"PSNR@R={ratio}"] = summary[strategy][ratio]
        rows.append(row)
    print_table("Full-frame vs block-based CS — average PSNR (dB)", rows)

    # Full-frame CA wins in the sample-starved regime (where CS matters most)...
    assert summary["ca-xor"][0.1] > summary["block-8"][0.1]
    # ...and the advantage shrinks (block CS catches up) as R approaches the
    # 0.4 bound — the trade-off described in Sections I/II.
    gap_low = summary["ca-xor"][0.1] - summary["block-8"][0.1]
    gap_high = summary["ca-xor"][0.4] - summary["block-8"][0.4]
    assert gap_high < gap_low
    # The CA-generated Φ stays in the same quality class as dense Bernoulli at the
    # operating ratio (within a few dB).
    assert abs(summary["ca-xor"][0.4] - summary["bernoulli"][0.4]) < 6.0
    # Every strategy improves with more samples.
    for strategy in STRATEGIES:
        assert summary[strategy][0.4] > summary[strategy][0.1] - 1.0


def test_fullframe_vs_block_sidechannel_cost(benchmark):
    """Storage/transmission cost of Φ: CA seed vs per-block matrix vs full dense matrix."""
    from repro.cs.block import BlockCompressiveSampler
    from repro.sensor.config import SensorConfig

    def costs():
        config = SensorConfig()
        n_samples = config.samples_per_frame
        block = BlockCompressiveSampler((64, 64), block_size=8, compression_ratio=0.4)
        return [
            {"strategy": "ca-xor (seed only)", "phi_bits": config.rows + config.cols},
            {"strategy": "block-8 (shared block matrix)", "phi_bits": int(block.phi_block.size)},
            {"strategy": "dense Bernoulli (full frame)", "phi_bits": n_samples * config.n_pixels},
        ]

    rows = benchmark(costs)
    print_table("Side-information cost of the measurement strategy", rows)
    assert rows[0]["phi_bits"] < rows[1]["phi_bits"] < rows[2]["phi_bits"]
