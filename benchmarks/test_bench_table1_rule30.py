"""E1 — Table I: the Rule 30 truth table.

Regenerates Table I of the paper from both the Wolfram rule table and the
gate-level cell of Fig. 3, checks they agree row for row with the printed
table, and benchmarks the CA update kernel that the selection generator runs
once per compressed sample.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.ca.automaton import ElementaryCellularAutomaton
from repro.ca.rule30 import rule30_next_state
from repro.ca.rules import PAPER_TABLE_I, RULE_30


def regenerate_table_i():
    rows = []
    for left, center, right, paper_ns in PAPER_TABLE_I:
        rows.append(
            {
                "L": left,
                "S": center,
                "R": right,
                "NS (paper)": paper_ns,
                "NS (rule table)": RULE_30.next_state(left, center, right),
                "NS (gate level)": rule30_next_state(left, center, right),
            }
        )
    return rows


def test_table1_rule30_truth_table(benchmark):
    rows = benchmark(regenerate_table_i)
    print_table("Table I — Rule 30 truth table (regenerated)", rows)
    for row in rows:
        assert row["NS (rule table)"] == row["NS (paper)"]
        assert row["NS (gate level)"] == row["NS (paper)"]


def test_table1_ca_update_kernel(benchmark):
    """Throughput of one CA update of the 128-cell ring surrounding the array."""
    automaton = ElementaryCellularAutomaton(128, 30, seed=1)
    benchmark(automaton.step)
    assert set(np.unique(automaton.state)).issubset({0, 1})
