"""Design-space analysis: the paper's equations and the shared experiment harness.

* :mod:`repro.analysis.dynamic_range` — Eq. (1): the bit budget of compressed
  samples, with clipping-rate verification for under-provisioned registers.
* :mod:`repro.analysis.frame_rate` — Eq. (2): compressed-sample rate versus
  frame rate and compression ratio, the 50 kHz operating point, and the
  event-overlap probabilities behind the token protocol.
* :mod:`repro.analysis.experiments` — the sweep harness the benchmarks share
  (capture → reconstruct → score, over scenes, strategies and ratios).
"""

from repro.analysis.ablation import (
    ablate_ca_rule,
    ablate_dictionary,
    ablate_event_duration,
    ablate_pixel_depth,
    ablate_steps_per_sample,
)
from repro.analysis.dynamic_range import (
    clipping_rate,
    compressed_sample_bits,
    dynamic_range_table,
)
from repro.analysis.frame_rate import (
    compressed_sample_rate,
    max_compression_ratio,
    sample_rate_table,
    simulate_overlap_probability,
)
from repro.analysis.experiments import (
    ExperimentRecord,
    reconstruction_experiment,
    strategy_comparison,
    sweep_compression_ratio,
)

__all__ = [
    "ablate_ca_rule",
    "ablate_dictionary",
    "ablate_event_duration",
    "ablate_pixel_depth",
    "ablate_steps_per_sample",
    "compressed_sample_bits",
    "clipping_rate",
    "dynamic_range_table",
    "compressed_sample_rate",
    "max_compression_ratio",
    "sample_rate_table",
    "simulate_overlap_probability",
    "ExperimentRecord",
    "reconstruction_experiment",
    "strategy_comparison",
    "sweep_compression_ratio",
]
