"""Continuous (video) operation of the camera node.

The prototype runs at 30 fps with the selection CA free-running across frames:
every frame uses a fresh stretch of the Rule 30 sequence, and the receiver
stays synchronised because it knows the seed and how many samples each frame
consumed.  This example captures a short synthetic video (a blob orbiting the
field of view), serialises every frame with the transmission framing
(header + 128-bit CA seed + bit-packed 20-bit samples), decodes them on the
"receiver" side and reconstructs the sequence, reporting per-frame payload and
quality, plus the cheap sample-domain change indicator a node could use to
skip idle frames.

Run:  python examples/video_node.py
"""


from repro import CompressiveImager, SensorConfig, decode_frame, encode_frame, reconstruct_frame
from repro.optics import PhotoConversion, orbiting_blob_sequence
from repro.sensor import VideoSequencer
from repro.sensor.video import temporal_difference_energy


def main() -> None:
    config = SensorConfig()
    imager = CompressiveImager(config, seed=99)
    sequencer = VideoSequencer(
        imager,
        conversion=PhotoConversion(prnu_sigma=0.0, shot_noise=False),
        samples_per_frame=int(0.25 * config.n_pixels),
    )

    scenes = orbiting_blob_sequence(6, (config.rows, config.cols))
    capture = sequencer.capture_sequence(scenes)

    print(f"Captured {capture.n_frames} frames, {capture.samples_per_frame} samples each "
          f"(R = {capture.average_compression_ratio:.2f})")
    print(f"Total compressed payload: {capture.total_bits / 8 / 1024:.1f} KiB "
          f"(raw video would be "
          f"{capture.n_frames * config.n_pixels * config.pixel_bits / 8 / 1024:.1f} KiB)\n")

    print(f"{'frame':>5} {'payload (bytes)':>16} {'PSNR (dB)':>10} {'sample-domain change':>21}")
    change = temporal_difference_energy(capture.frames)
    for index, frame in enumerate(capture.frames):
        wire_bytes = encode_frame(frame)
        received = decode_frame(wire_bytes)
        result = reconstruct_frame(received, reference=frame.digital_image, max_iterations=150)
        delta = change[index - 1] if index > 0 else float("nan")
        print(f"{index:>5} {len(wire_bytes):>16} {result.metrics['psnr_db']:>10.2f} {delta:>21.3f}")

    print(
        "\nEach frame is independently decodable from its own header + seed; the CA "
        "keeps evolving between frames so no two frames share a measurement matrix."
    )


if __name__ == "__main__":
    main()
