"""Opt-in solver profiles: per-iteration convergence data, no numpy needed.

``ista``/``fista``/``iht`` and ``batched_proximal_gradient`` accept
``profile=SolverProfile()``; when given, they append one record per
iteration (objective, residual norm, and — batched — how many tiles are
frozen) and stamp where the step size came from.  When ``profile`` stays
``None`` (the default) the solvers skip every bookkeeping branch, so the
profiling seam costs nothing and, because a profile only *reads* solver
state, recording one is bit-neutral: same iterates, same RNG stream, same
reconstruction bytes (pinned by the neutrality suite).

This module is pure stdlib on purpose — callers convert array scalars with
``float()``/``int()`` at the boundary — so the telemetry package stays
importable without numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolverProfile"]

#: Allowed values for :attr:`SolverProfile.step_size_provenance`.
_PROVENANCES = ("provided", "estimated")


@dataclass
class SolverProfile:
    """Per-iteration convergence series for one (possibly batched) solve.

    ``objectives[i]`` is the composite objective ``0.5·‖Ax−y‖² + λ‖x‖₁``
    after iteration ``i`` (summed over tiles for batched solves) and
    ``residual_norms[i]`` the matching data-fidelity norm.  For batched
    solves ``frozen_counts[i]`` counts tiles already converged-and-frozen
    entering iteration ``i``.
    """

    objectives: list[float] = field(default_factory=list)
    residual_norms: list[float] = field(default_factory=list)
    frozen_counts: list[int] = field(default_factory=list)
    step_size: float | None = None
    step_size_provenance: str | None = None
    n_tiles: int | None = None
    n_iterations: int = 0
    converged: bool | None = None

    def record_step_size(self, step: float, *, provenance: str) -> None:
        """Stamp the step size and whether the caller supplied or estimated it."""
        if provenance not in _PROVENANCES:
            raise ValueError(
                f"step-size provenance must be one of {_PROVENANCES}, got {provenance!r}"
            )
        self.step_size = float(step)
        self.step_size_provenance = provenance

    def record_iteration(
        self, objective: float, residual_norm: float, *, frozen: int | None = None
    ) -> None:
        self.objectives.append(float(objective))
        self.residual_norms.append(float(residual_norm))
        if frozen is not None:
            self.frozen_counts.append(int(frozen))
        self.n_iterations += 1

    def finish(self, *, converged: bool) -> None:
        self.converged = bool(converged)

    @property
    def monotone(self) -> bool:
        """``True`` when the objective never increased (ISTA guarantee)."""
        return all(
            b <= a + 1e-12 for a, b in zip(self.objectives, self.objectives[1:])
        )
