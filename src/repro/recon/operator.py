"""Rebuilding the measurement operator at the receiver.

The whole point of generating Φ with a seeded cellular automaton is that the
receiving end can reconstruct Φ *exactly* from the seed — no matrix is ever
transmitted or stored.  These helpers do precisely that, and package the
result into the centred sensing operator the solvers expect.

Two operator flavours share one CA evolution:

* ``operator="structured"`` (the default) rebuilds only the pre-expansion
  factor pair ``(R, C)`` and returns a matrix-free
  :class:`~repro.cs.structured.StructuredSensingOperator` — the receiver-side
  twin of the sensor's rank-structured capture engine;
* ``operator="dense"`` materialises Φ through the shared dense builder and
  returns the classic :class:`~repro.cs.operators.SensingOperator`, kept as
  the executable reference the equivalence suite pins the fast path against.
"""

from __future__ import annotations


import numpy as np

from repro.ca.selection import ca_measurement_matrix, ca_selection_factors
from repro.cs.dictionaries import Dictionary, make_dictionary
from repro.cs.operators import BaseSensingOperator, SensingOperator, StepSizeCache
from repro.cs.structured import StructuredSensingOperator
from repro.sensor.imager import CompressedFrame
from repro.utils.validation import check_choice, check_positive

#: Operator flavours accepted by the reconstruction entry points.
OPERATOR_CHOICES = ("structured", "dense")


def measurement_matrix_from_seed(
    seed_state: np.ndarray,
    n_samples: int,
    shape: tuple[int, int],
    *,
    rule: int = 30,
    steps_per_sample: int = 1,
    warmup_steps: int = 8,
) -> np.ndarray:
    """Regenerate the 0/1 measurement matrix Φ from the CA seed.

    This must (and, by construction, does) produce bit-for-bit the same
    matrix the sensor used: both ends call the one batched builder,
    :func:`repro.ca.selection.ca_measurement_matrix`, so the capture and
    reconstruction matrices cannot drift apart.  The property is pinned by
    the round-trip property tests.
    """
    check_positive("n_samples", n_samples)
    rows, cols = shape
    return ca_measurement_matrix(
        int(n_samples),
        rows,
        cols,
        np.asarray(seed_state),
        rule=rule,
        steps_per_sample=steps_per_sample,
        warmup_steps=warmup_steps,
    ).astype(float)


def measurement_factors_from_seed(
    seed_state: np.ndarray,
    n_samples: int,
    shape: tuple[int, int],
    *,
    rule: int = 30,
    steps_per_sample: int = 1,
    warmup_steps: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Regenerate the ``(R, C)`` factor pair of Φ from the CA seed.

    The factored twin of :func:`measurement_matrix_from_seed`: the same CA
    evolution, stopped before the broadcast-XOR expansion.  Re-joining the
    factors with an outer XOR reproduces the dense matrix bit for bit.
    """
    check_positive("n_samples", n_samples)
    rows, cols = shape
    return ca_selection_factors(
        int(n_samples),
        rows,
        cols,
        np.asarray(seed_state),
        rule=rule,
        steps_per_sample=steps_per_sample,
        warmup_steps=warmup_steps,
    )


def frame_cache_keys(
    frame: CompressedFrame, dictionary: str, center: bool
) -> tuple[tuple, tuple]:
    """The ``(exact, warm)`` step-size cache keys of a frame's operator.

    The exact key captures everything that determines the operator (seed
    bits, CA parameters, geometry, dictionary, centring), so an exact hit
    may reuse a memoised norm verbatim.  The warm key drops the seed: any
    previously converged singular vector of a same-geometry operator — the
    previous frame of a GOP chain — is a valid power-iteration warm start.
    """
    warm_key = (
        frame.config.rows,
        frame.config.cols,
        frame.n_samples,
        dictionary,
        bool(center),
    )
    exact_key = warm_key + (
        frame.seed_state.astype(np.uint8).tobytes(),
        frame.rule_number,
        frame.steps_per_sample,
        frame.warmup_steps,
    )
    return exact_key, warm_key


def normalize_sample_mask(
    sample_mask: np.ndarray | None, n_samples: int
) -> np.ndarray | None:
    """Validate a row-survival mask; ``None`` means "every row survived".

    An all-true mask is normalised to ``None`` so the masked and unmasked
    code paths cannot diverge when nothing was actually lost — the zero-loss
    byte-identity property depends on this short-circuit.
    """
    if sample_mask is None:
        return None
    mask = np.asarray(sample_mask, dtype=bool).reshape(-1)
    if mask.size != n_samples:
        raise ValueError(
            f"sample_mask has {mask.size} entries for {n_samples} samples"
        )
    if bool(mask.all()):
        return None
    if not bool(mask.any()):
        raise ValueError("sample_mask keeps no samples — nothing to solve from")
    return mask


def frame_operator(
    frame: CompressedFrame,
    *,
    dictionary: str = "dct",
    center: bool = True,
    operator: str = "structured",
    step_cache: StepSizeCache | None = None,
    sample_mask: np.ndarray | None = None,
) -> tuple[BaseSensingOperator, float]:
    """Build the sensing operator for a captured frame.

    Returns the operator and the selection density used for centring (0.0
    when ``center`` is false).  Centring subtracts the mean entry from the
    0/1 matrix, which removes the large DC component shared by all rows of
    the XOR construction and is what makes smooth dictionaries usable.

    Parameters
    ----------
    frame:
        The captured frame whose seed determines Φ.
    dictionary:
        Sparsifying dictionary name.
    center:
        Subtract the matrix density from Φ (on the structured path this is
        folded in analytically — no dense matrix is ever formed).
    operator : {"structured", "dense"}
        ``"structured"`` (default) returns the matrix-free rank-structured
        operator; ``"dense"`` materialises Φ and returns the dense
        reference.  Both flavours compute bit-identical densities and are
        pinned numerically equivalent by the recon-equivalence suite.
    step_cache:
        Optional :class:`~repro.cs.operators.StepSizeCache` attached to the
        operator so its power-iteration step size is memoised (exact key)
        and warm-started (geometry key) across frames of a video/GOP chain.
    sample_mask:
        Optional boolean row-survival mask over the frame's ``n_samples``
        measurements (the partial-Φ path of lossy streaming).  Φ is rebuilt
        in full from the seed, then restricted to the surviving rows —
        dropped chunks become dropped rows, which CS tolerates by design.
        The centring density is recomputed over the *surviving* subset so
        the masked operator matches a from-scratch solve on those rows.  An
        all-true mask takes the exact unmasked path.
    """
    check_choice("operator", operator, OPERATOR_CHOICES)
    mask = normalize_sample_mask(sample_mask, frame.n_samples)
    shape = (frame.config.rows, frame.config.cols)
    psi: Dictionary = make_dictionary(dictionary, shape)
    if operator == "structured":
        row_factors, col_factors = measurement_factors_from_seed(
            frame.seed_state,
            frame.n_samples,
            shape,
            rule=frame.rule_number,
            steps_per_sample=frame.steps_per_sample,
            warmup_steps=frame.warmup_steps,
        )
        if mask is not None:
            row_factors = row_factors[mask]
            col_factors = col_factors[mask]
        structured = StructuredSensingOperator(row_factors, col_factors, psi)
        density = structured.density if center else 0.0
        structured.center = density
        built: BaseSensingOperator = structured
    else:
        phi = measurement_matrix_from_seed(
            frame.seed_state,
            frame.n_samples,
            shape,
            rule=frame.rule_number,
            steps_per_sample=frame.steps_per_sample,
            warmup_steps=frame.warmup_steps,
        )
        if mask is not None:
            phi = phi[mask]
        density = float(phi.mean()) if center else 0.0
        if center:
            phi = phi - density
        built = SensingOperator(phi, psi)
    if step_cache is not None and mask is None:
        # A masked operator has a different row space per loss pattern, so
        # its step size is neither reusable nor worth polluting the cache.
        exact_key, warm_key = frame_cache_keys(frame, dictionary, center)
        built.norm_cache = step_cache
        built.norm_exact_key = (operator,) + exact_key
        built.norm_warm_key = warm_key
    return built, density
