"""Image reconstruction from compressed frames.

The receiver side of the paper's system: rebuild the measurement matrix from
the CA seed carried in the :class:`~repro.sensor.imager.CompressedFrame`,
solve the sparse-recovery problem in a chosen dictionary, and calibrate the
recovered time-code image back into light intensities.
"""

from repro.recon.batch import solve_tiles_batched
from repro.recon.calibration import codes_to_intensity, intensity_to_codes
from repro.recon.incremental import IncrementalTiledReconstructor
from repro.recon.operator import (
    frame_operator,
    measurement_factors_from_seed,
    measurement_matrix_from_seed,
)
from repro.recon.pipeline import (
    ReconstructionResult,
    TiledReconstructionResult,
    reconstruct_frame,
    reconstruct_samples,
    reconstruct_tiled,
)

__all__ = [
    "measurement_matrix_from_seed",
    "measurement_factors_from_seed",
    "frame_operator",
    "solve_tiles_batched",
    "codes_to_intensity",
    "intensity_to_codes",
    "reconstruct_frame",
    "reconstruct_samples",
    "reconstruct_tiled",
    "ReconstructionResult",
    "TiledReconstructionResult",
    "IncrementalTiledReconstructor",
]
