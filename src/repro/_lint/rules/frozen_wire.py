"""REPRO005 — frozen wire: layout edits require a new version byte.

The v1 frame layout is frozen (golden-blob test) and v2 is what every
deployed stream speaks; the chunk layer has its own version byte.  All of
that is encoded in a handful of module-level constants — magic numbers,
``struct`` formats, field tables, wire-ordered key tuples.  Editing any of
them *in place* silently breaks every previously-written stream while the
encoder/decoder pair (which share the constants) keeps round-tripping green.

This rule fingerprints the wire-layout constants of
``repro/io/framing.py`` and ``repro/stream/protocol.py`` (an order-sensitive
digest of their AST-extracted values) and compares against the pinned digest
in :data:`EXPECTED_FINGERPRINTS`.  A mismatch is a finding whose fix is
procedural, not mechanical: introduce a **new version byte** (grow
``SUPPORTED_VERSIONS`` / bump ``PROTOCOL_VERSION``) with decode support for
the old layout, then re-pin the fingerprint here — in the same reviewed
change.  ``python -m repro._lint --wire-fingerprint`` prints the current
digests for re-pinning.
"""

from __future__ import annotations

import ast
import hashlib
from collections.abc import Iterator

from repro._lint.engine import Finding, LintError, ModuleContext
from repro._lint.rules.base import Rule

#: Wire-layout constants per module.  Order matters: the digest is computed
#: over this order, so the tuple doubles as the layout's documentation.
PINNED_CONSTANTS: dict[str, tuple[str, ...]] = {
    "repro/io/framing.py": (
        "FRAME_MAGIC",
        "FRAME_VERSION",
        "SUPPORTED_VERSIONS",
        "FLAG_HAS_SEED",
        "FLAG_HAS_STATS",
        "_HEADER_FIELDS",
        "STAT_KEYS",
        "_CATEGORICAL_KEYS",
    ),
    "repro/stream/protocol.py": (
        "CHUNK_MAGIC",
        "PROTOCOL_VERSION",
        "_CHUNK_HEADER",
        "STREAM_KINDS",
        "_STREAM_START",
        "_FRAME_DATA",
        "_FRAME_COMPLETE",
        "_STREAM_END",
        "_FRAME_SEGMENT",
        "_FRAME_PARITY",
        "_PARITY_LENGTH",
        "_CONTROL_ACK",
        "_CONTROL_RATE",
        "_CONTROL_NACK",
        "_NACK_SEQUENCE",
        "_SESSION_RESUME",
        "ChunkType",
    ),
}

#: sha256 digests of the canonical constant dump, pinned at the last
#: consciously-versioned wire layout (v1/v2 frames, chunk protocol v1 plus
#: the additive chunk types 5-8 — segments, parity, control feedback — and
#: the additive session-durability types 9-10 — NACK selective repeat and
#: reconnect-with-resume; new type bytes with new payload structs, every
#: existing layout untouched).  Re-pin ONLY together with a new version
#: byte or a purely additive extension like the above — never to quiet the
#: linter.
EXPECTED_FINGERPRINTS: dict[str, str] = {
    "repro/io/framing.py": (
        "c3b1418903982b0daefc30acd3a1011fb6d5c9fc655536117c9f20490dbd799b"
    ),
    "repro/stream/protocol.py": (
        "c83d632b892072c64104cf0fd5767e31b64da3ff1ee4ae0f36f9d9cbb270d41e"
    ),
}


def _extract_value(node: ast.AST) -> object | None:
    """AST-extract a pinned constant: literals, or ``struct.Struct(fmt)``."""
    if isinstance(node, ast.Call):
        # struct.Struct("...") — the format string IS the layout.
        if node.args and isinstance(node.args[0], ast.Constant):
            return ("struct", node.args[0].value)
        return None
    try:
        return ast.literal_eval(node)
    except ValueError:
        return None


def extract_constants(tree: ast.AST, names: tuple[str, ...]) -> dict[str, object]:
    """Pull the pinned wire constants out of a parsed module."""
    found: dict[str, object] = {}
    for node in ast.iter_child_nodes(tree):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.ClassDef) and node.name in names:
            # Enum-style class: pin the (member, value) pairs in order.
            members = []
            for statement in node.body:
                if isinstance(statement, ast.Assign) and isinstance(
                    statement.targets[0], ast.Name
                ):
                    extracted = _extract_value(statement.value)
                    if extracted is not None:
                        members.append((statement.targets[0].id, extracted))
            found[node.name] = tuple(members)
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id in names and value is not None:
                extracted = _extract_value(value)
                if extracted is not None:
                    found[target.id] = extracted
    return found


def compute_fingerprint(tree: ast.AST, module_rel: str) -> tuple[str, tuple[str, ...]]:
    """Digest a wire module's pinned constants.

    Returns ``(sha256_hex, missing_names)``; missing names are part of the
    contract violation (deleting a layout constant is also a layout edit).
    """
    names = PINNED_CONSTANTS[module_rel]
    constants = extract_constants(tree, names)
    missing = tuple(name for name in names if name not in constants)
    canonical = repr([(name, constants.get(name)) for name in names])
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest, missing


def current_fingerprints(sources: dict[str, str]) -> dict[str, str]:
    """Compute digests for ``{module_rel: source}`` (the --wire-fingerprint CLI)."""
    digests = {}
    for module_rel, source in sources.items():
        try:
            tree = ast.parse(source)
        except SyntaxError as error:  # pragma: no cover - defensive
            raise LintError(f"{module_rel}: cannot parse: {error}") from error
        digests[module_rel], _ = compute_fingerprint(tree, module_rel)
    return digests


class FrozenWireRule(Rule):
    rule_id = "REPRO005"
    contract = "frozen wire: layout constant edits require a new version byte"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        module_rel = context.module_rel
        if module_rel not in PINNED_CONSTANTS:
            return
        digest, missing = compute_fingerprint(context.tree, module_rel)
        if missing:
            yield Finding(
                rule_id=self.rule_id,
                path=context.path,
                line=1,
                column=0,
                message=(
                    f"pinned wire-layout constants missing: {', '.join(missing)} "
                    "(deleting or renaming a layout constant is a wire change)"
                ),
                hint=(
                    "restore the constant, or version the wire: add a new "
                    "version byte with decode support for the old layout and "
                    "re-pin EXPECTED_FINGERPRINTS in _lint/rules/frozen_wire.py"
                ),
            )
            return
        if digest != EXPECTED_FINGERPRINTS[module_rel]:
            yield Finding(
                rule_id=self.rule_id,
                path=context.path,
                line=1,
                column=0,
                message=(
                    "wire-layout constants changed without a re-pinned "
                    f"fingerprint (got {digest[:12]}…, "
                    f"pinned {EXPECTED_FINGERPRINTS[module_rel][:12]}…)"
                ),
                hint=(
                    "a layout edit needs a NEW version byte (grow "
                    "SUPPORTED_VERSIONS / bump PROTOCOL_VERSION) keeping the "
                    "old decoder; then run `python -m repro._lint "
                    "--wire-fingerprint` and re-pin EXPECTED_FINGERPRINTS in "
                    "the same reviewed change"
                ),
            )


RULE = FrozenWireRule()
