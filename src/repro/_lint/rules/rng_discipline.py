"""REPRO003 — RNG discipline: no global random state in library code.

Executor-neutral byte-identity (``tests/sensor/test_shard.py``) holds because
every random draw in the library flows from a seeded
:class:`numpy.random.Generator` derived via
:func:`repro.utils.rng.new_rng` / :func:`repro.utils.rng.derive_seed` — a
tile worker gets the same bits whether it runs serial, threaded or in a
process pool.  One call into NumPy's *global* RNG (``np.random.seed``,
``np.random.rand``, the legacy ``RandomState``) or the stdlib ``random``
module breaks that: global state is per-process, draw order depends on
scheduling, and reproducibility silently becomes executor-dependent.

Flagged in library code:

* any ``np.random.<fn>`` global-state call (``seed``, ``rand``, ``randint``,
  ``shuffle``, …) or ``RandomState`` construction;
* ``np.random.default_rng()`` with no arguments (or an explicit ``None``) —
  fresh entropy is unreproducible; thread a seed or a generator in;
* stdlib ``random`` module draws.

Tests, examples and benchmarks may do what they like (they typically seed
``default_rng`` anyway).  :mod:`repro.utils.rng` itself is the sanctioned
funnel and is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro._lint.engine import Finding, ModuleContext
from repro._lint.rules.base import Rule, dotted_name

#: The sanctioned RNG funnel (new_rng/derive_seed live here and may accept
#: ``None`` for fresh entropy at the caller's explicit request).
ALLOWED_MODULES = frozenset({"repro/utils/rng.py"})

#: ``np.random`` attributes that are *not* global-state draws.
_SAFE_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` functions that draw from or mutate the module-level state.
_STDLIB_RANDOM_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)


def _is_none_arg(node: ast.Call) -> bool:
    if not node.args and not node.keywords:
        return True
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in node.keywords:
        if keyword.arg == "seed":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is None
    return False


class RngDisciplineRule(Rule):
    rule_id = "REPRO003"
    contract = "RNG discipline: seeded generators only, no global random state"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library or context.module_rel in ALLOWED_MODULES:
            return
        stdlib_random_imported = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in ast.walk(context.tree)
        )
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
                attr = parts[-1]
                if attr == "default_rng":
                    if _is_none_arg(node):
                        yield self.finding(
                            context,
                            node,
                            "unseeded default_rng() in library code "
                            "(fresh entropy is unreproducible)",
                            hint=(
                                "thread a seed through repro.utils.rng."
                                "new_rng/derive_seed so the draw is part of "
                                "the experiment's seed tree"
                            ),
                        )
                elif attr not in _SAFE_RANDOM_ATTRS:
                    yield self.finding(
                        context,
                        node,
                        f"global-state RNG call np.random.{attr}() in library "
                        "code (breaks executor-neutral byte-identity)",
                        hint=(
                            "draw from a seeded numpy Generator "
                            "(repro.utils.rng.new_rng) passed down the call "
                            "chain instead of the process-global stream"
                        ),
                    )
            elif (
                stdlib_random_imported
                and len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM_FNS
            ):
                yield self.finding(
                    context,
                    node,
                    f"stdlib random.{parts[1]}() in library code "
                    "(process-global state)",
                    hint=(
                        "use a seeded numpy Generator from "
                        "repro.utils.rng.new_rng; stdlib random is "
                        "per-process and unseeded here"
                    ),
                )


RULE = RngDisciplineRule()
