"""Hub load tests: hundreds of concurrent nodes, fairness under contention.

Two scales are exercised:

* **breadth** — ≥100 concurrent loopback nodes streaming GOP video into
  one hub (decode path: per-stream seed chains at fleet scale), every
  stream completing with every frame;
* **contention** — a chatty node with many frames queued against quiet
  single-frame nodes on a one-slot solver: the round-robin scheduler must
  interleave the quiet streams' solves ahead of the chatty node's backlog
  rather than draining the chatty queue first.
"""

import asyncio

import numpy as np

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.hub import ReceiverHub, percentile
from repro.stream.node import CameraNode
from repro.stream.transport import LoopbackTransport


CONFIG = SensorConfig(rows=16, cols=16)


def run(coro):
    return asyncio.run(coro)


class TestHundredNodeLoopback:
    N_NODES = 120
    N_FRAMES = 2

    def test_sustains_concurrent_nodes_with_complete_streams(self):
        scenes = [
            make_scene("blobs", (16, 16), seed=index)
            for index in range(self.N_FRAMES)
        ]

        async def scenario():
            hub = ReceiverHub(reconstruct=False)

            async def one_node(stream_id):
                transport = LoopbackTransport(max_buffered=4)
                sequencer = VideoSequencer(
                    CompressiveImager(CONFIG, seed=stream_id),
                    samples_per_frame=40,
                    seed=stream_id,
                )
                node = CameraNode(
                    transport, stream_id=stream_id, gop_size=self.N_FRAMES
                )
                send = asyncio.create_task(node.stream_video(sequencer, scenes))
                results = await hub.attach(transport)
                await send
                return results

            all_results = await asyncio.gather(
                *(one_node(stream_id) for stream_id in range(1, self.N_NODES + 1))
            )
            await hub.close()
            return hub, all_results

        hub, all_results = run(scenario())
        # Every stream completed with every announced frame — no stream was
        # starved or dropped while its 119 peers were flowing.
        assert len(hub.completed) == self.N_NODES
        assert not hub.failures
        per_stream = {
            results[0].stream_id: results[0] for results in all_results
        }
        assert sorted(per_stream) == list(range(1, self.N_NODES + 1))
        for result in per_stream.values():
            assert result.n_frames == self.N_FRAMES
            assert result.announced_frames == self.N_FRAMES
        # Spot-check correctness at both ends of the id range: the demuxed
        # bytes match an isolated capture with the same seeds.
        for stream_id in (1, self.N_NODES):
            sequencer = VideoSequencer(
                CompressiveImager(CONFIG, seed=stream_id),
                samples_per_frame=40,
                seed=stream_id,
            )
            direct = sequencer.capture_sequence(scenes).frames
            received = per_stream[stream_id].frames
            for got, expected in zip(received, direct):
                assert np.array_equal(got.capture.samples, expected.samples)
                assert np.array_equal(got.capture.seed_state, expected.seed_state)
        # Fleet stats aggregated across every session.
        snapshot = hub.stats()
        assert snapshot.n_completed == self.N_NODES
        assert snapshot.n_frames == self.N_NODES * self.N_FRAMES
        assert len(snapshot.frame_latencies) == self.N_NODES * self.N_FRAMES
        assert percentile(snapshot.frame_latencies, 99) >= 0.0


class TestChattyNodeFairness:
    N_QUIET = 4
    CHATTY_FRAMES = 6

    def test_quiet_streams_complete_amid_a_chatty_backlog(self):
        chatty_id = 100

        async def scenario():
            # One solver slot and a per-stream watermark: contention is
            # maximal and entirely resolved by the round-robin policy.
            hub = ReceiverHub(
                max_iterations=5, solver_slots=1, per_stream_pending=1
            )

            async def chatty():
                scenes = [
                    make_scene("blobs", (16, 16), seed=index)
                    for index in range(self.CHATTY_FRAMES)
                ]
                transport = LoopbackTransport(max_buffered=32)
                node = CameraNode(transport, stream_id=chatty_id, gop_size=1)
                imager = CompressiveImager(CONFIG, seed=1)
                send = asyncio.create_task(node.stream_frames(imager, scenes))
                results = await hub.attach(transport)
                await send
                return results

            async def quiet(stream_id):
                # Stagger the quiet nodes into the middle of the chatty
                # node's stream so their solves compete with its backlog.
                await asyncio.sleep(0.002 * stream_id)
                scenes = [make_scene("blobs", (16, 16), seed=90 + stream_id)]
                transport = LoopbackTransport(max_buffered=8)
                node = CameraNode(transport, stream_id=stream_id)
                imager = CompressiveImager(CONFIG, seed=stream_id)
                send = asyncio.create_task(node.stream_frames(imager, scenes))
                results = await hub.attach(transport)
                await send
                return results

            await asyncio.gather(
                chatty(), *(quiet(stream_id) for stream_id in range(1, self.N_QUIET + 1))
            )
            order = list(hub.scheduler.dispatch_order)
            await hub.close()
            return hub, order

        hub, order = run(scenario())
        assert len(hub.completed) == self.N_QUIET + 1
        assert not hub.failures
        # Fairness: every quiet stream's solve was dispatched before the
        # chatty stream's final solve — the backlog never monopolised the
        # single slot.
        last_chatty = max(
            index for index, key in enumerate(order) if key == chatty_id
        )
        for stream_id in range(1, self.N_QUIET + 1):
            first_quiet = order.index(stream_id)
            assert first_quiet < last_chatty, (
                f"stream {stream_id} was starved: first dispatch at "
                f"{first_quiet}, chatty stream still solving at {last_chatty}"
            )
        # Every reconstruction actually landed.
        for result in hub.completed:
            for frame in result.frames:
                assert frame.reconstruction is not None
