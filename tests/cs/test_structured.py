"""Operator-level equivalence: the matrix-free fast path vs the dense reference.

Every product the solvers consume — ``matvec``, ``rmatvec``, ``phi_dot``,
``column``, ``columns``, ``dense`` — must agree between
:class:`~repro.cs.structured.StructuredSensingOperator` and the dense
:class:`~repro.cs.operators.SensingOperator` built from the materialised
matrix, across dictionaries, non-square shapes and seeds.  This suite pins
that contract at tight tolerance (the recon-equivalence invariant at the
operator layer), plus the supporting machinery: batched dictionary
transforms, the memoised/tolerance-gated ``operator_norm`` and the
:class:`~repro.cs.operators.StepSizeCache`.
"""

import numpy as np
import pytest

from repro.ca.selection import (
    ca_measurement_matrix,
    ca_selection_factors,
    selection_masks_from_states,
)
from repro.cs.dictionaries import make_dictionary
from repro.cs.operators import SensingOperator, StepSizeCache
from repro.cs.solvers import fista, ista
from repro.cs.solvers.batched import (
    batched_operator_norms,
    batched_proximal_gradient,
)
from repro.cs.structured import StructuredSensingOperator
from repro.utils.rng import nonzero_seed_bits

ATOL = 1e-10

SHAPES = [(8, 8), (8, 16), (16, 8)]
DICTIONARIES = ["identity", "dct", "haar"]


def make_pair(shape, dictionary, *, seed=0, n_samples=40, center=True, **ca_kwargs):
    """A (dense, structured) operator pair built from one CA seed."""
    rows, cols = shape
    seed_state = nonzero_seed_bits(rows + cols, seed)
    row_factors, col_factors = ca_selection_factors(
        n_samples, rows, cols, seed_state, **ca_kwargs
    )
    psi = make_dictionary(dictionary, shape)
    structured = StructuredSensingOperator(row_factors, col_factors, psi)
    density = structured.density if center else 0.0
    structured.center = density
    phi = ca_measurement_matrix(n_samples, rows, cols, seed_state, **ca_kwargs)
    dense = SensingOperator(phi.astype(float) - density, make_dictionary(dictionary, shape))
    return dense, structured


class TestFactorBuilders:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("steps,warmup", [(1, 0), (2, 8), (3, 5)])
    def test_factors_rejoin_to_dense_matrix_bit_for_bit(self, shape, steps, warmup):
        rows, cols = shape
        seed_state = nonzero_seed_bits(rows + cols, 7)
        kwargs = dict(steps_per_sample=steps, warmup_steps=warmup)
        row_factors, col_factors = ca_selection_factors(
            30, rows, cols, seed_state, **kwargs
        )
        dense = ca_measurement_matrix(30, rows, cols, seed_state, **kwargs)
        rejoined = np.bitwise_xor(
            row_factors[:, :, None], col_factors[:, None, :]
        ).reshape(30, rows * cols)
        assert np.array_equal(rejoined, dense)

    def test_factors_match_states_split(self):
        states = np.random.default_rng(3).integers(0, 2, size=(12, 10)).astype(np.uint8)
        from repro.ca.selection import selection_factors_from_states

        row_factors, col_factors = selection_factors_from_states(states, 4, 6)
        assert np.array_equal(row_factors, states[:, :4])
        assert np.array_equal(col_factors, states[:, 4:])
        masks = selection_masks_from_states(states, 4, 6)
        rejoined = np.bitwise_xor(
            row_factors[:, :, None], col_factors[:, None, :]
        ).reshape(12, 24)
        assert np.array_equal(masks, rejoined)

    def test_generator_measurement_factors(self):
        from repro.ca.selection import CASelectionGenerator

        generator = CASelectionGenerator(8, 8, seed=5, warmup_steps=4)
        row_factors, col_factors = generator.measurement_factors(20)
        dense = generator.measurement_matrix(20)
        rejoined = np.bitwise_xor(
            row_factors[:, :, None], col_factors[:, None, :]
        ).reshape(20, 64)
        assert np.array_equal(rejoined, dense)


class TestStructuredEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("dictionary", DICTIONARIES)
    @pytest.mark.parametrize("seed", [0, 11])
    def test_products_match_dense(self, shape, dictionary, seed):
        dense, structured = make_pair(shape, dictionary, seed=seed)
        rng = np.random.default_rng(seed)
        coefficients = rng.standard_normal(structured.n_coefficients)
        measurements = rng.standard_normal(structured.n_samples)
        np.testing.assert_allclose(
            structured.matvec(coefficients), dense.matvec(coefficients), atol=ATOL
        )
        np.testing.assert_allclose(
            structured.rmatvec(measurements), dense.rmatvec(measurements), atol=ATOL
        )
        pixels = rng.standard_normal(structured.n_coefficients)
        np.testing.assert_allclose(
            structured.phi_dot(pixels), dense.phi_dot(pixels), atol=ATOL
        )

    @pytest.mark.parametrize("dictionary", DICTIONARIES)
    def test_columns_match_dense(self, dictionary):
        dense, structured = make_pair((8, 16), dictionary, seed=2)
        indices = [0, 3, 17, structured.n_coefficients - 1]
        np.testing.assert_allclose(
            structured.columns(indices), dense.columns(indices), atol=ATOL
        )
        np.testing.assert_allclose(
            structured.column(5), dense.column(5), atol=ATOL
        )
        np.testing.assert_allclose(structured.dense(), dense.dense(), atol=ATOL)

    def test_materialised_phi_matches_shared_builder(self):
        dense, structured = make_pair((8, 8), "dct", seed=4)
        assert structured.phi.tobytes() == dense.phi.tobytes()

    def test_density_matches_dense_mean_bit_for_bit(self):
        _, structured = make_pair((8, 16), "identity", seed=9, center=False)
        assert structured.density == float(structured.phi.mean())

    def test_uncentered_operator(self):
        dense, structured = make_pair((8, 8), "dct", seed=1, center=False)
        vector = np.random.default_rng(0).standard_normal(64)
        np.testing.assert_allclose(
            structured.matvec(vector), dense.matvec(vector), atol=ATOL
        )

    def test_operator_norm_matches_dense(self):
        dense, structured = make_pair((8, 16), "dct", seed=3)
        assert structured.operator_norm() == pytest.approx(
            dense.operator_norm(), rel=1e-6
        )

    def test_empty_columns(self):
        _, structured = make_pair((8, 8), "dct")
        assert structured.columns([]).shape == (structured.n_samples, 0)

    def test_validation_errors(self):
        psi = make_dictionary("dct", (8, 8))
        with pytest.raises(ValueError, match="2-D"):
            StructuredSensingOperator(np.zeros(4), np.zeros((4, 8)))
        with pytest.raises(ValueError, match="sample counts"):
            StructuredSensingOperator(
                np.zeros((4, 8), dtype=np.uint8), np.zeros((5, 8), dtype=np.uint8)
            )
        with pytest.raises(ValueError, match="0/1"):
            StructuredSensingOperator(np.full((4, 8), 2), np.zeros((4, 8)))
        with pytest.raises(ValueError, match="dictionary shape"):
            StructuredSensingOperator(
                np.zeros((4, 8), dtype=np.uint8),
                np.zeros((4, 16), dtype=np.uint8),
                psi,
            )
        _, structured = make_pair((8, 8), "dct")
        with pytest.raises(ValueError, match="entries"):
            structured.phi_dot(np.zeros(7))
        with pytest.raises(ValueError, match="entries"):
            structured.rmatvec(np.zeros(3))


class TestBatchedDictionaries:
    @pytest.mark.parametrize("dictionary", DICTIONARIES)
    @pytest.mark.parametrize("shape", [(8, 8), (8, 16)])
    def test_batch_transforms_match_loops(self, dictionary, shape):
        psi = make_dictionary(dictionary, shape)
        batch = np.random.default_rng(0).standard_normal((5, psi.n_pixels))
        looped = np.stack([psi.synthesize(row) for row in batch])
        np.testing.assert_allclose(psi.synthesize_batch(batch), looped, atol=1e-12)
        looped = np.stack([psi.analyze(row) for row in batch])
        np.testing.assert_allclose(psi.analyze_batch(batch), looped, atol=1e-12)

    @pytest.mark.parametrize("dictionary", DICTIONARIES)
    def test_atoms_match_single_atom(self, dictionary):
        psi = make_dictionary(dictionary, (8, 8))
        indices = [0, 7, 21, 63]
        stacked = psi.atoms(indices)
        assert stacked.shape == (64, len(indices))
        for position, index in enumerate(indices):
            np.testing.assert_allclose(stacked[:, position], psi.atom(index), atol=1e-12)

    def test_atoms_validates_indices(self):
        psi = make_dictionary("dct", (8, 8))
        with pytest.raises(ValueError, match="atom index"):
            psi.atoms([64])

    def test_batch_shape_validated(self):
        psi = make_dictionary("dct", (8, 8))
        with pytest.raises(ValueError, match="shape"):
            psi.synthesize_batch(np.zeros((2, 63)))


class TestOperatorNormCaching:
    def test_memoised_on_instance(self):
        dense, _ = make_pair((8, 8), "dct", seed=6)
        calls = {"n": 0}
        original = dense.phi_dot

        def counting_phi_dot(vector):
            calls["n"] += 1
            return original(vector)

        dense.phi_dot = counting_phi_dot
        first = dense.operator_norm()
        after_first = calls["n"]
        second = dense.operator_norm()
        assert second == first
        assert calls["n"] == after_first  # no extra iterations on the second call

    def test_tolerance_early_exit(self):
        dense, _ = make_pair((8, 8), "dct", seed=6)
        calls = {"n": 0}
        original = dense.phi_dot

        def counting_phi_dot(vector):
            calls["n"] += 1
            return original(vector)

        dense.phi_dot = counting_phi_dot
        loose = dense.operator_norm(tolerance=1e-3)
        loose_calls = calls["n"]
        calls["n"] = 0
        exact = dense.operator_norm(tolerance=0.0)
        assert calls["n"] == 50  # tolerance=0 restores the fixed iteration count
        assert loose_calls < 50
        # The relative-change stop leaves a slack roughly 1/(1 - λ2²/λ1²)
        # times the tolerance when the spectrum is clustered; a loose 1e-3
        # stop is still a few-percent-accurate Lipschitz estimate.
        assert loose == pytest.approx(exact, rel=2e-2)

    def test_warm_start_converges_fast(self):
        dense, structured = make_pair((8, 16), "dct", seed=8)
        sigma = dense.operator_norm(tolerance=0.0)
        calls = {"n": 0}
        original = structured.phi_dot

        def counting_phi_dot(vector):
            calls["n"] += 1
            return original(vector)

        structured.phi_dot = counting_phi_dot
        # Warm-start the structured twin with the dense operator's converged
        # direction (phi-domain, matching the orthonormal-shortcut iteration):
        # a couple of iterations suffice.
        vector = np.random.default_rng(0).standard_normal(structured.n_coefficients)
        for _ in range(100):
            product = dense.phi_rdot(dense.phi_dot(vector))
            vector = product / np.linalg.norm(product)
        warm = structured.operator_norm(warm_start=vector)
        assert calls["n"] <= 10
        assert warm == pytest.approx(sigma, rel=1e-3)

    def test_explicit_warm_start_does_not_poison_memo(self):
        first, _ = make_pair((8, 8), "dct", seed=6)
        second, _ = make_pair((8, 8), "dct", seed=6)
        cold = second.operator_norm()
        rng = np.random.default_rng(1)
        first.operator_norm(warm_start=rng.standard_normal(64))
        # A later history-free call must return the cold-start value, not
        # whatever the caller's warm start converged to.
        assert first.operator_norm() == cold

    def test_step_size_cache_bounds_exact_entries(self):
        cache = StepSizeCache(max_entries=2)
        vector = np.ones(4)
        for index in range(5):
            cache.store(("key", index), None, 1.0, vector)
        assert len(cache) == 2
        assert cache.norm(("key", 0)) is None
        assert cache.norm(("key", 4)) == 1.0
        with pytest.raises(ValueError, match="max_entries"):
            StepSizeCache(max_entries=0)

    def test_step_size_cache_exact_hit(self):
        cache = StepSizeCache()
        dense, _ = make_pair((8, 8), "dct", seed=6)
        dense.norm_cache = cache
        dense.norm_exact_key = ("k",)
        dense.norm_warm_key = ("w",)
        first = dense.operator_norm()
        assert cache.exact_hits == 0 and len(cache) == 1
        # A fresh operator with the same exact key reuses the norm verbatim.
        other, _ = make_pair((8, 8), "dct", seed=6)
        other.norm_cache = cache
        other.norm_exact_key = ("k",)
        other.norm_warm_key = ("w",)
        assert other.operator_norm() == first
        assert cache.exact_hits == 1

    def test_step_size_cache_warm_vector(self):
        cache = StepSizeCache()
        first, _ = make_pair((8, 8), "dct", seed=6)
        first.norm_cache = cache
        first.norm_exact_key = ("a",)
        first.norm_warm_key = ("geom",)
        first.operator_norm()
        # A same-geometry operator with a different seed misses the exact key
        # but picks up the warm vector.
        second, _ = make_pair((8, 8), "dct", seed=7)
        second.norm_cache = cache
        second.norm_exact_key = ("b",)
        second.norm_warm_key = ("geom",)
        sigma = second.operator_norm()
        assert cache.warm_hits == 1
        fresh, _ = make_pair((8, 8), "dct", seed=7)
        assert sigma == pytest.approx(fresh.operator_norm(), rel=1e-2)


class TestBatchedSolver:
    def _stack(self, n_tiles=3, shape=(8, 8), dictionary="dct", n_samples=40):
        operators = []
        measurements = []
        rng = np.random.default_rng(0)
        for index in range(n_tiles):
            _, structured = make_pair(
                shape, dictionary, seed=20 + index, n_samples=n_samples
            )
            operators.append(structured)
            measurements.append(rng.standard_normal(n_samples))
        return operators, np.stack(measurements)

    def test_batched_norms_match_solo(self):
        operators, _ = self._stack()
        sigmas, vectors = batched_operator_norms(operators)
        assert vectors.shape == (3, 64)
        for operator, sigma in zip(operators, sigmas):
            assert sigma == pytest.approx(operator.operator_norm(), rel=1e-5)

    @pytest.mark.parametrize("accelerated", [True, False])
    def test_batched_solve_matches_per_tile(self, accelerated):
        operators, measurements = self._stack()
        solo_solver = fista if accelerated else ista
        sigmas, _ = batched_operator_norms(operators)
        steps = 1.0 / sigmas ** 2
        batched = batched_proximal_gradient(
            operators,
            measurements,
            regularization=0.05,
            max_iterations=60,
            step_sizes=steps,
            accelerated=accelerated,
        )
        for operator, y, step, result in zip(
            operators, measurements, steps, batched
        ):
            solo = solo_solver(
                operator,
                y,
                regularization=0.05,
                max_iterations=60,
                step_size=float(step),
            )
            np.testing.assert_allclose(
                result.coefficients, solo.coefficients, atol=1e-8
            )
            assert result.n_iterations == solo.n_iterations
            assert result.converged == solo.converged
            assert len(result.history) == len(solo.history)

    def test_per_tile_regularization(self):
        operators, measurements = self._stack(n_tiles=2)
        weights = np.array([0.01, 0.5])
        batched = batched_proximal_gradient(
            operators, measurements, regularization=weights, max_iterations=40
        )
        for operator, y, weight, result in zip(
            operators, measurements, weights, batched
        ):
            solo = fista(operator, y, regularization=float(weight), max_iterations=40)
            np.testing.assert_allclose(
                result.coefficients, solo.coefficients, atol=1e-8
            )

    def test_heterogeneous_stack_rejected(self):
        operators, measurements = self._stack(n_tiles=2)
        _, odd = make_pair((8, 16), "dct", seed=30, n_samples=40)
        with pytest.raises(ValueError, match="shapes differ"):
            batched_proximal_gradient(
                [operators[0], odd],
                measurements,
                regularization=0.1,
            )

    def test_dense_operator_rejected(self):
        dense, structured = make_pair((8, 8), "dct")
        with pytest.raises(TypeError, match="Structured"):
            batched_proximal_gradient(
                [dense, structured], np.zeros((2, 40)), regularization=0.1
            )

    def test_measurement_shape_validated(self):
        operators, _ = self._stack(n_tiles=2)
        with pytest.raises(ValueError, match="shape"):
            batched_proximal_gradient(
                operators, np.zeros((2, 13)), regularization=0.1
            )

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            batched_operator_norms([])

    def test_mismatched_sample_counts_rejected(self):
        _, a = make_pair((8, 8), "dct", seed=1, n_samples=40)
        _, b = make_pair((8, 8), "dct", seed=2, n_samples=41)
        with pytest.raises(ValueError, match="sample counts"):
            batched_operator_norms([a, b])

    def test_mismatched_dictionaries_rejected(self):
        _, a = make_pair((8, 8), "dct", seed=1)
        _, b = make_pair((8, 8), "haar", seed=2)
        with pytest.raises(ValueError, match="dictionary"):
            batched_operator_norms([a, b])

    def test_negative_regularization_rejected(self):
        operators, measurements = self._stack(n_tiles=2)
        with pytest.raises(ValueError, match="regularization"):
            batched_proximal_gradient(
                operators, measurements, regularization=np.array([0.1, -0.1])
            )

    def test_non_positive_steps_rejected(self):
        operators, measurements = self._stack(n_tiles=2)
        with pytest.raises(ValueError, match="step_sizes"):
            batched_proximal_gradient(
                operators,
                measurements,
                regularization=0.1,
                step_sizes=np.array([0.0, 0.1]),
            )

    def test_zero_warm_start_rejected(self):
        operators, _ = self._stack(n_tiles=1)
        with pytest.raises(ValueError, match="non-zero"):
            batched_operator_norms(
                operators, warm_starts=[np.zeros(operators[0].n_coefficients)]
            )

    def test_zero_operator_tile(self):
        """An all-dark Φ (all factors zero) gets σ=0 and the unit fallback step."""
        zero = StructuredSensingOperator(
            np.zeros((40, 8), dtype=np.uint8),
            np.zeros((40, 8), dtype=np.uint8),
            make_dictionary("dct", (8, 8)),
        )
        sigmas, _ = batched_operator_norms([zero])
        assert sigmas[0] == 0.0
        results = batched_proximal_gradient(
            [zero], np.zeros((1, 40)), regularization=0.1, max_iterations=5
        )
        assert results[0].converged
        assert not results[0].coefficients.any()


class TestNonOrthonormalFallback:
    """A custom non-orthonormal Ψ routes the norm through the full A*A pair."""

    @staticmethod
    def _scaled_dictionary():
        from repro.cs.dictionaries import IdentityDictionary

        class ScaledDictionary(IdentityDictionary):
            orthonormal = False

            def synthesize(self, coefficients):
                return 2.0 * super().synthesize(coefficients)

            def analyze(self, image):
                return 2.0 * super().analyze(image)

            def synthesize_batch(self, coefficients):
                return 2.0 * super().synthesize_batch(coefficients)

            def analyze_batch(self, images):
                return 2.0 * super().analyze_batch(images)

        return ScaledDictionary((8, 8))

    def test_solo_norm_includes_dictionary(self):
        _, structured = make_pair((8, 8), "identity", seed=4)
        scaled = StructuredSensingOperator(
            structured.row_factors,
            structured.col_factors,
            self._scaled_dictionary(),
            center=structured.center,
        )
        assert scaled.operator_norm() == pytest.approx(
            2.0 * structured.operator_norm(), rel=1e-6
        )

    def test_batched_norms_include_dictionary(self):
        _, structured = make_pair((8, 8), "identity", seed=4)
        scaled = StructuredSensingOperator(
            structured.row_factors,
            structured.col_factors,
            self._scaled_dictionary(),
            center=structured.center,
        )
        sigmas, _ = batched_operator_norms([scaled])
        assert sigmas[0] == pytest.approx(scaled.operator_norm(), rel=1e-5)
