"""Live streaming of compressive captures: node → wire → receiver.

The paper's motivating scenario — an autonomous camera node delivering
images "over a network under a restricted data rate" by shipping compressed
samples plus only the CA seed — implemented as a working service on top of
the capture engines:

* :mod:`repro.stream.protocol` — the chunked wire protocol (v2 frames with
  capture statistics, seed-once GOPs, incremental chunk parsing);
* :mod:`repro.stream.transport` — bounded loopback and TCP byte transports,
  both exerting real backpressure on the sender;
* :mod:`repro.stream.node` — :class:`CameraNode`, the asyncio capture-and-
  send loop with its bits-per-frame :class:`BitrateGovernor`;
* :mod:`repro.stream.session` — :class:`StreamSession`, the per-stream chunk
  FSM (seed chains, tile barriers, incremental reconstruction state);
* :mod:`repro.stream.hub` — :class:`ReceiverHub`, the fleet-scale ingest
  service muxing many node connections over one event loop, with
  round-robin solve fairness (:class:`FairSolveScheduler`) and two-level
  backpressure high-watermarks;
* :mod:`repro.stream.receiver` — :class:`StreamReceiver`, the single-node
  receiver (a thin one-session hub), decoding chunks as they arrive and
  reconstructing incrementally (per tile, per frame), byte-identical to the
  in-process reconstruction pipeline;
* :mod:`repro.stream.fault` — :class:`LossyTransport`, seeded chunk-level
  fault injection (drop / truncate / duplicate / reorder), the adversary
  the resilient receive path and the closed rate-control loop are tested
  against.
"""

from repro.stream.fault import LossyTransport
from repro.stream.hub import (
    DuplicateStreamIdError,
    FairSolveScheduler,
    HubCapacityError,
    HubStats,
    ReceiverHub,
)
from repro.stream.node import (
    BitrateGovernor,
    CameraNode,
    ChannelBudgetError,
    StreamStats,
)
from repro.stream.protocol import (
    CONTROL_CHUNK_TYPES,
    Chunk,
    ChunkDecoder,
    ChunkType,
    ControlAck,
    FrameData,
    FrameParity,
    FrameSegment,
    RateAdvice,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    decode_control_ack,
    decode_frame_parity,
    decode_frame_segment,
    decode_rate_advice,
    encode_chunk,
    encode_control_ack,
    encode_frame_parity,
    encode_frame_segment,
    encode_rate_advice,
)
from repro.stream.receiver import (
    ReceivedFrame,
    StreamReceiver,
    StreamResult,
    receive_stream,
)
from repro.stream.session import FrameLossReport, SessionStats, StreamSession
from repro.stream.transport import (
    DuplexTransport,
    LoopbackTransport,
    TcpTransport,
    TransportClosedError,
    connect_tcp,
    loopback_duplex_pair,
    serve_tcp,
)

__all__ = [
    "CameraNode",
    "BitrateGovernor",
    "ChannelBudgetError",
    "StreamStats",
    "StreamReceiver",
    "StreamResult",
    "ReceivedFrame",
    "receive_stream",
    "StreamSession",
    "SessionStats",
    "FrameLossReport",
    "ReceiverHub",
    "FairSolveScheduler",
    "HubStats",
    "DuplicateStreamIdError",
    "HubCapacityError",
    "LoopbackTransport",
    "DuplexTransport",
    "loopback_duplex_pair",
    "LossyTransport",
    "TcpTransport",
    "TransportClosedError",
    "connect_tcp",
    "serve_tcp",
    "Chunk",
    "ChunkType",
    "ChunkDecoder",
    "FrameData",
    "FrameSegment",
    "FrameParity",
    "ControlAck",
    "RateAdvice",
    "CONTROL_CHUNK_TYPES",
    "StreamHeader",
    "StreamProtocolError",
    "advance_seed_state",
    "encode_chunk",
    "encode_frame_segment",
    "decode_frame_segment",
    "encode_frame_parity",
    "decode_frame_parity",
    "encode_control_ack",
    "decode_control_ack",
    "encode_rate_advice",
    "decode_rate_advice",
]
