"""Tests for image manipulation helpers."""

import numpy as np
import pytest

from repro.utils.images import (
    block_view,
    crop_center,
    image_to_vector,
    normalize_image,
    resize_nearest,
    unblock_view,
    vector_to_image,
)


class TestNormalizeImage:
    def test_maps_to_unit_interval(self):
        image = np.array([[2.0, 4.0], [6.0, 8.0]])
        normalized = normalize_image(image)
        assert normalized.min() == 0.0
        assert normalized.max() == 1.0

    def test_custom_range(self):
        normalized = normalize_image(np.array([[0.0, 1.0]]), low=10.0, high=20.0)
        assert normalized.min() == 10.0
        assert normalized.max() == 20.0

    def test_constant_image_maps_to_low(self):
        assert np.all(normalize_image(np.full((4, 4), 3.0)) == 0.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            normalize_image(np.zeros((2, 2)), low=1.0, high=0.0)


class TestVectorRoundTrip:
    def test_round_trip_preserves_values(self):
        image = np.arange(12, dtype=float).reshape(3, 4)
        assert np.array_equal(vector_to_image(image_to_vector(image), (3, 4)), image)

    def test_raster_order(self):
        image = np.array([[1, 2], [3, 4]])
        assert image_to_vector(image).tolist() == [1, 2, 3, 4]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            vector_to_image(np.zeros(5), (2, 3))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            image_to_vector(np.zeros((2, 2, 2)))


class TestBlockView:
    def test_round_trip(self):
        image = np.arange(64, dtype=float).reshape(8, 8)
        blocks = block_view(image, 4)
        assert blocks.shape == (4, 4, 4)
        assert np.array_equal(unblock_view(blocks, (8, 8)), image)

    def test_blocks_are_contiguous_regions(self):
        image = np.arange(16).reshape(4, 4)
        blocks = block_view(image, 2)
        assert np.array_equal(blocks[0], np.array([[0, 1], [4, 5]]))

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError):
            block_view(np.zeros((6, 6)), 4)

    def test_unblock_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            unblock_view(np.zeros((3, 2, 2)), (4, 4))


class TestCropAndResize:
    def test_crop_center_extracts_middle(self):
        image = np.arange(36).reshape(6, 6)
        cropped = crop_center(image, (2, 2))
        assert cropped.shape == (2, 2)
        assert cropped[0, 0] == image[2, 2]

    def test_crop_larger_than_image_rejected(self):
        with pytest.raises(ValueError):
            crop_center(np.zeros((4, 4)), (6, 6))

    def test_resize_nearest_shape(self):
        resized = resize_nearest(np.arange(16, dtype=float).reshape(4, 4), (8, 8))
        assert resized.shape == (8, 8)

    def test_resize_identity(self):
        image = np.arange(16, dtype=float).reshape(4, 4)
        assert np.array_equal(resize_nearest(image, (4, 4)), image)

    def test_resize_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            resize_nearest(np.zeros((4, 4)), (0, 4))
