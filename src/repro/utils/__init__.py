"""Shared utilities: validation, bit manipulation, image helpers and RNG.

These helpers are deliberately small and dependency-free (numpy only) so that
every other subsystem — cellular automata, pixel models, the sensor simulator
and the compressive-sampling core — can rely on them without pulling in the
heavier packages.
"""

from repro.utils.bitops import (
    bits_to_int,
    bit_width,
    int_to_bits,
    popcount,
    saturate,
    wrap_unsigned,
)
from repro.utils.images import (
    block_view,
    image_to_vector,
    normalize_image,
    unblock_view,
    vector_to_image,
)
from repro.utils.rng import derive_seed, new_rng
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
    check_shape,
)

__all__ = [
    "bits_to_int",
    "bit_width",
    "int_to_bits",
    "popcount",
    "saturate",
    "wrap_unsigned",
    "block_view",
    "image_to_vector",
    "normalize_image",
    "unblock_view",
    "vector_to_image",
    "derive_seed",
    "new_rng",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_probability",
    "check_shape",
]
