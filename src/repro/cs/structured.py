"""Matrix-free rank-structured sensing operator for CA-XOR measurement matrices.

The sensor's XOR selection gate makes every row of Φ an outer XOR of the CA's
row and column cells:

    Φ[i, (r, c)] = R[i, r] ⊕ C[i, c] = R[i, r] + C[i, c] − 2·R[i, r]·C[i, c]

so Φ applied to an image ``X`` (shape ``rows x cols``) never needs the dense
``(m, rows·cols)`` matrix:

    (Φ x)_i = R_i · rowsum(X) + C_i · colsum(X) − 2 · (R_i X) · C_i

— three small matmuls over the raw factors, exactly the identity the batched
behavioural capture engine uses (the bit-fidelity invariant).  The adjoint has
the mirrored form: the back-projected image of a measurement vector ``y`` is

    Φ* y = (Rᵀy) 1ᵀ + 1 (Cᵀy)ᵀ − 2 · Rᵀ diag(y) C

:class:`StructuredSensingOperator` packages this with a fast dictionary Ψ so
the whole solver stack runs matrix-free: a 64x64 tile's dense Φ is a 53 MB
float64 matrix streamed from memory on every product, while the factors are a
few hundred kilobytes driving small BLAS-3 kernels.  Centring (subtracting
the matrix density ``d``) folds in analytically: ``(Φ − d) x = Φx − d·sum(x)``.

The dense :class:`~repro.cs.operators.SensingOperator` stays in place as the
executable reference; ``tests/cs/test_structured.py`` and
``tests/recon/test_equivalence.py`` pin the two implementations against each
other across dictionaries, shapes, seeds and solvers (the recon-equivalence
invariant).
"""

from __future__ import annotations


import numpy as np

from repro.ca.selection import selection_masks_from_states
from repro.cs.dictionaries import Dictionary, IdentityDictionary
from repro.cs.operators import BaseSensingOperator


class StructuredSensingOperator(BaseSensingOperator):
    """Matrix-free ``A = (Φ − d) Ψ`` built from the CA factor pair ``(R, C)``.

    Parameters
    ----------
    row_factors:
        The ``(m, rows)`` 0/1 CA row-cell states ``R`` (one row per sample).
    col_factors:
        The ``(m, cols)`` 0/1 CA column-cell states ``C``.
    dictionary:
        Sparsifying dictionary Ψ; its shape must be exactly ``(rows, cols)``
        because the rank-structured products need the 2-D pixel layout.
        Identity when omitted.
    center:
        The density offset ``d`` subtracted from every Φ entry (0.0 keeps
        the raw 0/1 matrix).  Use :attr:`density` for the exact matrix mean.
    """

    def __init__(
        self,
        row_factors: np.ndarray,
        col_factors: np.ndarray,
        dictionary: Dictionary | None = None,
        *,
        center: float = 0.0,
    ) -> None:
        row_factors = np.asarray(row_factors)
        col_factors = np.asarray(col_factors)
        if row_factors.ndim != 2 or col_factors.ndim != 2:
            raise ValueError("row_factors and col_factors must be 2-D arrays")
        if row_factors.shape[0] != col_factors.shape[0]:
            raise ValueError(
                f"factor sample counts differ: {row_factors.shape[0]} rows vs "
                f"{col_factors.shape[0]} cols"
            )
        for name, factors in (("row_factors", row_factors), ("col_factors", col_factors)):
            if not np.isin(factors, (0, 1)).all():
                raise ValueError(f"{name} must contain only 0/1 values")
        self.row_factors = row_factors.astype(np.uint8)
        self.col_factors = col_factors.astype(np.uint8)
        self._rowf = row_factors.astype(np.float64)
        self._colf = col_factors.astype(np.float64)
        self.image_shape: tuple[int, int] = (
            int(row_factors.shape[1]),
            int(col_factors.shape[1]),
        )
        self._phi: np.ndarray | None = None
        self.center = float(center)
        if dictionary is None:
            dictionary = IdentityDictionary(self.image_shape)
        if dictionary.shape != self.image_shape:
            raise ValueError(
                f"dictionary shape {dictionary.shape} does not match the "
                f"factor image shape {self.image_shape}"
            )
        super().__init__(row_factors.shape[0], dictionary)

    # ------------------------------------------------------------ centring
    @property
    def center(self) -> float:
        """The density offset ``d`` subtracted from every Φ entry."""
        return self._center

    @center.setter
    def center(self, value: float) -> None:
        # The materialised Φ bakes the offset in — changing the centring
        # (frame_operator does, right after construction) must drop it.
        self._center = float(value)
        self._phi = None

    # ------------------------------------------------------------- density
    @property
    def density(self) -> float:
        """The exact mean of the 0/1 matrix Φ, computed from the factors.

        Per sample, the XOR selects ``nR·(cols − nC) + (rows − nR)·nC``
        pixels; all counts are exact integers, so this equals
        ``phi.mean()`` of the materialised matrix bit for bit.
        """
        rows, cols = self.image_shape
        selected = self.selected_per_sample()
        return float(selected.sum()) / float(self.n_samples * rows * cols)

    def selected_per_sample(self) -> np.ndarray:
        """Number of selected pixels per sample (the row sums of 0/1 Φ)."""
        rows, cols = self.image_shape
        n_row_high = self.row_factors.sum(axis=1, dtype=np.int64)
        n_col_high = self.col_factors.sum(axis=1, dtype=np.int64)
        return n_row_high * (cols - n_col_high) + (rows - n_row_high) * n_col_high

    # ------------------------------------------------------------ products
    def phi_dot(self, pixels: np.ndarray) -> np.ndarray:
        pixels = np.asarray(pixels, dtype=float).reshape(-1)
        rows, cols = self.image_shape
        if pixels.size != rows * cols:
            raise ValueError(
                f"pixel vector must have {rows * cols} entries, got {pixels.size}"
            )
        image = pixels.reshape(rows, cols)
        projected = (
            self._rowf @ image.sum(axis=1)
            + self._colf @ image.sum(axis=0)
            - 2.0 * ((self._rowf @ image) * self._colf).sum(axis=1)
        )
        if self.center:
            projected = projected - self.center * image.sum()
        return projected

    def phi_rdot(self, measurements: np.ndarray) -> np.ndarray:
        measurements = np.asarray(measurements, dtype=float).reshape(-1)
        row_corr = self._rowf.T @ measurements
        col_corr = self._colf.T @ measurements
        cross = (self._rowf * measurements[:, None]).T @ self._colf
        back = row_corr[:, None] + col_corr[None, :] - 2.0 * cross
        if self.center:
            back = back - self.center * measurements.sum()
        return back.reshape(-1)

    #: Column batches at least this wide ride the materialised Φ instead of
    #: the factor algebra: the cross term costs the same ``k·m·n`` flops
    #: either way, but one dense GEMM beats ``k`` small batched products —
    #: and greedy solvers (the only column-heavy consumers) re-request
    #: growing supports every iteration, so the one-off expansion amortises.
    MATERIALIZE_COLUMN_THRESHOLD = 8

    def phi_dot_columns(self, atoms: np.ndarray) -> np.ndarray:
        atoms = np.asarray(atoms, dtype=float)
        if atoms.shape[1] >= self.MATERIALIZE_COLUMN_THRESHOLD:
            return self.phi @ atoms
        rows, cols = self.image_shape
        images = atoms.T.reshape(-1, rows, cols)
        rowsums = images.sum(axis=2)
        colsums = images.sum(axis=1)
        projected = (
            rowsums @ self._rowf.T
            + colsums @ self._colf.T
            - 2.0 * np.einsum(
                "mr,krc,mc->km", self._rowf, images, self._colf, optimize=True
            )
        )
        if self.center:
            projected = projected - self.center * images.sum(axis=(1, 2))[:, None]
        return projected.T

    # --------------------------------------------------------------- dense
    @property
    def phi(self) -> np.ndarray:
        """The materialised (centred) dense Φ — compatibility escape hatch.

        Expanded lazily via the same broadcast XOR as the shared dense
        builder and cached; the solver hot paths never touch it.
        """
        if self._phi is None:
            rows, cols = self.image_shape
            masks = selection_masks_from_states(
                np.concatenate([self.row_factors, self.col_factors], axis=1),
                rows,
                cols,
            )
            self._phi = masks.astype(float) - self.center
        return self._phi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows, cols = self.image_shape
        return (
            f"StructuredSensingOperator(m={self.n_samples}, image={rows}x{cols}, "
            f"center={self.center:.4f}, dictionary={type(self.dictionary).__name__})"
        )
