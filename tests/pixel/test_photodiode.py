"""Tests for the integrating photodiode model."""

import numpy as np
import pytest

from repro.pixel.photodiode import Photodiode


class TestDischargeRate:
    def test_rate_proportional_to_current(self):
        diode = Photodiode(capacitance=10e-15)
        assert diode.discharge_rate(2e-9) == pytest.approx(2 * diode.discharge_rate(1e-9))

    def test_rate_inverse_to_capacitance(self):
        small = Photodiode(capacitance=5e-15)
        large = Photodiode(capacitance=10e-15)
        assert small.discharge_rate(1e-9) == pytest.approx(2 * large.discharge_rate(1e-9))

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            Photodiode().discharge_rate(-1e-9)

    def test_invalid_capacitance_rejected(self):
        with pytest.raises(ValueError):
            Photodiode(capacitance=0.0)


class TestVoltageAt:
    def test_starts_at_reset_voltage(self):
        diode = Photodiode(reset_voltage=3.3)
        assert diode.voltage_at(1e-9, 0.0) == pytest.approx(3.3)

    def test_discharges_linearly(self):
        diode = Photodiode(capacitance=10e-15, reset_voltage=3.3)
        current = 1e-9
        t = 1e-6
        expected = 3.3 - current * t / 10e-15
        assert diode.voltage_at(current, t) == pytest.approx(max(expected, 0.0))

    def test_clips_at_zero(self):
        diode = Photodiode()
        assert diode.voltage_at(1e-6, 1.0) == 0.0

    def test_vectorised_over_pixels(self):
        diode = Photodiode()
        currents = np.array([[1e-9, 2e-9], [4e-9, 8e-9]])
        voltages = diode.voltage_at(currents, 1e-8)
        assert voltages.shape == (2, 2)
        assert voltages[0, 0] > voltages[1, 1]


class TestCrossingTime:
    def test_brighter_pixels_cross_earlier(self):
        diode = Photodiode()
        times = diode.crossing_time(np.array([1e-9, 10e-9]), reference_voltage=1.0)
        assert times[1] < times[0]

    def test_crossing_time_formula(self):
        diode = Photodiode(capacitance=10e-15, reset_voltage=3.3)
        current = 5e-9
        expected = (3.3 - 1.0) * 10e-15 / current
        assert diode.crossing_time(current, 1.0) == pytest.approx(expected)

    def test_zero_current_never_crosses(self):
        diode = Photodiode()
        assert np.isinf(diode.crossing_time(np.array([0.0]), 1.0)[0])

    def test_reference_above_reset_rejected(self):
        diode = Photodiode(reset_voltage=3.3)
        with pytest.raises(ValueError):
            diode.crossing_time(1e-9, 3.5)
