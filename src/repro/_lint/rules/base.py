"""Shared rule plumbing: the rule base class and small AST helpers."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro._lint.engine import Finding, ModuleContext


class Rule:
    """One architectural contract, checked statically.

    Subclasses set :attr:`rule_id`/:attr:`contract` and implement
    :meth:`check`, yielding findings for one module.  Rules must be pure
    functions of the module context — no filesystem access, no state — so
    the fixture tests can replay them on in-memory sources.
    """

    rule_id: str = "REPRO999"
    contract: str = ""

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        """Build a finding anchored at ``node``'s position."""
        return Finding(
            rule_id=self.rule_id,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
        )


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def has_none_subscript(node: ast.AST) -> bool:
    """True when ``node`` subscripts with ``None`` (a broadcast-expansion axis).

    Detects the ``x[:, :, None]`` / ``x[:, None, :]`` shapes used to expand a
    factor pair into a full outer product.
    """
    if not isinstance(node, ast.Subscript):
        return False
    slice_node = node.slice
    elements = (
        slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
    )
    return any(
        isinstance(element, ast.Constant) and element.value is None
        for element in elements
    )
