"""Fault-injection suite: the lossy channel, pinned end to end.

The layer under test is the loss-resilience stack of ISSUE 8: seeded
chunk-level faults (:class:`~repro.stream.fault.LossyTransport`), the
resilient session FSM (sequence gaps → tracked losses, partial-Φ solves,
parity recovery), and the closed rate-control loop.  Two kinds of pins:

* **exact accounting** — the receiver's loss metadata must equal the
  injected fault pattern (drop indices are chunk sequences, one chunk per
  ``send``), down to per-frame sample counts;
* **no-raise reconstruction** — a streamed 64×64 video at 10% seeded chunk
  loss lands and reconstructs *every* frame without an exception, the
  system-level acceptance criterion.
"""

import asyncio

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.fault import LossyTransport
from repro.stream.hub import ReceiverHub
from repro.stream.node import BitrateGovernor, CameraNode
from repro.stream.protocol import ChunkDecoder
from repro.stream.receiver import StreamReceiver
from repro.stream.session import FrameLossReport, StreamSession
from repro.stream.transport import LoopbackTransport, loopback_duplex_pair


CONFIG = SensorConfig(rows=16, cols=16)


def run(coro):
    return asyncio.run(coro)


class RecordingTransport:
    """Swallows every sent slice into a list (no receiver on the other end)."""

    def __init__(self):
        self.slices = []
        self.closed = False

    async def send(self, data):
        self.slices.append(bytes(data))

    async def recv(self):
        return None

    async def close(self):
        self.closed = True


class InlineScheduler:
    """Solve scheduler that runs the job synchronously on submit."""

    async def submit(self, key, fn):
        future = asyncio.get_running_loop().create_future()
        future.set_result(fn())
        return future


def _sequencer(seed=7, samples=50):
    return VideoSequencer(
        CompressiveImager(CONFIG, seed=seed), samples_per_frame=samples, seed=seed
    )


def _scenes(n, shape=(16, 16), seed=0):
    return [make_scene("blobs", shape, seed=seed + index) for index in range(n)]


async def _record_video_chunks(
    n_frames=4, *, segments_per_frame=4, parity=True, gop_size=4
):
    """Capture a video stream's exact chunk slices without a receiver."""
    transport = RecordingTransport()
    node = CameraNode(
        transport,
        gop_size=gop_size,
        segments_per_frame=segments_per_frame,
        parity=parity,
    )
    stats = await node.stream_video(_sequencer(), _scenes(n_frames))
    return transport.slices, stats


def _decode_all(slices):
    decoder = ChunkDecoder()
    chunks = []
    for data in slices:
        chunks.extend(decoder.feed(data))
    return chunks


async def _feed_session(chunks, **session_options):
    """Drive chunks straight through a resilient session (no transport)."""
    session = StreamSession(
        1,
        InlineScheduler(),
        resilient=True,
        max_iterations=5,
        **session_options,
    )
    for chunk in chunks:
        await session.handle_chunk(chunk)
    result = await session.finish()
    return session, result


class TestLossyTransport:
    """The fault injector itself: seeded, replayable, rate-checked."""

    async def _drive(self, seed, n_slices=40, **rates):
        inner = RecordingTransport()
        lossy = LossyTransport(inner, seed=seed, **rates)
        for index in range(n_slices):
            await lossy.send(bytes([index]) * 4)
        await lossy.close()
        return inner, lossy

    def test_fault_pattern_replays_exactly_per_seed(self):
        first = run(self._drive(3, drop_rate=0.2))[1]
        second = run(self._drive(3, drop_rate=0.2))[1]
        other = run(self._drive(4, drop_rate=0.2))[1]
        assert first.dropped == second.dropped
        assert first.dropped  # the pattern actually hit something
        assert first.dropped != other.dropped

    def test_rates_must_be_a_probability_split(self):
        inner = RecordingTransport()
        with pytest.raises(ValueError):
            LossyTransport(inner, seed=0, drop_rate=0.7, truncate_rate=0.4)
        with pytest.raises(ValueError):
            LossyTransport(inner, seed=0, drop_rate=-0.1)

    def test_header_and_final_slice_survive_total_loss(self):
        # Even at drop_rate=1.0 the stream header (slice 0) and the final
        # held slice (the stream-end chunk) are delivered intact.
        inner, lossy = run(self._drive(9, n_slices=6, drop_rate=1.0))
        assert inner.slices == [bytes([0]) * 4, bytes([5]) * 4]
        assert lossy.dropped == [1, 2, 3, 4]

    def test_duplicate_sends_the_slice_twice(self):
        inner, lossy = run(self._drive(5, n_slices=30, duplicate_rate=0.3))
        assert lossy.duplicated
        assert len(inner.slices) == 30 + len(lossy.duplicated)

    def test_reorder_swaps_adjacent_slices(self):
        inner, lossy = run(self._drive(6, n_slices=30, reorder_rate=0.3))
        assert lossy.reordered
        assert sorted(inner.slices) == sorted(bytes([i]) * 4 for i in range(30))
        assert inner.slices != [bytes([i]) * 4 for i in range(30)]


class TestExactLossAccounting:
    """Receiver loss metadata must equal the injected faults, exactly."""

    def test_missing_sequences_equal_the_injected_drops(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            inner = RecordingTransport()
            lossy = LossyTransport(inner, seed=11, drop_rate=0.15)
            for data in slices:
                await lossy.send(data)
            await lossy.close()
            chunks = _decode_all(inner.slices)
            session, result = await _feed_session(chunks)
            return lossy, session, result

        lossy, session, result = run(scenario())
        assert lossy.dropped  # the seed actually injected loss
        # One chunk per send: drop indices ARE the missing chunk sequences.
        assert session.missing_sequences == tuple(lossy.dropped)
        assert session.stats.n_lost_chunks == len(lossy.dropped)
        assert session.stats.n_corrupt_chunks == 0
        assert result.n_frames == 4

    def test_per_frame_report_pins_the_surviving_samples(self):
        # 4 frames x (4 segments + parity) + header + 4 barriers + end.
        # Drop segment 1 of frame 0 (sequence 2) AND its parity (sequence
        # 5): unrecoverable, the frame must land on the surviving 37 of 50
        # samples (segment sizes 12, 13, 12, 13).
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = [c for c in _decode_all(slices) if c.sequence not in (2, 5)]
            return await _feed_session(chunks)

        session, result = run(scenario())
        report = session.stats.frame_loss[0]
        assert report == FrameLossReport(
            frame_index=0,
            n_expected_chunks=5,
            n_received_chunks=3,
            n_recovered_chunks=0,
            n_samples_expected=50,
            n_samples_received=37,
        )
        assert not report.clean
        landed = result.frames[0]
        assert landed.sample_mask is not None
        assert int(landed.sample_mask.sum()) == 37
        assert landed.reconstruction is not None
        # The other three frames arrived untouched and report clean.
        assert [r.clean for r in session.stats.frame_loss] == [
            False,
            True,
            True,
            True,
        ]

    def test_parity_recovers_a_single_lost_segment_exactly(self):
        # Drop only segment 1 of frame 0: the parity chunk rebuilds it, so
        # the frame is *complete* — all 50 samples, no mask, clean report.
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = [c for c in _decode_all(slices) if c.sequence != 2]
            return await _feed_session(chunks)

        session, result = run(scenario())
        report = session.stats.frame_loss[0]
        assert report == FrameLossReport(
            frame_index=0,
            n_expected_chunks=5,
            n_received_chunks=4,
            n_recovered_chunks=1,
            n_samples_expected=50,
            n_samples_received=50,
        )
        assert report.clean
        assert session.stats.n_recovered_chunks == 1
        landed = result.frames[0]
        assert landed.sample_mask is None
        assert landed.reconstruction is not None

    def test_parity_recovery_is_byte_exact(self):
        # The recovered frame must carry the same samples as a lossless run.
        async def scenario():
            slices, _ = await _record_video_chunks()
            all_chunks = _decode_all(slices)
            _, clean = await _feed_session(all_chunks)
            _, repaired = await _feed_session(
                [c for c in all_chunks if c.sequence != 2]
            )
            return clean, repaired

        clean, repaired = run(scenario())
        for lossless, recovered in zip(clean.frames, repaired.frames):
            assert np.array_equal(
                lossless.capture.samples, recovered.capture.samples
            )
            assert np.array_equal(
                lossless.capture.seed_state, recovered.capture.seed_state
            )

    def test_fully_lost_frame_is_written_off_with_a_zero_report(self):
        # Keyframe-only stream (gop_size=1): drop every chunk of frame 1 —
        # its five payload chunks (sequences 7-11) and its barrier (12).
        # The frame settles as lost when frame 2's chunks sweep past it: an
        # all-zero report against the 5-chunk expectation learned from
        # frame 0's barrier; the sample count is unknowable (nothing of the
        # frame ever arrived) and must read 0, never a fabricated guess.
        async def scenario():
            slices, _ = await _record_video_chunks(gop_size=1)
            dropped = set(range(7, 13))
            chunks = [c for c in _decode_all(slices) if c.sequence not in dropped]
            return await _feed_session(chunks)

        session, result = run(scenario())
        assert session.stats.n_dropped_frames == 1
        report = session.stats.frame_loss[1]
        assert report == FrameLossReport(
            frame_index=1,
            n_expected_chunks=5,
            n_received_chunks=0,
            n_recovered_chunks=0,
            n_samples_expected=0,
            n_samples_received=0,
        )
        assert not report.clean
        # Frames 0, 2, 3 still landed (every frame carries its own seed);
        # the lost frame is absent from the result, present in accounting.
        assert [f.frame_index for f in result.frames] == [0, 2, 3]

    def test_losing_a_gop_frame_writes_off_the_chain_until_rekeyed(self):
        # Same drop inside a 4-frame GOP: frame 1's loss breaks the seed
        # chain, so seedless frames 2 and 3 *arrive intact* but can no
        # longer be decoded against the right Φ — they must be written off
        # (received chunks, zero usable samples), never silently solved
        # against a stale chain.
        async def scenario():
            slices, _ = await _record_video_chunks(gop_size=4)
            dropped = set(range(7, 13))
            chunks = [c for c in _decode_all(slices) if c.sequence not in dropped]
            return await _feed_session(chunks)

        session, result = run(scenario())
        assert session.stats.n_dropped_frames == 3
        assert [f.frame_index for f in result.frames] == [0]
        for index in (2, 3):
            report = session.stats.frame_loss[index]
            assert report.n_received_chunks == 5
            assert report.n_samples_received == 0
            assert not report.clean

    def test_duplicates_and_reorders_change_nothing(self):
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            _, clean = await _feed_session(chunks)
            # Duplicate chunk 3, swap chunks 7 and 8.
            mangled = list(chunks)
            mangled.insert(4, chunks[3])
            mangled[8], mangled[9] = mangled[9], mangled[8]
            session, result = await _feed_session(mangled)
            return clean, session, result

        clean, session, result = run(scenario())
        assert session.stats.n_duplicate_chunks == 1
        assert session.stats.n_reordered_chunks == 1
        assert session.stats.n_lost_chunks == 0
        assert session.missing_sequences == ()
        assert result.n_frames == 4
        for lossless, mangled in zip(clean.frames, result.frames):
            assert np.array_equal(
                lossless.capture.samples, mangled.capture.samples
            )

    def test_eof_salvages_frames_already_in_flight(self):
        # Kill the transport before STREAM_END: a resilient session seals
        # and settles what it has instead of raising.
        async def scenario():
            slices, _ = await _record_video_chunks()
            chunks = _decode_all(slices)
            assert chunks[-1].sequence == len(chunks) - 1
            session = StreamSession(
                1, InlineScheduler(), resilient=True, max_iterations=5
            )
            for chunk in chunks[:-1]:  # everything but the stream end
                await session.handle_chunk(chunk)
            await session.handle_eof()
            return session, await session.finish()

        session, result = run(scenario())
        assert result.announced_frames is None
        assert result.n_frames == 4


class TestLossyVideoEndToEnd:
    """The full wire path: node → LossyTransport → resilient hub."""

    @pytest.fixture(scope="class")
    def lossy_run(self):
        async def scenario():
            transport = LoopbackTransport(max_buffered=64)
            lossy = LossyTransport(transport, seed=5, drop_rate=0.1)
            hub = ReceiverHub(resilient=True, max_iterations=8)
            node = CameraNode(
                lossy, gop_size=4, segments_per_frame=4, parity=True
            )
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes(8))
            )
            try:
                results = await hub.attach(transport, expected_streams=1)
            finally:
                await hub.close()
            stats = await send_task
            return lossy, hub, results[0], stats

        return run(scenario())

    def test_every_frame_lands_and_reconstructs(self, lossy_run):
        lossy, _, result, _ = lossy_run
        assert lossy.dropped  # the channel really was lossy
        assert result.announced_frames == 8
        assert result.n_frames == 8
        assert [f.frame_index for f in result.frames] == list(range(8))
        for frame in result.frames:
            assert frame.reconstruction is not None
            assert np.isfinite(frame.reconstruction.image).all()

    def test_hub_stats_account_for_every_injected_drop(self, lossy_run):
        lossy, hub, _, _ = lossy_run
        stats = hub.stats()
        assert stats.n_lost_chunks == len(lossy.dropped)
        assert stats.n_recovered_chunks + stats.n_partial_frames > 0
        assert stats.n_corrupt_chunks == 0
        assert stats.n_dropped_frames == 0

    def test_per_frame_reports_are_internally_exact(self, lossy_run):
        lossy, hub, result, stats = lossy_run
        reports = hub.session_stats[1].frame_loss
        assert [r.frame_index for r in reports] == list(range(8))
        for frame, report in zip(result.frames, reports):
            assert report.n_samples_expected == 50
            if frame.sample_mask is not None:
                assert int(frame.sample_mask.sum()) == report.n_samples_received
            else:
                assert report.n_samples_received == 50
        # Chunk conservation over the frame payloads: each frame occupies
        # sequences 6f+1..6f+5 (4 segments + parity) followed by its
        # barrier at 6f+6; every payload chunk is either received or on the
        # injector's drop list.
        payload_drops = [
            s for s in lossy.dropped if 1 <= s <= 48 and (s - 1) % 6 < 5
        ]
        received = sum(r.n_received_chunks for r in reports)
        assert received + len(payload_drops) == 8 * 5

    def test_truncation_is_survived_and_counted(self):
        async def scenario():
            transport = LoopbackTransport(max_buffered=64)
            lossy = LossyTransport(transport, seed=21, truncate_rate=0.15)
            hub = ReceiverHub(resilient=True, reconstruct=False)
            node = CameraNode(
                lossy, gop_size=4, segments_per_frame=4, parity=True
            )
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes(6))
            )
            try:
                results = await hub.attach(transport, expected_streams=1)
            finally:
                await hub.close()
            await send_task
            return lossy, hub, results[0]

        lossy, hub, result = run(scenario())
        assert lossy.truncated
        stats = hub.stats()
        # A truncated slice corrupts at least its own chunk; whatever the
        # resync decoder could not salvage is accounted, never raised.
        assert stats.n_corrupt_chunks + stats.n_lost_chunks > 0
        assert result.announced_frames == 6


class TestAcceptance64x64:
    """ISSUE 8 acceptance: 64×64 streamed video, 10% chunk loss, no raise."""

    FRAMES = 4

    def test_full_video_reconstructs_under_ten_percent_loss(self):
        config = SensorConfig(rows=64, cols=64)
        sequencer = VideoSequencer(
            CompressiveImager(config, seed=18), samples_per_frame=300, seed=18
        )

        async def scenario():
            transport = LoopbackTransport(max_buffered=64)
            lossy = LossyTransport(transport, seed=8, drop_rate=0.1)
            hub = ReceiverHub(resilient=True, max_iterations=5)
            node = CameraNode(
                lossy, gop_size=2, segments_per_frame=4, parity=True
            )
            send_task = asyncio.create_task(
                node.stream_video(sequencer, _scenes(self.FRAMES, (64, 64)))
            )
            try:
                results = await hub.attach(transport, expected_streams=1)
            finally:
                await hub.close()
            await send_task
            return lossy, hub, results[0]

        lossy, hub, result = run(scenario())
        assert lossy.dropped
        # Every frame of the video landed, in order, and reconstructed.
        assert result.n_frames == self.FRAMES
        assert [f.frame_index for f in result.frames] == list(range(self.FRAMES))
        for frame in result.frames:
            assert frame.reconstruction is not None
            assert frame.reconstruction.image.shape == (64, 64)
            assert np.isfinite(frame.reconstruction.image).all()
        # And the loss metadata is exact against the injected pattern.
        stats = hub.session_stats[1]
        assert stats.n_lost_chunks == len(lossy.dropped)
        for frame, report in zip(result.frames, stats.frame_loss):
            assert report.n_samples_expected == 300
            if frame.sample_mask is not None:
                assert int(frame.sample_mask.sum()) == report.n_samples_received


class TestClosedLoopRateControl:
    """The AIMD feedback loop, from unit maths to the full duplex wire."""

    def test_aimd_backs_off_multiplicatively_and_probes_back_additively(self):
        governor = BitrateGovernor(
            closed_loop=True, aimd_increase=4, aimd_decrease=0.5, min_samples=8
        )
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 40

        def ack(received, expected=40):
            return FrameLossReport(0, 1, 1, 0, expected, received).to_ack()

        governor.on_feedback(ack(30))  # loss → halve
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 20
        governor.on_feedback(ack(40))  # clean → +4
        governor.on_feedback(ack(40))
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 28
        for _ in range(10):  # additive increase saturates at the ceiling
            governor.on_feedback(ack(40))
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 40
        for _ in range(10):  # repeated loss floors at min_samples
            governor.on_feedback(ack(0))
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 8
        assert governor.n_loss_events == 11

    def test_rate_advice_only_ever_lowers_the_target(self):
        from repro.stream.protocol import RateAdvice

        governor = BitrateGovernor(closed_loop=True, min_samples=8)
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 40
        governor.on_rate_advice(
            RateAdvice(frame_index=0, advised_samples=12, loss_fraction=0.7)
        )
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 12
        governor.on_rate_advice(  # higher advice is ignored
            RateAdvice(frame_index=1, advised_samples=400, loss_fraction=0.0)
        )
        assert governor.samples_for_frame(CONFIG, max_samples=40) == 12

    def test_unknown_expectation_acks_count_as_loss(self):
        governor = BitrateGovernor(
            closed_loop=True, aimd_decrease=0.5, min_samples=8
        )
        governor.samples_for_frame(CONFIG, max_samples=40)
        # A fully-lost frame the receiver could not even size must pull the
        # rate down, not read as "clean" vacuously.
        report = FrameLossReport(0, 5, 0, 0, 0, 0)
        assert not report.clean
        assert not report.to_ack().clean

    def test_closed_loop_backs_off_under_real_loss(self):
        async def scenario():
            # A tight forward buffer makes the node stall on the receiver,
            # so delivery reports interleave with capture and the AIMD
            # back-off lands *during* the stream, not after it.
            node_end, receiver_end = loopback_duplex_pair(max_buffered=4)
            lossy = LossyTransport(node_end, seed=5, drop_rate=0.2)
            governor = BitrateGovernor(
                closed_loop=True,
                aimd_increase=4,
                aimd_decrease=0.5,
                min_samples=8,
            )
            node = CameraNode(
                lossy,
                governor=governor,
                gop_size=2,
                segments_per_frame=2,
                feedback=True,
            )
            receiver = StreamReceiver(
                reconstruct=False, resilient=True, feedback=True
            )
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes(12))
            )
            result = await receiver.run(receiver_end)
            stats = await send_task
            return lossy, governor, node, result, stats

        lossy, governor, node, result, stats = run(scenario())
        assert lossy.dropped
        assert node.n_feedback_errors == 0
        assert governor.n_feedback > 0
        assert governor.n_loss_events > 0
        # The node really did slow down: some GOP streamed below the open-
        # loop rate, and never below the configured floor.
        assert min(stats.samples_per_frame) < 50
        assert min(stats.samples_per_frame) >= 8
        assert result.n_frames == 12

    def test_zero_loss_closed_loop_is_byte_identical_to_open_loop(self):
        kwargs = dict(max_iterations=8)

        async def closed():
            node_end, receiver_end = loopback_duplex_pair(max_buffered=64)
            governor = BitrateGovernor(closed_loop=True, min_samples=8)
            node = CameraNode(node_end, governor=governor, gop_size=4, feedback=True)
            receiver = StreamReceiver(resilient=True, feedback=True, **kwargs)
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes(8))
            )
            result = await receiver.run(receiver_end)
            stats = await send_task
            return governor, result, stats

        async def open_loop():
            transport = LoopbackTransport(max_buffered=64)
            node = CameraNode(transport, gop_size=4)
            receiver = StreamReceiver(**kwargs)
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes(8))
            )
            result = await receiver.run(transport)
            stats = await send_task
            return result, stats

        governor, closed_result, closed_stats = run(closed())
        open_result, open_stats = run(open_loop())
        # The loop saw feedback yet never deviated from the open-loop rate.
        assert governor.n_feedback > 0
        assert governor.n_loss_events == 0
        assert closed_stats.samples_per_frame == open_stats.samples_per_frame
        assert closed_result.n_frames == open_result.n_frames
        for closed_frame, open_frame in zip(
            closed_result.frames, open_result.frames
        ):
            assert np.array_equal(
                closed_frame.capture.samples, open_frame.capture.samples
            )
            assert np.array_equal(
                closed_frame.capture.seed_state, open_frame.capture.seed_state
            )
            assert (
                closed_frame.reconstruction.image.tobytes()
                == open_frame.reconstruction.image.tobytes()
            )
