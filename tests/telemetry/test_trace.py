"""Frame tracer: merge semantics, eviction, ranking, facade behaviour."""

import threading

import pytest

from repro.telemetry import (
    SPAN_CAPTURE,
    SPAN_DECODE,
    SPAN_ENCODE,
    SPAN_QUEUE_WAIT,
    SPAN_SOLVE,
    SPAN_TRANSPORT,
    STAGE_SECONDS,
    STAGES,
    FrameTracer,
    ManualClock,
    Telemetry,
    active,
)


class TestFrameTracer:
    def test_begin_end_records_an_exact_duration(self):
        clock = ManualClock()
        tracer = FrameTracer(clock=clock)
        tracer.begin(1, 0, SPAN_DECODE)
        clock.advance(0.125)
        assert tracer.end(1, 0, SPAN_DECODE) == 0.125
        trace = tracer.get(1, 0)
        assert trace.duration(SPAN_DECODE) == 0.125
        assert trace.as_dict() == {SPAN_DECODE: 0.125}

    def test_repeated_spans_merge_to_the_envelope(self):
        # Tiled frames report the same stage once per tile; the span must be
        # min(start)..max(end) of all reports.
        clock = ManualClock()
        tracer = FrameTracer(clock=clock)
        tracer.begin(1, 0, SPAN_SOLVE)       # t=0
        clock.advance(1.0)
        tracer.begin(1, 0, SPAN_SOLVE)       # t=1, later begin: keeps t=0
        clock.advance(1.0)
        tracer.end(1, 0, SPAN_SOLVE)         # t=2
        clock.advance(1.0)
        tracer.end(1, 0, SPAN_SOLVE)         # t=3, later end wins
        assert tracer.get(1, 0).duration(SPAN_SOLVE) == 3.0

    def test_end_without_begin_is_a_noop(self):
        # The TCP half of a cross-process transport span.
        tracer = FrameTracer(clock=ManualClock())
        assert tracer.end(1, 0, SPAN_TRANSPORT) is None
        assert tracer.end(7, 3, "never_seen") is None
        tracer.begin(1, 0, SPAN_DECODE)
        assert tracer.end(1, 0, SPAN_TRANSPORT) is None

    def test_add_span_validates_and_merges(self):
        tracer = FrameTracer(clock=ManualClock())
        assert tracer.add_span(1, 0, SPAN_CAPTURE, 1.0, 3.0) == 2.0
        assert tracer.add_span(1, 0, SPAN_CAPTURE, 0.5, 2.0) == 2.5
        with pytest.raises(ValueError, match="ends before it starts"):
            tracer.add_span(1, 0, SPAN_CAPTURE, 5.0, 4.0)

    def test_total_is_the_cross_stage_envelope(self):
        tracer = FrameTracer(clock=ManualClock())
        tracer.add_span(1, 0, SPAN_CAPTURE, 0.0, 1.0)
        tracer.add_span(1, 0, SPAN_SOLVE, 4.0, 6.0)
        assert tracer.get(1, 0).total == 6.0

    def test_as_dict_follows_wire_order(self):
        tracer = FrameTracer(clock=ManualClock())
        for offset, stage in enumerate(reversed(STAGES)):
            tracer.add_span(1, 0, stage, float(offset), float(offset) + 0.5)
        assert tuple(tracer.get(1, 0).as_dict()) == STAGES

    def test_describe_is_one_readable_line(self):
        tracer = FrameTracer(clock=ManualClock())
        tracer.add_span(4, 37, SPAN_CAPTURE, 0.0, 0.0012)
        line = tracer.get(4, 37).describe()
        assert line.startswith("stream 4 frame 37:")
        assert "capture=1.200ms" in line

    def test_eviction_is_fifo_and_counted(self):
        tracer = FrameTracer(clock=ManualClock(), max_frames=2)
        for index in range(5):
            tracer.begin(1, index, SPAN_DECODE)
        assert len(tracer) == 2
        assert tracer.n_evicted == 3
        assert [t.frame_index for t in tracer.traces()] == [3, 4]
        assert tracer.get(1, 0) is None

    def test_max_frames_must_be_positive(self):
        with pytest.raises(ValueError, match="max_frames"):
            FrameTracer(max_frames=0)

    def test_slowest_ranks_by_total_or_stage(self):
        tracer = FrameTracer(clock=ManualClock())
        tracer.add_span(1, 0, SPAN_SOLVE, 0.0, 3.0)
        tracer.add_span(1, 1, SPAN_SOLVE, 0.0, 1.0)
        tracer.add_span(1, 2, SPAN_DECODE, 0.0, 9.0)
        by_total = tracer.slowest(2)
        assert [t.frame_index for t in by_total] == [2, 0]
        by_solve = tracer.slowest(5, stage=SPAN_SOLVE)
        # Frame 2 has no solve span, so it cannot appear in a solve ranking.
        assert [t.frame_index for t in by_solve] == [0, 1]
        with pytest.raises(ValueError, match=">= 0"):
            tracer.slowest(-1)

    def test_threaded_span_closes_are_safe(self):
        # Solve spans close on executor threads; hammer one tracer from many.
        tracer = FrameTracer(clock=ManualClock(), max_frames=4096)
        n_threads, per_thread = 8, 200

        def work(thread_index):
            for index in range(per_thread):
                frame = thread_index * per_thread + index
                tracer.begin(1, frame, SPAN_SOLVE)
                tracer.end(1, frame, SPAN_SOLVE)

        threads = [
            threading.Thread(target=work, args=(index,)) for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer) == n_threads * per_thread


class TestTelemetryFacade:
    def test_spans_feed_the_stage_histogram(self):
        clock = ManualClock()
        telemetry = Telemetry(clock=clock)
        telemetry.begin_span(1, 0, SPAN_ENCODE)
        clock.advance(0.004)
        telemetry.end_span(1, 0, SPAN_ENCODE)
        sample = telemetry.metrics().get(STAGE_SECONDS, {"stage": SPAN_ENCODE})
        assert sample is not None and sample.count == 1
        assert sample.sum == pytest.approx(0.004)

    def test_unmatched_end_observes_nothing(self):
        telemetry = Telemetry(clock=ManualClock())
        telemetry.end_span(1, 0, SPAN_TRANSPORT)
        assert telemetry.metrics().get(STAGE_SECONDS, {"stage": SPAN_TRANSPORT}) is None

    def test_disabled_facade_records_nothing(self):
        clock = ManualClock()
        telemetry = Telemetry(enabled=False, clock=clock)
        telemetry.begin_span(1, 0, SPAN_QUEUE_WAIT)
        clock.advance(1.0)
        telemetry.end_span(1, 0, SPAN_QUEUE_WAIT)
        telemetry.add_span(1, 0, SPAN_CAPTURE, 0.0, 1.0)
        assert len(telemetry.tracer) == 0
        assert telemetry.metrics().samples == ()
        assert telemetry.solver_profile() is None

    def test_enabled_facade_hands_out_profiles(self):
        profile = Telemetry(clock=ManualClock()).solver_profile()
        assert profile is not None
        profile.record_iteration(1.0, 0.5)
        assert profile.n_iterations == 1

    def test_active_collapses_the_two_level_guard(self):
        enabled = Telemetry(clock=ManualClock())
        assert active(enabled) is enabled
        assert active(Telemetry(enabled=False)) is None
        assert active(None) is None
