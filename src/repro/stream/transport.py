"""Byte transports for the streaming pipeline: loopback and TCP.

A transport is anything with three coroutines::

    await transport.send(data)   # may *block* — that is the backpressure
    data = await transport.recv()  # next byte slice, or None at end-of-stream
    await transport.close()      # sender side: flush and signal EOF

Transports carry opaque byte slices; chunk boundaries are the protocol
layer's job (:class:`repro.stream.protocol.ChunkDecoder` reassembles them),
so a TCP segment split mid-header is handled identically to a loopback queue
item.

Backpressure is the design point: :class:`LoopbackTransport` is a *bounded*
in-memory pipe whose ``send`` suspends the producer once ``max_buffered``
slices are in flight — a slow receiver therefore stalls the camera node's
capture loop instead of growing an unbounded queue, and the recorded
``high_watermark`` lets tests assert the bound was honoured.
:class:`TcpTransport` gets the same property from the kernel socket buffers
via ``StreamWriter.drain``.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable
from typing import Protocol

from repro.utils.validation import check_positive


class Transport(Protocol):
    """Structural type of a streaming byte channel (see module docstring)."""

    async def send(self, data: bytes) -> None:
        """Ship one byte slice; may suspend — that is the backpressure."""

    async def recv(self) -> bytes | None:
        """Next byte slice, or ``None`` at end-of-stream."""

    async def close(self) -> None:
        """Sender side: flush and signal end-of-stream."""


class TransportClosedError(ConnectionError):
    """``send`` was called on a transport whose channel is already closed."""


class LoopbackTransport:
    """A bounded in-memory byte pipe between a node and a receiver.

    Parameters
    ----------
    max_buffered:
        Maximum byte slices in flight.  ``send`` suspends (backpressure)
        while the pipe is full; the peak occupancy ever reached is recorded
        as :attr:`high_watermark`.
    """

    def __init__(self, max_buffered: int = 8) -> None:
        check_positive("max_buffered", max_buffered)
        self.max_buffered = int(max_buffered)
        self._queue: asyncio.Queue[bytes | None] = asyncio.Queue(
            maxsize=self.max_buffered
        )
        self._closed = False
        self._eof_sent = False
        self._eof_received = False
        self.high_watermark = 0
        self.bytes_sent = 0
        self.send_count = 0
        self.stall_count = 0

    async def send(self, data: bytes) -> None:
        """Enqueue one byte slice, waiting while the pipe is full."""
        if self._closed:
            raise TransportClosedError("loopback transport is closed")
        if self._queue.full():
            self.stall_count += 1
        await self._queue.put(bytes(data))
        self.high_watermark = max(self.high_watermark, self._queue.qsize())
        self.bytes_sent += len(data)
        self.send_count += 1

    async def recv(self) -> bytes | None:
        """Dequeue the next byte slice; ``None`` signals end-of-stream."""
        if self._eof_received:
            return None
        item = await self._queue.get()
        if item is None:
            self._eof_received = True
        return item

    async def close(self) -> None:
        """Signal end-of-stream to the receiver (idempotent)."""
        if not self._eof_sent:
            self._eof_sent = True
            self._closed = True
            await self._queue.put(None)


class DuplexTransport:
    """Two independent one-way pipes presented as one bidirectional channel.

    ``send``/``close`` drive the *forward* pipe, ``recv`` drains the
    *backward* one.  A :class:`LoopbackTransport` on its own cannot carry
    receiver→node feedback — its single queue would deliver control chunks
    straight back to whoever sent into it — so the loopback feedback path is
    a *pair* of these wrappers over two queues, one per direction (see
    :func:`loopback_duplex_pair`).  TCP needs no wrapper: a socket is
    naturally duplex.
    """

    def __init__(self, forward: Transport, backward: Transport) -> None:
        self.forward = forward
        self.backward = backward

    async def send(self, data: bytes) -> None:
        """Ship one byte slice down the forward pipe."""
        await self.forward.send(data)

    async def recv(self) -> bytes | None:
        """Next byte slice from the backward pipe (the peer's sends)."""
        return await self.backward.recv()

    async def close(self) -> None:
        """Close the forward pipe (the direction this side writes)."""
        await self.forward.close()


def loopback_duplex_pair(
    max_buffered: int = 8,
) -> tuple[DuplexTransport, DuplexTransport]:
    """Two connected in-memory duplex endpoints: ``(node_end, receiver_end)``.

    What one end sends, the other receives, in both directions — the
    loopback twin of a TCP socket pair, and the channel shape the
    closed-loop feedback path needs.  Each direction is its own bounded
    :class:`LoopbackTransport`, so forward data and backward control traffic
    backpressure independently.
    """
    forward = LoopbackTransport(max_buffered=max_buffered)
    backward = LoopbackTransport(max_buffered=max_buffered)
    return (
        DuplexTransport(forward, backward),
        DuplexTransport(backward, forward),
    )


class TcpTransport:
    """A transport over an established ``asyncio`` TCP stream pair.

    ``send`` writes and awaits ``drain()``, so the OS socket buffers provide
    the same producer-stalling backpressure the loopback queue models
    explicitly; ``recv`` returns whatever segment the kernel delivers.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.bytes_sent = 0

    async def send(self, data: bytes) -> None:
        """Write one byte slice and wait for the socket to accept it."""
        if self._writer.is_closing():
            raise TransportClosedError("TCP transport is closed")
        self._writer.write(data)
        await self._writer.drain()
        self.bytes_sent += len(data)

    async def recv(self, max_bytes: int = 65536) -> bytes | None:
        """Read the next TCP segment; ``None`` at end-of-stream."""
        data = await self._reader.read(max_bytes)
        return data if data else None

    async def close(self) -> None:
        """Close the write side, flushing pending data."""
        if not self._writer.is_closing():
            self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - platform races
            pass


async def connect_tcp(host: str, port: int) -> TcpTransport:
    """Open a client connection and wrap it as a :class:`TcpTransport`."""
    reader, writer = await asyncio.open_connection(host, port)
    return TcpTransport(reader, writer)


async def serve_tcp(
    handler: Callable[[TcpTransport], Awaitable[None]],
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[asyncio.AbstractServer, int]:
    """Start a TCP server that hands each connection to ``handler``.

    Returns the server object and the bound port (useful with ``port=0``,
    which lets the OS pick a free one — how the tests avoid collisions).
    """

    async def on_connect(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await handler(TcpTransport(reader, writer))

    server = await asyncio.start_server(on_connect, host=host, port=port)
    bound_port = int(server.sockets[0].getsockname()[1])
    return server, bound_port
