"""Image manipulation helpers shared by the optics, CS and reconstruction packages."""

from __future__ import annotations


import numpy as np


def normalize_image(image: np.ndarray, *, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Affinely rescale ``image`` so its minimum maps to ``low`` and maximum to ``high``.

    A constant image maps to ``low`` everywhere.
    """
    image = np.asarray(image, dtype=float)
    if high <= low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    span = image.max() - image.min()
    if span == 0:
        return np.full_like(image, low)
    return (image - image.min()) / span * (high - low) + low


def image_to_vector(image: np.ndarray) -> np.ndarray:
    """Flatten a 2-D image into a 1-D vector in row-major (raster) order."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got {image.ndim} dimensions")
    return image.reshape(-1)


def vector_to_image(vector: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`image_to_vector`."""
    vector = np.asarray(vector)
    rows, cols = shape
    if vector.size != rows * cols:
        raise ValueError(
            f"vector of length {vector.size} cannot be reshaped to {shape}"
        )
    return vector.reshape(rows, cols)


def block_view(image: np.ndarray, block_size: int) -> np.ndarray:
    """Split ``image`` into non-overlapping ``block_size x block_size`` blocks.

    Returns an array of shape ``(n_blocks, block_size, block_size)`` where the
    blocks are ordered in raster order.  The image dimensions must be exact
    multiples of ``block_size``.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got {image.ndim} dimensions")
    rows, cols = image.shape
    if rows % block_size or cols % block_size:
        raise ValueError(
            f"image shape {image.shape} is not divisible by block_size {block_size}"
        )
    reshaped = image.reshape(rows // block_size, block_size, cols // block_size, block_size)
    return reshaped.transpose(0, 2, 1, 3).reshape(-1, block_size, block_size)


def unblock_view(blocks: np.ndarray, image_shape: tuple[int, int]) -> np.ndarray:
    """Reassemble blocks produced by :func:`block_view` into a full image."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError("blocks must have shape (n_blocks, b, b)")
    block_size = blocks.shape[1]
    rows, cols = image_shape
    if rows % block_size or cols % block_size:
        raise ValueError(
            f"image shape {image_shape} is not divisible by block size {block_size}"
        )
    n_expected = (rows // block_size) * (cols // block_size)
    if blocks.shape[0] != n_expected:
        raise ValueError(
            f"expected {n_expected} blocks for shape {image_shape}, got {blocks.shape[0]}"
        )
    grid = blocks.reshape(rows // block_size, cols // block_size, block_size, block_size)
    return grid.transpose(0, 2, 1, 3).reshape(rows, cols)


def crop_center(image: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Crop the central ``shape`` region out of ``image``."""
    image = np.asarray(image)
    rows, cols = shape
    if rows > image.shape[0] or cols > image.shape[1]:
        raise ValueError(f"cannot crop {shape} from image of shape {image.shape}")
    top = (image.shape[0] - rows) // 2
    left = (image.shape[1] - cols) // 2
    return image[top:top + rows, left:left + cols]


def resize_nearest(image: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour resize (sufficient for synthetic test scenes)."""
    image = np.asarray(image, dtype=float)
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ValueError(f"target shape must be positive, got {shape}")
    row_idx = np.floor(np.linspace(0, image.shape[0], rows, endpoint=False)).astype(int)
    col_idx = np.floor(np.linspace(0, image.shape[1], cols, endpoint=False)).astype(int)
    return image[np.ix_(row_idx, col_idx)]
