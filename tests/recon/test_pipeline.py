"""Tests for the end-to-end reconstruction pipeline."""

import numpy as np
import pytest

from repro.cs.matrices import bernoulli_matrix, gaussian_matrix
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame, reconstruct_samples
from repro.utils.images import image_to_vector


class TestReconstructSamples:
    def test_recovers_smooth_image_from_bernoulli_measurements(self):
        scene = make_scene("blobs", (32, 32), seed=1) * 255
        phi = bernoulli_matrix(400, 1024, seed=2)
        samples = phi @ image_to_vector(scene)
        result = reconstruct_samples(
            phi, samples, (32, 32), solver="fista", max_iterations=150, reference=scene,
        )
        assert result.metrics["psnr_db"] > 22.0

    def test_gaussian_matrix_without_centering(self):
        scene = make_scene("blobs", (16, 16), seed=3) * 255
        phi = gaussian_matrix(140, 256, seed=4)
        samples = phi @ image_to_vector(scene)
        result = reconstruct_samples(
            phi, samples, (16, 16), solver="fista", max_iterations=200, reference=scene,
        )
        assert result.metrics["psnr_db"] > 20.0

    def test_metrics_absent_without_reference(self):
        phi = bernoulli_matrix(50, 256, seed=5)
        samples = phi @ np.ones(256)
        result = reconstruct_samples(phi, samples, (16, 16), max_iterations=20)
        assert result.metrics == {}

    def test_unknown_solver_rejected(self):
        phi = bernoulli_matrix(10, 64, seed=6)
        with pytest.raises(ValueError):
            reconstruct_samples(phi, np.zeros(10), (8, 8), solver="magic")


class TestReconstructFrame:
    @pytest.fixture
    def captured_frame(self, medium_imager):
        scene = make_scene("blobs", (32, 32), seed=7)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        return medium_imager.capture(conversion.convert(scene), n_samples=400)

    def test_reconstruction_quality_reasonable(self, captured_frame):
        result = reconstruct_frame(captured_frame, max_iterations=150)
        assert result.metrics["psnr_db"] > 22.0

    def test_reconstruction_improves_with_more_samples(self, medium_imager):
        scene = make_scene("blobs", (32, 32), seed=8)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        current = conversion.convert(scene)
        few = medium_imager.capture(current, n_samples=100)
        many = medium_imager.capture(current, n_samples=500)
        psnr_few = reconstruct_frame(few, max_iterations=120).metrics["psnr_db"]
        psnr_many = reconstruct_frame(many, max_iterations=120).metrics["psnr_db"]
        assert psnr_many > psnr_few

    def test_solver_choices_produce_images(self, captured_frame):
        for solver in ("fista", "ista", "iht"):
            result = reconstruct_frame(captured_frame, solver=solver, max_iterations=40)
            assert result.image.shape == (32, 32)

    def test_haar_dictionary_supported(self, captured_frame):
        result = reconstruct_frame(captured_frame, dictionary="haar", max_iterations=80)
        assert result.metrics["psnr_db"] > 15.0

    def test_explicit_reference_overrides_digital_image(self, captured_frame):
        reference = np.zeros((32, 32))
        result = reconstruct_frame(captured_frame, reference=reference, max_iterations=20)
        assert result.metrics["psnr_db"] < 20.0  # against an all-zero reference quality is poor

    def test_reconstruction_without_stored_digital_image(self, medium_imager):
        scene = make_scene("gradient", (32, 32), seed=9)
        frame = medium_imager.capture_scene(scene, n_samples=200, keep_digital_image=False)
        result = reconstruct_frame(frame, max_iterations=60)
        assert result.metrics == {}
        assert result.image.shape == (32, 32)
