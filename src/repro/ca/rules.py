"""Elementary cellular-automaton rules in Wolfram coding.

A radius-1 elementary CA updates each cell from the triple (L, S, R): the
left neighbour, the cell itself and the right neighbour.  The 8 possible
neighbourhoods are numbered 7..0 by reading ``LSR`` as a binary number, and a
rule is the 8-bit word listing the next state for each neighbourhood — the
Wolfram code.  Table I of the paper is exactly the truth table of Rule 30.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

#: Neighbourhoods in the order used by Table I of the paper (LSR from 111 to 000).
NEIGHBORHOOD_ORDER: tuple[tuple[int, int, int], ...] = (
    (1, 1, 1),
    (1, 1, 0),
    (1, 0, 1),
    (1, 0, 0),
    (0, 1, 1),
    (0, 1, 0),
    (0, 0, 1),
    (0, 0, 0),
)


@dataclass(frozen=True)
class RuleTable:
    """Truth table of an elementary (radius-1, binary) CA rule.

    Parameters
    ----------
    number:
        Wolfram code of the rule, 0..255.
    """

    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.number <= 255:
            raise ValueError(f"rule number must be in [0, 255], got {self.number}")

    def next_state(self, left: int, center: int, right: int) -> int:
        """Next state of a cell with neighbourhood ``(left, center, right)``."""
        for value, name in ((left, "left"), (center, "center"), (right, "right")):
            if value not in (0, 1):
                raise ValueError(f"{name} must be 0 or 1, got {value}")
        index = (left << 2) | (center << 1) | right
        return (self.number >> index) & 1

    def as_table(self) -> list[tuple[int, int, int, int]]:
        """Return rows ``(L, S, R, NS)`` in the order used by Table I of the paper."""
        return [
            (left, center, right, self.next_state(left, center, right))
            for left, center, right in NEIGHBORHOOD_ORDER
        ]

    def as_dict(self) -> dict[tuple[int, int, int], int]:
        """Return the truth table as a ``{(L, S, R): NS}`` mapping."""
        return {
            (left, center, right): self.next_state(left, center, right)
            for left, center, right in NEIGHBORHOOD_ORDER
        }

    def output_column(self) -> np.ndarray:
        """The NS column of :meth:`as_table` as a numpy array."""
        return np.array([row[3] for row in self.as_table()], dtype=np.uint8)

    @cached_property
    def lookup_table(self) -> np.ndarray:
        """Next-state lookup indexed by the neighbourhood value ``(L<<2)|(S<<1)|R``.

        Cached because :meth:`apply` sits on the CA stepping hot path and the
        table never changes for a given rule.
        """
        table = np.array([(self.number >> i) & 1 for i in range(8)], dtype=np.uint8)
        table.setflags(write=False)
        return table

    def apply(self, left: np.ndarray, center: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Vectorised rule application on aligned neighbour arrays."""
        left = np.asarray(left, dtype=np.uint8)
        center = np.asarray(center, dtype=np.uint8)
        right = np.asarray(right, dtype=np.uint8)
        index = left * np.uint8(4) + center * np.uint8(2) + right
        return self.lookup_table[index]

    @property
    def is_legal(self) -> bool:
        """A rule is *legal* (in Wolfram's sense) if the null state maps to 0
        and the rule is left-right symmetric."""
        if self.next_state(0, 0, 0) != 0:
            return False
        for left, center, right in NEIGHBORHOOD_ORDER:
            if self.next_state(left, center, right) != self.next_state(right, center, left):
                return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rule {self.number}"


#: Rule 30 — the chaotic (class III) rule used by the paper's selection CA.
RULE_30 = RuleTable(30)

#: Rule 90 — linear (XOR of neighbours); additive, used as a weaker baseline.
RULE_90 = RuleTable(90)

#: Rule 110 — universal, class IV; included for the rule-comparison benchmark.
RULE_110 = RuleTable(110)

#: Rule 184 — traffic rule, class II/IV; a structured baseline with poor mixing.
RULE_184 = RuleTable(184)

#: Table I of the paper as printed (rows of L, S, R, NS).
PAPER_TABLE_I: tuple[tuple[int, int, int, int], ...] = (
    (1, 1, 1, 0),
    (1, 1, 0, 0),
    (1, 0, 1, 0),
    (1, 0, 0, 1),
    (0, 1, 1, 1),
    (0, 1, 0, 1),
    (0, 0, 1, 1),
    (0, 0, 0, 0),
)
