"""Tests for the LFSR generators and the LFSR-driven selection baseline."""

import numpy as np
import pytest

from repro.lfsr.lfsr import FibonacciLFSR, GaloisLFSR, LFSRSelectionGenerator


class TestFibonacciLFSR:
    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            FibonacciLFSR(8, state=0)

    def test_state_never_becomes_zero(self):
        lfsr = FibonacciLFSR(8, state=0xA5)
        for _ in range(600):
            lfsr.step()
            assert lfsr.state != 0

    def test_reproducible_from_seed(self):
        a = FibonacciLFSR(16, seed=3)
        b = FibonacciLFSR(16, state=a.state)
        assert np.array_equal(a.bits(100), b.bits(100))

    def test_reset_replays_sequence(self):
        lfsr = FibonacciLFSR(12, seed=5)
        first = lfsr.bits(50)
        lfsr.reset()
        assert np.array_equal(first, lfsr.bits(50))

    def test_output_bits_are_balanced_over_full_period(self):
        lfsr = FibonacciLFSR(10, state=1)
        bits = lfsr.bits(lfsr.period)
        # A maximal LFSR emits 2^(n-1) ones and 2^(n-1) - 1 zeros per period.
        assert int(bits.sum()) == 1 << 9

    def test_state_bits_msb_first(self):
        lfsr = FibonacciLFSR(8, state=0b10000001)
        assert lfsr.state_bits().tolist() == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_invalid_tap_rejected(self):
        with pytest.raises(ValueError):
            FibonacciLFSR(8, taps=(9, 1), state=1)


class TestGaloisLFSR:
    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            GaloisLFSR(8, state=0)

    def test_maximal_period_small_register(self):
        lfsr = GaloisLFSR(6, state=1)
        states = set()
        for _ in range(lfsr.period):
            states.add(lfsr.state)
            lfsr.step()
        assert len(states) == lfsr.period

    def test_reset_restores_state(self):
        lfsr = GaloisLFSR(16, seed=9)
        initial = lfsr.state
        lfsr.bits(37)
        lfsr.reset()
        assert lfsr.state == initial

    def test_bits_are_binary(self):
        bits = GaloisLFSR(16, seed=2).bits(256)
        assert set(np.unique(bits)).issubset({0, 1})


class TestLFSRSelectionGenerator:
    def test_pattern_shape(self):
        generator = LFSRSelectionGenerator(16, 12, seed=1)
        assert generator.next_pattern().shape == (16, 12)

    def test_reset_replays_patterns(self):
        generator = LFSRSelectionGenerator(8, 8, seed=2)
        first = [generator.next_pattern() for _ in range(4)]
        generator.reset()
        second = [generator.next_pattern() for _ in range(4)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_matrix_reconstructible_from_seed(self):
        generator = LFSRSelectionGenerator(8, 8, seed=3)
        matrix = generator.measurement_matrix(10)
        clone = LFSRSelectionGenerator(8, 8, state=generator.seed_value)
        assert np.array_equal(matrix, clone.measurement_matrix(10))

    def test_sample_index_advances(self):
        generator = LFSRSelectionGenerator(8, 8, seed=4)
        generator.next_pattern()
        generator.next_pattern()
        assert generator.sample_index == 2

    def test_average_density_near_half(self):
        generator = LFSRSelectionGenerator(32, 32, seed=5)
        densities = [generator.next_pattern().mean() for _ in range(50)]
        assert 0.35 < float(np.mean(densities)) < 0.65
