"""Quantile helpers, property-tested against ``numpy.percentile``."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import SUMMARY_QUANTILES, percentile, quantile_summary

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestPercentile:
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=64),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_linear_interpolation(self, values, q):
        expected = float(np.percentile(np.asarray(values), q))
        assert percentile(values, q) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], -0.5)

    def test_reexported_from_stream_hub(self):
        # Satellite compatibility pin: the historical import path still works
        # and resolves to the telemetry implementation.
        from repro.stream.hub import percentile as hub_percentile
        from repro.telemetry.stats import percentile as stats_percentile

        assert hub_percentile is stats_percentile


class TestQuantileSummary:
    def test_default_keys_follow_summary_quantiles(self):
        summary = quantile_summary([1.0, 2.0, 3.0, 4.0])
        assert tuple(summary) == tuple(f"p{int(q)}" for q in SUMMARY_QUANTILES)
        assert summary["p50"] == 2.5

    @given(values=st.lists(finite_floats, min_size=1, max_size=32))
    def test_every_entry_is_the_exact_percentile(self, values):
        summary = quantile_summary(values)
        for key, value in summary.items():
            assert value == percentile(values, float(key[1:]))
