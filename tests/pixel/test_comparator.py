"""Tests for the comparator offset / auto-zero / delay model."""

import numpy as np
import pytest

from repro.pixel.comparator import Comparator


class TestOffsetModel:
    def test_autozero_reduces_offset_sigma(self):
        raw = Comparator(offset_sigma=5e-3, autozero=False)
        zeroed = Comparator(offset_sigma=5e-3, autozero=True, autozero_residual=0.05)
        assert zeroed.effective_offset_sigma() == pytest.approx(0.05 * raw.effective_offset_sigma())

    def test_offset_map_deterministic_per_seed(self):
        a = Comparator(seed=4)
        b = Comparator(seed=4)
        assert np.array_equal(a.offset_map((8, 8)), b.offset_map((8, 8)))

    def test_offset_map_statistics(self):
        comparator = Comparator(offset_sigma=10e-3, autozero=False, seed=1)
        offsets = comparator.offset_map((64, 64))
        assert abs(offsets.mean()) < 1e-3
        assert 8e-3 < offsets.std() < 12e-3

    def test_zero_offset_supported(self):
        comparator = Comparator(offset_sigma=0.0)
        assert np.all(comparator.offset_map((4, 4)) == 0.0)

    def test_negative_offset_sigma_rejected(self):
        with pytest.raises(ValueError):
            Comparator(offset_sigma=-1e-3)


class TestDelayModel:
    def test_constant_delay_without_jitter(self):
        comparator = Comparator(delay=20e-9, delay_jitter_sigma=0.0)
        delays = comparator.crossing_delay((4, 4))
        assert np.allclose(delays, 20e-9)

    def test_jitter_spreads_delays(self):
        comparator = Comparator(delay=20e-9, delay_jitter_sigma=2e-9, seed=2)
        delays = comparator.crossing_delay((32, 32))
        assert delays.std() > 0

    def test_delays_never_negative(self):
        comparator = Comparator(delay=1e-9, delay_jitter_sigma=10e-9, seed=3)
        assert np.all(comparator.crossing_delay((64, 64)) >= 0.0)


class TestEffectiveThreshold:
    def test_threshold_centered_on_reference(self):
        comparator = Comparator(offset_sigma=5e-3, autozero=False, seed=5)
        thresholds = comparator.effective_threshold(1.0, (64, 64))
        assert abs(thresholds.mean() - 1.0) < 1e-3

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            Comparator().effective_threshold(0.0, (4, 4))
