"""REPRO006 — timing discipline: all clock reads flow through telemetry.

Frame traces, stage histograms and latency summaries are only comparable —
and only testable — because every timestamp in the library comes from one
injected :class:`~repro.telemetry.Clock` (``MonotonicClock`` in production,
``ManualClock`` in tests).  A direct ``time.time()`` / ``time.monotonic()``
/ ``time.perf_counter()`` read in library code bypasses that seam: the
number can never be pinned by a deterministic test, wall-clock reads mix
incompatible epochs with the monotonic spans, and the zero-cost-when-
disabled contract can't be audited.

Flagged in library code outside ``repro/telemetry/``:

* any clock read from the stdlib ``time`` module (``time``, ``monotonic``,
  ``perf_counter`` and their ``_ns``/``process``/``thread`` variants),
  whether called as ``time.monotonic()`` or imported directly;
* the asyncio event-loop clock — ``loop.time()`` or
  ``asyncio.get_running_loop().time()`` — which is the same unpinnable
  monotonic read wearing an event-loop hat.

``time.sleep`` is *not* a clock read and stays REPRO004's business.  Tests,
examples and benchmarks may read any clock they like;
``repro/telemetry/clock.py`` is the sanctioned funnel and is exempt (as is
the rest of the telemetry package, which only ever sees injected clocks).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro._lint.engine import Finding, ModuleContext
from repro._lint.rules.base import Rule, dotted_name

#: The sanctioned clock funnel: everything under the telemetry package.
ALLOWED_PREFIX = "repro/telemetry/"

#: stdlib ``time`` functions that read a clock.
_CLOCK_READS = frozenset(
    {
        "time", "time_ns",
        "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns",
        "process_time", "process_time_ns",
        "thread_time", "thread_time_ns",
    }
)

_HINT = (
    "take a repro.telemetry.Clock (MonotonicClock in production, "
    "ManualClock in tests) and call clock.now() so the timestamp is "
    "injectable and deterministic under test"
)


def _loop_getter(node: ast.AST) -> bool:
    """True for ``asyncio.get_running_loop()`` / ``asyncio.get_event_loop()``."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name in ("asyncio.get_running_loop", "asyncio.get_event_loop")


class TimingDisciplineRule(Rule):
    rule_id = "REPRO006"
    contract = "timing discipline: clock reads go through the telemetry Clock seam"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if not context.is_library:
            return
        if context.module_rel is not None and context.module_rel.startswith(
            ALLOWED_PREFIX
        ):
            return
        # Names bound by `from time import monotonic [as tick]`.
        from_time: dict[str, str] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_READS:
                        from_time[alias.asname or alias.name] = alias.name
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = dotted_name(func)
            if name is not None:
                parts = name.split(".")
                if len(parts) == 2 and parts[0] == "time" and parts[1] in _CLOCK_READS:
                    yield self.finding(
                        context,
                        node,
                        f"direct clock read time.{parts[1]}() in library code "
                        "(bypasses the injected telemetry Clock)",
                        hint=_HINT,
                    )
                    continue
                if len(parts) == 1 and parts[0] in from_time:
                    yield self.finding(
                        context,
                        node,
                        f"direct clock read {parts[0]}() (= time."
                        f"{from_time[parts[0]]}) in library code "
                        "(bypasses the injected telemetry Clock)",
                        hint=_HINT,
                    )
                    continue
                if len(parts) == 2 and parts[0] == "loop" and parts[1] == "time":
                    yield self.finding(
                        context,
                        node,
                        "event-loop clock read loop.time() in library code "
                        "(same unpinnable monotonic read as time.monotonic)",
                        hint=_HINT,
                    )
                    continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and _loop_getter(func.value)
            ):
                yield self.finding(
                    context,
                    node,
                    "event-loop clock read asyncio.get_*_loop().time() in "
                    "library code (bypasses the injected telemetry Clock)",
                    hint=_HINT,
                )


RULE = TimingDisciplineRule()
