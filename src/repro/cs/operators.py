"""The sensing operator A = Φ Ψ used by the reconstruction solvers.

Solvers work in the coefficient domain: they look for a sparse coefficient
vector ``z`` such that ``Φ Ψ z ≈ y``.  Two interchangeable implementations
expose the products the solvers need:

* :class:`SensingOperator` — the dense executable reference: Φ is an explicit
  ``(m, n)`` matrix (possibly centred) and every product is a matmul.
* :class:`~repro.cs.structured.StructuredSensingOperator` — the matrix-free
  fast path for CA-XOR matrices, which computes the same products from the
  rank-structured factor pair ``(R, C)`` without ever materialising Φ.

Both derive from :class:`BaseSensingOperator`, which fixes the contract:

* ``matvec(z)``  — ``Φ Ψ z``
* ``rmatvec(y)`` — ``Ψ* Φ* y``
* ``phi_dot(x)`` — ``Φ x`` on a raw pixel vector (no dictionary)
* ``column(j)`` / ``columns(S)`` — dense sub-matrices of A for greedy solvers
* ``operator_norm()`` — memoised largest-singular-value estimate

``operator_norm`` is computed by power iteration with a relative-tolerance
early exit and cached on the operator instance, so a solver stack that probes
the Lipschitz constant repeatedly pays for it once.  :class:`StepSizeCache`
extends that across operators: it memoises norms by an exact operator
identity key and keeps the converged singular vectors as warm starts for the
*next* operator of the same geometry (the streaming GOP chain).
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterable

import numpy as np

from repro.cs.dictionaries import Dictionary, IdentityDictionary


def _default_dictionary(n_pixels: int) -> Dictionary:
    side = int(round(np.sqrt(n_pixels)))
    if side * side == n_pixels:
        return IdentityDictionary((side, side))
    # Generic 1-D signal: treat it as an n x 1 'image'.
    return IdentityDictionary((n_pixels, 1))


class BaseSensingOperator:
    """Abstract linear operator ``A = Φ Ψ`` acting on coefficient vectors.

    Subclasses implement :meth:`matvec`, :meth:`rmatvec`, :meth:`phi_dot`
    and :meth:`phi_dot_columns`; everything else — shapes, greedy-solver
    column extraction, the memoised power-iteration norm, the image
    conveniences — is shared, so the dense reference and the matrix-free
    fast path cannot drift in behaviour.
    """

    #: Shared power-iteration defaults for the step-size estimate.  The
    #: default tolerance is tight enough that typical CA operators run the
    #: full iteration budget (matching the pre-existing fixed-count
    #: behaviour, which keeps the dense and structured flavours' step sizes
    #: in bit-level agreement); looser tolerances and warm starts are
    #: explicit opt-ins.
    NORM_ITERATIONS = 50
    NORM_TOLERANCE = 1e-6

    def __init__(self, n_samples: int, dictionary: Dictionary) -> None:
        self._n_samples = int(n_samples)
        self.dictionary = dictionary
        self._norm_cache: dict[tuple[int, int, float], float] = {}
        #: Optional cross-operator step-size cache (see :class:`StepSizeCache`).
        self.norm_cache: StepSizeCache | None = None
        self.norm_exact_key: Hashable | None = None
        self.norm_warm_key: Hashable | None = None

    # -------------------------------------------------------------- shapes
    @property
    def n_samples(self) -> int:
        """Number of measurements (rows of Φ)."""
        return self._n_samples

    @property
    def n_coefficients(self) -> int:
        """Dimension of the coefficient space (columns of A)."""
        return self.dictionary.n_pixels

    @property
    def shape(self) -> tuple[int, int]:
        """Operator shape ``(m, n)``."""
        return (self.n_samples, self.n_coefficients)

    # ------------------------------------------------------------ products
    def matvec(self, coefficients: np.ndarray) -> np.ndarray:
        """Apply ``A``: coefficients -> measurements."""
        image = self.dictionary.synthesize(np.asarray(coefficients, dtype=float))
        return self.phi_dot(image)

    def rmatvec(self, measurements: np.ndarray) -> np.ndarray:
        """Apply ``A*``: measurements -> coefficient-domain correlations."""
        measurements = self._check_measurements(measurements)
        return self.dictionary.analyze(self.phi_rdot(measurements))

    def phi_dot(self, pixels: np.ndarray) -> np.ndarray:
        """Apply Φ (as used by this operator, i.e. centred when centred) to a
        raw pixel-domain vector — no dictionary involved."""
        raise NotImplementedError

    def phi_rdot(self, measurements: np.ndarray) -> np.ndarray:
        """Apply Φ* to a measurement vector, returning a pixel-domain vector."""
        raise NotImplementedError

    def phi_dot_columns(self, atoms: np.ndarray) -> np.ndarray:
        """Apply Φ to a dense ``(n_pixels, k)`` stack of pixel columns."""
        raise NotImplementedError

    def column(self, index: int) -> np.ndarray:
        """The ``index``-th column of A (Φ applied to one dictionary atom)."""
        atom = self.dictionary.atom(int(index))
        return self.phi_dot(atom)

    def columns(self, indices: Iterable[int]) -> np.ndarray:
        """Dense sub-matrix of A restricted to the given coefficient indices.

        The atoms are batch-synthesised in one dictionary transform and
        pushed through Φ in one product — no per-column Python loop, which
        is what keeps OMP/CoSaMP support solves cheap.
        """
        indices = list(indices)
        if not indices:
            return np.empty((self.n_samples, 0))
        return self.phi_dot_columns(self.dictionary.atoms(indices))

    def dense(self) -> np.ndarray:
        """Explicit dense A.  Only sensible for small problems (tests, blocks)."""
        return self.columns(range(self.n_coefficients))

    # --------------------------------------------------------------- norms
    def operator_norm(
        self,
        *,
        n_iterations: int | None = None,
        seed: int = 0,
        tolerance: float | None = None,
        warm_start: np.ndarray | None = None,
    ) -> float:
        """Largest singular value of A, estimated by power iteration.

        The ISTA/FISTA/IHT step sizes are set from this value.  The result
        is memoised on the operator instance, and the iteration exits early
        once the estimate's relative change drops below ``tolerance``
        (``tolerance=0`` restores the fixed-iteration behaviour).  A
        ``warm_start`` vector — e.g. the converged singular vector of the
        previous frame's operator in a streaming GOP chain — typically cuts
        the iteration count to a handful; when a :class:`StepSizeCache` is
        attached (``norm_cache``), exact-key hits skip the iteration
        entirely and warm vectors are looked up and stored automatically.
        """
        if n_iterations is None:
            n_iterations = self.NORM_ITERATIONS
        if tolerance is None:
            tolerance = self.NORM_TOLERANCE
        # An explicitly warm-started call is the caller's own perturbed
        # estimate: it must not seed the plain-call memo (or an attached
        # cache), or later history-free calls would silently return it.
        explicit_warm = warm_start is not None
        memo_key = (int(n_iterations), int(seed), float(tolerance))
        if not explicit_warm and memo_key in self._norm_cache:
            return self._norm_cache[memo_key]
        # The attached cross-operator cache stores default-parameter
        # estimates only: a call asking for a different budget/tolerance
        # must not be answered with (or recorded as) a default-precision one.
        default_call = (
            not explicit_warm
            and n_iterations == self.NORM_ITERATIONS
            and tolerance == self.NORM_TOLERANCE
            and seed == 0
        )
        cache = self.norm_cache if default_call else None
        if cache is not None:
            cached = cache.norm(self.norm_exact_key)
            if cached is not None:
                self._norm_cache[memo_key] = cached
                return cached
            warm_start = cache.warm_vector(self.norm_warm_key)
        if warm_start is None:
            rng = np.random.default_rng(seed)
            vector = rng.standard_normal(self.n_coefficients)
        else:
            vector = np.asarray(warm_start, dtype=float).reshape(-1).copy()
            if vector.size != self.n_coefficients:
                raise ValueError(
                    f"warm_start must have {self.n_coefficients} entries, "
                    f"got {vector.size}"
                )
        norm = np.linalg.norm(vector)
        if norm == 0.0:
            raise ValueError("warm_start must be a non-zero vector")
        vector /= norm
        # For an orthonormal Ψ, σ(Φ Ψ) = σ(Φ): iterate on Φ*Φ directly and
        # skip the dictionary round-trip on every power step.  All shipped
        # dictionaries are orthonormal; a custom non-orthonormal dictionary
        # opts out via ``Dictionary.orthonormal = False``.
        if getattr(self.dictionary, "orthonormal", False):
            def step_product(v: np.ndarray) -> np.ndarray:
                return self.phi_rdot(self.phi_dot(v))
        else:
            def step_product(v: np.ndarray) -> np.ndarray:
                return self.rmatvec(self.matvec(v))
        sigma = 0.0
        for _ in range(max(1, int(n_iterations))):
            product = step_product(vector)
            norm = np.linalg.norm(product)
            if norm == 0.0:
                sigma = 0.0
                break
            vector = product / norm
            previous = sigma
            sigma = np.sqrt(norm)
            if tolerance > 0.0 and abs(sigma - previous) <= tolerance * sigma:
                break
        sigma = float(sigma)
        if not explicit_warm:
            self._norm_cache[memo_key] = sigma
        if cache is not None and sigma > 0.0:
            cache.store(self.norm_exact_key, self.norm_warm_key, sigma, vector)
        return sigma

    # -------------------------------------------------------------- images
    def coefficients_to_image(self, coefficients: np.ndarray) -> np.ndarray:
        """Convenience: synthesise coefficients and reshape to the image grid."""
        image = self.dictionary.synthesize(np.asarray(coefficients, dtype=float))
        return image.reshape(self.dictionary.shape)

    def image_to_coefficients(self, image: np.ndarray) -> np.ndarray:
        """Convenience: analyse an image into its coefficient vector."""
        return self.dictionary.analyze(np.asarray(image, dtype=float).reshape(-1))

    # ------------------------------------------------------------- helpers
    def _check_measurements(self, measurements: np.ndarray) -> np.ndarray:
        measurements = np.asarray(measurements, dtype=float).reshape(-1)
        if measurements.size != self.n_samples:
            raise ValueError(
                f"measurements must have {self.n_samples} entries, "
                f"got {measurements.size}"
            )
        return measurements

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(m={self.n_samples}, n={self.n_coefficients}, "
            f"dictionary={type(self.dictionary).__name__})"
        )


class SensingOperator(BaseSensingOperator):
    """Dense linear operator ``A = Φ Ψ`` — the executable reference.

    Parameters
    ----------
    phi:
        Dense measurement matrix, shape ``(m, n_pixels)``.
    dictionary:
        Sparsifying dictionary Ψ; identity when omitted (signal sparse in the
        pixel domain).
    """

    def __init__(self, phi: np.ndarray, dictionary: Dictionary | None = None) -> None:
        phi = np.asarray(phi, dtype=float)
        if phi.ndim != 2:
            raise ValueError(f"phi must be a 2-D matrix, got {phi.ndim} dimensions")
        self.phi = phi
        if dictionary is None:
            dictionary = _default_dictionary(phi.shape[1])
        if dictionary.n_pixels != phi.shape[1]:
            raise ValueError(
                f"dictionary dimension {dictionary.n_pixels} does not match "
                f"phi columns {phi.shape[1]}"
            )
        super().__init__(phi.shape[0], dictionary)

    # ------------------------------------------------------------ products
    def phi_dot(self, pixels: np.ndarray) -> np.ndarray:
        return self.phi @ np.asarray(pixels, dtype=float).reshape(-1)

    def phi_rdot(self, measurements: np.ndarray) -> np.ndarray:
        return self.phi.T @ measurements

    def phi_dot_columns(self, atoms: np.ndarray) -> np.ndarray:
        return self.phi @ atoms


class StepSizeCache:
    """Cross-operator memo of power-iteration norms and warm-start vectors.

    Two levels, both thread-safe:

    * **exact** — keyed by the full operator identity (seed bytes, CA
      parameters, dictionary, centring).  A hit returns the previously
      computed norm verbatim, so re-solving the *same* frame never pays the
      power iteration twice and stays bit-deterministic.
    * **warm** — keyed by operator geometry alone.  A hit seeds the next
      power iteration with the last converged singular vector of a
      same-shaped operator (the previous frame of a streaming GOP chain),
      which typically converges in a couple of iterations instead of
      dozens.  Warm starts change the σ estimate measurably — the
      relative-tolerance early exit lands on a different iterate, shifting
      the step by up to ~its tolerance and the downstream FISTA images by
      small-but-visible amounts (low decimals on a ~1000-code scale) — so
      they are only consulted when a cache is explicitly attached:
      reproducibility of an isolated solve is the default, and cached
      solves are *not* interchangeable with uncached ones for regression
      baselines.

    Attach one to the reconstruction entry points via their ``step_cache``
    argument (``reconstruct_frame``, ``reconstruct_tiled``,
    ``IncrementalTiledReconstructor``, ``StreamReceiver``).

    Parameters
    ----------
    max_entries:
        Bound on the exact-key memo.  Every frame of a GOP chain carries a
        fresh seed (a fresh exact key), so a cache living on a long-running
        receiver would otherwise grow one entry per tile per frame forever;
        the oldest entries are evicted FIFO past this bound.  The warm dict
        is keyed by geometry alone and is inherently small.
    """

    def __init__(self, *, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._exact: dict[Hashable, float] = {}
        self._warm: dict[Hashable, np.ndarray] = {}
        self._lock = threading.Lock()
        self.exact_hits = 0
        self.warm_hits = 0
        self.misses = 0

    def norm(self, exact_key: Hashable | None) -> float | None:
        """The memoised norm for an exact operator identity, if any."""
        if exact_key is None:
            return None
        with self._lock:
            sigma = self._exact.get(exact_key)
            if sigma is None:
                self.misses += 1
            else:
                self.exact_hits += 1
            return sigma

    def warm_vector(self, warm_key: Hashable | None) -> np.ndarray | None:
        """The last converged singular vector for a geometry key, if any."""
        if warm_key is None:
            return None
        with self._lock:
            vector = self._warm.get(warm_key)
            if vector is not None:
                self.warm_hits += 1
                return vector.copy()
            return None

    def store(
        self,
        exact_key: Hashable | None,
        warm_key: Hashable | None,
        sigma: float,
        vector: np.ndarray,
    ) -> None:
        """Record a converged power iteration under both key levels."""
        with self._lock:
            if exact_key is not None:
                self._exact[exact_key] = float(sigma)
                while len(self._exact) > self.max_entries:
                    self._exact.pop(next(iter(self._exact)))
            if warm_key is not None:
                self._warm[warm_key] = np.asarray(vector, dtype=float).copy()

    def __len__(self) -> int:
        with self._lock:
            return len(self._exact)
