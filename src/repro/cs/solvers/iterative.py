"""Iterative thresholding solvers: ISTA, FISTA and IHT.

These are the work-horses for the image-scale reconstructions (64x64 = 4096
unknowns, ~1600 measurements): every iteration only needs one application of
A and one of A*, both of which are fast (a dense m x n product for Φ plus a
fast transform for Ψ).

* ISTA/FISTA solve the LASSO problem ``min 0.5||y - Az||² + λ||z||₁`` by
  proximal gradient descent (FISTA adds Nesterov momentum).
* IHT solves the k-sparse constrained problem by gradient steps followed by
  hard thresholding to the k largest coefficients.

Every solver takes an opt-in ``profile``
(:class:`~repro.telemetry.SolverProfile`): when given, it receives the
composite objective and residual norm after each iteration plus the step
size and where it came from.  Profiling only *reads* solver state — it
never changes an iterate or consumes an RNG draw, so a profiled solve is
bit-identical to an unprofiled one (pinned by the telemetry suite), and the
default ``None`` skips every bookkeeping branch.
"""

from __future__ import annotations


import numpy as np

from repro.cs.operators import SensingOperator
from repro.cs.solvers.result import SolverResult, as_operator, check_measurements
from repro.telemetry import SolverProfile
from repro.utils.validation import check_positive


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Soft-thresholding (the proximal operator of the l1 norm)."""
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def hard_threshold(values: np.ndarray, sparsity: int) -> np.ndarray:
    """Keep the ``sparsity`` largest-magnitude entries, zero the rest."""
    check_positive("sparsity", sparsity)
    result = np.zeros_like(values)
    if sparsity >= values.size:
        return values.copy()
    keep = np.argpartition(np.abs(values), -int(sparsity))[-int(sparsity):]
    result[keep] = values[keep]
    return result


def _step_size(operator: SensingOperator, step_size: float | None) -> float:
    if step_size is not None:
        check_positive("step_size", step_size)
        return float(step_size)
    norm = operator.operator_norm()
    if norm == 0.0:
        return 1.0
    return 1.0 / (norm ** 2)


def ista(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    regularization: float = 0.1,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    step_size: float | None = None,
    initial: np.ndarray | None = None,
    profile: SolverProfile | None = None,
) -> SolverResult:
    """Iterative shrinkage-thresholding for the LASSO problem.

    Parameters
    ----------
    regularization:
        The l1 weight λ, in the units of the measurements.
    step_size:
        Gradient step; defaults to ``1/σ_max(A)²`` estimated by power
        iteration (the largest provably-convergent step).
    tolerance:
        Stop when the relative change of the iterate falls below this value.
    profile:
        Opt-in :class:`~repro.telemetry.SolverProfile`: records the
        per-iteration LASSO objective and residual norm plus the step size
        and its provenance.  Read-only — the solve itself is unchanged.
    """
    return _proximal_gradient(
        operator_or_matrix,
        measurements,
        regularization=regularization,
        max_iterations=max_iterations,
        tolerance=tolerance,
        step_size=step_size,
        initial=initial,
        accelerated=False,
        profile=profile,
    )


def fista(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    regularization: float = 0.1,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    step_size: float | None = None,
    initial: np.ndarray | None = None,
    profile: SolverProfile | None = None,
) -> SolverResult:
    """FISTA — ISTA with Nesterov momentum (Beck & Teboulle 2009)."""
    return _proximal_gradient(
        operator_or_matrix,
        measurements,
        regularization=regularization,
        max_iterations=max_iterations,
        tolerance=tolerance,
        step_size=step_size,
        initial=initial,
        accelerated=True,
        profile=profile,
    )


def _proximal_gradient(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    regularization: float,
    max_iterations: int,
    tolerance: float,
    step_size: float | None,
    initial: np.ndarray | None,
    accelerated: bool,
    profile: SolverProfile | None = None,
) -> SolverResult:
    operator = as_operator(operator_or_matrix)
    measurements = check_measurements(operator, measurements)
    check_positive("regularization", regularization, allow_zero=True)
    check_positive("max_iterations", max_iterations)
    check_positive("tolerance", tolerance)
    step = _step_size(operator, step_size)
    if profile is not None:
        profile.record_step_size(
            step, provenance="provided" if step_size is not None else "estimated"
        )
        profile.n_tiles = 1

    if initial is None:
        coefficients = np.zeros(operator.n_coefficients)
    else:
        coefficients = np.asarray(initial, dtype=float).reshape(-1).copy()
        if coefficients.size != operator.n_coefficients:
            raise ValueError("initial vector has the wrong dimension")
    momentum_point = coefficients.copy()
    momentum = 1.0
    history = []
    converged = False
    iteration = 0
    for iteration in range(1, int(max_iterations) + 1):
        gradient = operator.rmatvec(operator.matvec(momentum_point) - measurements)
        candidate = soft_threshold(momentum_point - step * gradient, step * regularization)
        if accelerated:
            next_momentum = (1.0 + np.sqrt(1.0 + 4.0 * momentum ** 2)) / 2.0
            momentum_point = candidate + ((momentum - 1.0) / next_momentum) * (
                candidate - coefficients
            )
            momentum = next_momentum
        else:
            momentum_point = candidate
        change = np.linalg.norm(candidate - coefficients)
        scale = max(np.linalg.norm(coefficients), 1e-12)
        coefficients = candidate
        residual = measurements - operator.matvec(coefficients)
        history.append(float(np.linalg.norm(residual)))
        if profile is not None:
            profile.record_iteration(
                0.5 * history[-1] ** 2
                + float(regularization) * float(np.abs(coefficients).sum()),
                history[-1],
            )
        if change / scale <= tolerance:
            converged = True
            break
    if profile is not None:
        profile.finish(converged=converged)
    return SolverResult(
        coefficients=coefficients,
        n_iterations=iteration,
        converged=converged,
        residual_norm=history[-1] if history else 0.0,
        history=history,
    )


def iht(
    operator_or_matrix: SensingOperator | np.ndarray,
    measurements: np.ndarray,
    *,
    sparsity: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    step_size: float | None = None,
    profile: SolverProfile | None = None,
) -> SolverResult:
    """Iterative hard thresholding (Blumensath & Davies 2009).

    ``profile`` records the data-fidelity objective ``0.5||y - Az||²`` per
    iteration (IHT has no l1 term) plus step-size provenance; read-only.
    """
    operator = as_operator(operator_or_matrix)
    measurements = check_measurements(operator, measurements)
    check_positive("sparsity", sparsity)
    check_positive("max_iterations", max_iterations)
    step = _step_size(operator, step_size)
    if profile is not None:
        profile.record_step_size(
            step, provenance="provided" if step_size is not None else "estimated"
        )
        profile.n_tiles = 1

    coefficients = np.zeros(operator.n_coefficients)
    history = []
    converged = False
    iteration = 0
    for iteration in range(1, int(max_iterations) + 1):
        gradient = operator.rmatvec(operator.matvec(coefficients) - measurements)
        candidate = hard_threshold(coefficients - step * gradient, int(sparsity))
        change = np.linalg.norm(candidate - coefficients)
        scale = max(np.linalg.norm(coefficients), 1e-12)
        coefficients = candidate
        residual = measurements - operator.matvec(coefficients)
        history.append(float(np.linalg.norm(residual)))
        if profile is not None:
            profile.record_iteration(0.5 * history[-1] ** 2, history[-1])
        if change / scale <= tolerance:
            converged = True
            break
    if profile is not None:
        profile.finish(converged=converged)
    return SolverResult(
        coefficients=coefficients,
        n_iterations=iteration,
        converged=converged,
        residual_norm=history[-1] if history else 0.0,
        history=history,
    )
