"""Telemetry neutrality + end-to-end trace acceptance.

Two system-level guarantees of the telemetry layer:

* **Bit-neutrality** — instrumenting a streamed 64×64 video (spans, stage
  histograms, hub metrics, solver profiles) changes *no* reconstructed
  byte and *no* RNG draw: telemetry on, telemetry constructed-but-disabled
  and telemetry absent produce identical frames — including the resilient
  path under a seeded :class:`~repro.stream.fault.LossyTransport`;
* **Trace completeness** — over loopback with one shared facade, every
  frame's trace shows all six pipeline stages
  (capture → encode → transport → decode → queue_wait → solve), and
  ``hub.metrics()`` round-trips through both renderers.
"""

import asyncio

import numpy as np
import pytest

from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer
from repro.stream.fault import LossyTransport
from repro.stream.hub import ReceiverHub
from repro.stream.node import CameraNode
from repro.stream.receiver import StreamReceiver
from repro.stream.transport import LoopbackTransport
from repro.telemetry import (
    STAGES,
    MetricsSnapshot,
    Telemetry,
    parse_prometheus,
)

CONFIG = SensorConfig(rows=64, cols=64)
N_FRAMES = 3
RECON_KWARGS = dict(solver="fista", max_iterations=5)


def run(coro):
    return asyncio.run(coro)


def _sequencer(samples=400, seed=7):
    return VideoSequencer(
        CompressiveImager(CONFIG, seed=seed), samples_per_frame=samples, seed=seed
    )


def _scenes(n=N_FRAMES, seed=0):
    return [make_scene("blobs", (64, 64), seed=seed + index) for index in range(n)]


def _frame_bytes(result):
    payload = []
    for frame in result.frames:
        payload.append(frame.capture.samples.tobytes())
        if frame.reconstruction is not None:
            payload.append(frame.reconstruction.image.tobytes())
    return payload


async def _stream_video(telemetry):
    transport = LoopbackTransport(max_buffered=8)
    node = CameraNode(transport, gop_size=N_FRAMES, telemetry=telemetry)
    receiver = StreamReceiver(telemetry=telemetry, **RECON_KWARGS)
    send_task = asyncio.create_task(node.stream_video(_sequencer(), _scenes()))
    result = await receiver.run(transport)
    await send_task
    return result


async def _stream_lossy_video(telemetry):
    transport = LoopbackTransport(max_buffered=64)
    lossy = LossyTransport(transport, seed=5, drop_rate=0.1)
    hub = ReceiverHub(resilient=True, telemetry=telemetry, **RECON_KWARGS)
    node = CameraNode(
        lossy, gop_size=4, segments_per_frame=4, parity=True, telemetry=telemetry
    )
    send_task = asyncio.create_task(node.stream_video(_sequencer(), _scenes()))
    try:
        results = await hub.attach(transport, expected_streams=1)
    finally:
        await hub.close()
    await send_task
    return results[0]


class TestByteNeutrality:
    """telemetry=None ≡ Telemetry(enabled=False) ≡ Telemetry(), byte for byte."""

    @pytest.fixture(scope="class", params=["clean", "lossy"])
    def three_runs(self, request):
        scenario = _stream_video if request.param == "clean" else _stream_lossy_video
        absent = run(scenario(None))
        disabled = run(scenario(Telemetry(enabled=False)))
        enabled = run(scenario(Telemetry()))
        return absent, disabled, enabled

    def test_all_frames_landed(self, three_runs):
        for result in three_runs:
            assert result.n_frames == N_FRAMES

    def test_instrumentation_changes_no_byte(self, three_runs):
        absent, disabled, enabled = three_runs
        reference = _frame_bytes(absent)
        assert _frame_bytes(disabled) == reference
        assert _frame_bytes(enabled) == reference


class TestTraceCompleteness:
    """The acceptance pin: one shared facade sees all six stages per frame."""

    @pytest.fixture(scope="class")
    def traced(self):
        telemetry = Telemetry()
        result = run(_stream_video(telemetry))
        return telemetry, result

    def test_every_frame_shows_all_six_stages(self, traced):
        telemetry, result = traced
        assert result.n_frames == N_FRAMES
        for frame_index in range(N_FRAMES):
            traces = [
                t for t in telemetry.tracer.traces() if t.frame_index == frame_index
            ]
            assert len(traces) == 1
            stages = traces[0].as_dict()
            missing = [stage for stage in STAGES if stage not in stages]
            assert missing == [], f"frame {frame_index} missing stages {missing}"
            assert tuple(stages) == STAGES

    def test_stage_histogram_saw_every_frame(self, traced):
        telemetry, _ = traced
        snapshot = telemetry.metrics()
        for stage in STAGES:
            sample = snapshot.get("repro_stage_seconds", {"stage": stage})
            assert sample is not None, stage
            assert sample.count >= N_FRAMES

    def test_slowest_ranking_covers_the_stream(self, traced):
        telemetry, _ = traced
        slowest = telemetry.tracer.slowest(N_FRAMES)
        assert len(slowest) == N_FRAMES
        totals = [trace.total for trace in slowest]
        assert totals == sorted(totals, reverse=True)


class TestHubMetricsRoundTrip:
    """``hub.metrics()`` works with or without telemetry and round-trips."""

    @pytest.fixture(scope="class")
    def hub_and_result(self):
        async def scenario():
            transport = LoopbackTransport(max_buffered=8)
            hub = ReceiverHub(**RECON_KWARGS)
            node = CameraNode(transport, gop_size=N_FRAMES)
            send_task = asyncio.create_task(
                node.stream_video(_sequencer(), _scenes())
            )
            try:
                results = await hub.attach(transport, expected_streams=1)
            finally:
                await hub.close()
            await send_task
            return hub, results[0]

        return run(scenario())

    def test_metrics_mirror_hub_stats(self, hub_and_result):
        hub, result = hub_and_result
        stats = hub.stats()
        snapshot = hub.metrics()
        assert snapshot.value("repro_hub_frames_total") == stats.n_frames
        assert snapshot.value("repro_hub_bytes_total") == stats.n_bytes == result.n_bytes
        assert snapshot.value("repro_hub_streams_completed_total") == 1.0
        assert snapshot.value("repro_session_frames_total", {"stream": 1}) == N_FRAMES
        latency = snapshot.get("repro_hub_frame_latency_seconds")
        assert latency is not None and latency.count == N_FRAMES

    def test_prometheus_and_json_round_trip(self, hub_and_result):
        hub, _ = hub_and_result
        snapshot = hub.metrics()
        assert MetricsSnapshot.from_json(snapshot.to_json()) == snapshot
        parsed = parse_prometheus(snapshot.render_prometheus())
        assert parsed[("repro_hub_frames_total", ())] == snapshot.value(
            "repro_hub_frames_total"
        )
        # Quantile gauges ride along with the histogram.
        assert ("repro_hub_frame_latency_quantile_seconds", (("quantile", "0.5"),)) in (
            parsed
        )

    def test_numpy_scalars_never_leak_into_samples(self, hub_and_result):
        hub, _ = hub_and_result
        for sample in hub.metrics():
            if sample.value is not None:
                assert not isinstance(sample.value, np.generic)
