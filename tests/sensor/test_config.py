"""Tests for SensorConfig — the Table II parameters and Eq. (1)/(2) derivations."""

import pytest

from repro.sensor.config import SensorConfig


class TestDefaultsMatchPrototype:
    """The default configuration is the Table II prototype."""

    def test_resolution(self, default_config):
        assert (default_config.rows, default_config.cols) == (64, 64)
        assert default_config.n_pixels == 4096

    def test_compressed_sample_bits_is_20(self, default_config):
        """Eq. (1): 8 + log2(4096) = 20 bits."""
        assert default_config.compressed_sample_bits == 20

    def test_column_sum_bits_is_14(self, default_config):
        """One column: 8 + log2(64) = 14 bits."""
        assert default_config.column_sum_bits == 14

    def test_max_compression_ratio_is_0_4(self, default_config):
        """Section III-B: R must stay below N_b / N_B = 8/20 = 0.4."""
        assert default_config.max_compression_ratio == pytest.approx(0.4)

    def test_compressed_sample_rate_near_50khz(self, default_config):
        """Eq. (2): 0.4 * 4096 * 30 ≈ 49.2 kHz ('≈50 kHz at maximum')."""
        assert default_config.compressed_sample_rate == pytest.approx(49152.0)
        assert 45e3 < default_config.compressed_sample_rate < 50e3

    def test_sample_period_near_20us(self, default_config):
        """'This is 20 us per compressed sample.'"""
        assert default_config.compressed_sample_period == pytest.approx(20.3e-6, rel=0.02)

    def test_conversion_window_fits_in_sample_period(self, default_config):
        """256 ticks of the 24 MHz clock (~10.7 us) fit in the ~20 us budget."""
        assert default_config.conversion_time == pytest.approx(256 / 24e6)
        assert default_config.conversion_time < default_config.compressed_sample_period

    def test_samples_per_frame(self, default_config):
        assert default_config.samples_per_frame == int(round(0.4 * 4096))

    def test_array_geometry(self, default_config):
        assert default_config.array_width == pytest.approx(64 * 22e-6)
        assert default_config.pixel_code_range == 256

    def test_event_overlap_probability_matches_paper_estimate(self, default_config):
        """The paper estimates ~6.25 % for 64 selected pixels and 5 ns events."""
        probability = default_config.event_overlap_probability(64)
        assert 0.04 < probability < 0.08

    def test_any_overlap_probability_is_larger(self, default_config):
        assert default_config.any_overlap_probability(
            64
        ) > default_config.event_overlap_probability(64)


class TestScaling:
    def test_eq1_scales_with_array_size(self):
        small = SensorConfig(rows=32, cols=32)
        assert small.compressed_sample_bits == 8 + 10

    def test_eq2_scales_linearly_with_ratio(self):
        low = SensorConfig(compression_ratio=0.2)
        high = SensorConfig(compression_ratio=0.4)
        assert high.compressed_sample_rate == pytest.approx(2 * low.compressed_sample_rate)

    def test_frame_time_is_inverse_frame_rate(self):
        config = SensorConfig(frame_rate=60.0)
        assert config.frame_time == pytest.approx(1 / 60.0)

    def test_as_dict_contains_key_rows(self):
        table = SensorConfig().as_dict()
        assert table["compressed_sample_bits"] == 20
        assert table["clock_frequency_mhz"] == pytest.approx(24.0)


class TestValidation:
    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            SensorConfig(rows=0)

    def test_rejects_ratio_of_one(self):
        with pytest.raises(ValueError):
            SensorConfig(compression_ratio=1.0)

    def test_rejects_negative_event_duration(self):
        with pytest.raises(ValueError):
            SensorConfig(event_duration=-1e-9)

    def test_rejects_fill_factor_above_one(self):
        with pytest.raises(ValueError):
            SensorConfig(fill_factor=1.5)

    def test_frozen_dataclass(self):
        config = SensorConfig()
        with pytest.raises(AttributeError):
            config.rows = 128
