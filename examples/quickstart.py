"""Quickstart: capture a compressive frame and reconstruct it.

This is the smallest end-to-end use of the library:

1. build the Table II sensor (64x64 pixels, Rule 30 selection CA, 24 MHz TDC),
2. expose it to a synthetic scene,
3. let it produce compressed samples (20-bit words) plus the CA seed,
4. rebuild the measurement matrix from the seed at the "receiver" and
   reconstruct the image with FISTA in a DCT dictionary.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CompressiveImager, SensorConfig, make_scene, psnr, reconstruct_frame


def main() -> None:
    config = SensorConfig()  # the DATE 2018 prototype parameters
    print("Sensor configuration")
    print(f"  resolution              : {config.rows} x {config.cols}")
    print(f"  compressed sample width : {config.compressed_sample_bits} bits  (Eq. 1)")
    print(f"  max compression ratio   : {config.max_compression_ratio:.2f}")
    print(f"  compressed sample rate  : {config.compressed_sample_rate / 1e3:.1f} kHz  (Eq. 2)")

    imager = CompressiveImager(config, seed=2018)
    scene = make_scene("blobs", (config.rows, config.cols), seed=42)

    # Capture at R = 0.3 (below the 0.4 bound derived in the paper).
    n_samples = int(0.3 * config.n_pixels)
    frame = imager.capture_scene(scene, n_samples=n_samples)
    print("\nCaptured frame")
    print(f"  compressed samples      : {frame.n_samples}")
    print(f"  compression ratio       : {frame.compression_ratio:.2f}")
    print(f"  CA seed length          : {frame.seed_state.size} bits")
    print(f"  bits on the wire        : {frame.compressed_bits} "
          f"(raw read-out would be {frame.raw_bits})")

    # The receiver only needs frame.samples + frame.seed_state (+ parameters).
    result = reconstruct_frame(frame, dictionary="dct", solver="fista", max_iterations=200)
    reference = frame.digital_image.astype(float)
    print("\nReconstruction")
    print(f"  PSNR vs ideal code image: {psnr(reference, result.image):.2f} dB")
    print(f"  solver iterations       : {result.solver_result.n_iterations}")

    # Show a crude ASCII rendering of ground truth vs reconstruction.
    def render(image: np.ndarray, title: str) -> None:
        ramp = " .:-=+*#%@"
        normalised = (image - image.min()) / (np.ptp(image) + 1e-12)
        print(f"\n  {title}")
        for row in normalised[::4, ::2]:
            print("  " + "".join(ramp[int(v * (len(ramp) - 1))] for v in row))

    render(reference, "ideal time-code image (decimated)")
    render(result.image, "reconstruction from compressed samples (decimated)")


if __name__ == "__main__":
    main()
