"""CLI entry point: ``python -m repro._lint src tests examples``.

Exit status: 0 clean, 1 findings, 2 usage or analysis error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from repro._lint.engine import Finding, LintError, lint_paths
from repro._lint.rules import RULES, rule_ids
from repro._lint.rules.frozen_wire import PINNED_CONSTANTS, current_fingerprints


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro._lint",
        description="Machine-check the architectural contracts (REPRO001-006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "examples"],
        help="files or directories to lint (default: src tests examples)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="IDS",
        help="comma-separated rule ids to skip (e.g. REPRO002,REPRO004)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array instead of text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and their contracts, then exit",
    )
    parser.add_argument(
        "--wire-fingerprint",
        action="store_true",
        help="print the current wire-layout fingerprints (for re-pinning "
        "after a consciously versioned wire change), then exit",
    )
    return parser


def _print_findings(findings: list[Finding], as_json: bool) -> None:
    if as_json:
        payload = [
            {
                "rule_id": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "message": finding.message,
                "hint": finding.hint,
            }
            for finding in findings
        ]
        print(json.dumps(payload, indent=2))
        return
    for finding in findings:
        print(finding.render())
        if finding.hint:
            print(f"    hint: {finding.hint}")
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"\n{len(findings)} {noun} ({', '.join(sorted({f.rule_id for f in findings}))})")


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.contract}")
        return 0
    if args.wire_fingerprint:
        sources = {}
        for module_rel in PINNED_CONSTANTS:
            candidate = Path("src") / module_rel
            if not candidate.exists():
                candidate = Path(module_rel)
            if candidate.exists():
                sources[module_rel] = candidate.read_text(encoding="utf-8")
        for module_rel, digest in current_fingerprints(sources).items():
            print(f"{module_rel}: {digest}")
        return 0
    disabled = {rule_id.strip() for rule_id in args.disable.split(",") if rule_id.strip()}
    unknown = disabled - set(rule_ids())
    if unknown:
        print(f"unknown rule ids: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2
    active = [rule for rule in RULES if rule.rule_id not in disabled]
    try:
        findings = lint_paths(args.paths, rules=active)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if findings:
        _print_findings(findings, args.as_json)
        return 1
    checked = ", ".join(rule.rule_id for rule in active)
    print(f"clean: no findings ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
