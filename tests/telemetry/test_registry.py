"""Metrics registry: instruments, snapshots, and both renderer round-trips."""

import math
import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    parse_prometheus,
)
from repro.telemetry.registry import latency_quantile_gauges


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_frames_total", help="frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)

    def test_counter_set_total_is_the_collector_path(self):
        counter = MetricsRegistry().counter("repro_bytes_total")
        counter.set_total(10)
        counter.set_total(7)  # collectors re-derive; overwrite is legal
        assert counter.value == 7.0
        with pytest.raises(ValueError, match=">= 0"):
            counter.set_total(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_streams_active")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2.0

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", labels={"stream": 1})
        b = registry.counter("repro_x_total", labels={"stream": "1"})
        assert a is b
        # Different labels are a different family member.
        c = registry.counter("repro_x_total", labels={"stream": 2})
        assert c is not a

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_x_total")

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_lat_seconds", bounds=(0.1, 1.0))
        with pytest.raises(ValueError, match="already registered with bounds"):
            registry.histogram("repro_lat_seconds", bounds=(0.2, 1.0))

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok_total", labels={"0bad": 1})


class TestHistogram:
    def test_bucket_edges_must_be_increasing_and_finite(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("repro_a_seconds", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            registry.histogram("repro_b_seconds", bounds=(1.0, math.inf))
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("repro_c_seconds", bounds=())

    def test_observations_land_in_the_right_buckets(self):
        histogram = MetricsRegistry().histogram("repro_d_seconds", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            histogram.observe(value)
        # bisect_left: an observation equal to an edge lands in that bucket.
        assert histogram.bucket_counts == (2, 2, 1)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(104.0)

    def test_rebuild_resets_then_reobserves(self):
        histogram = MetricsRegistry().histogram("repro_e_seconds", bounds=(1.0,))
        histogram.observe(0.5)
        histogram.rebuild([2.0, 3.0])
        assert histogram.bucket_counts == (0, 2)
        assert histogram.count == 2

    def test_quantile_guards(self):
        histogram = MetricsRegistry().histogram("repro_f_seconds", bounds=(1.0,))
        with pytest.raises(ValueError, match="empty histogram"):
            histogram.quantile(50.0)
        histogram.observe(0.5)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            histogram.quantile(101.0)

    def test_inf_bucket_clamps_to_last_edge(self):
        histogram = MetricsRegistry().histogram("repro_g_seconds", bounds=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.quantile(99.0) == 2.0

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=9.99, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_quantile_within_one_bucket_width_of_numpy(self, values, q):
        """The estimate is exact to within the width of the holding bucket.

        The histogram's rank rule (``rank = q/100 * count`` over cumulative
        bucket counts) selects the bucket containing the inverted-CDF order
        statistic, so the sound guarantee is against
        ``numpy.percentile(..., method="inverted_cdf")``: both values lie in
        the same bucket, hence differ by at most its width.
        """
        histogram = MetricsRegistry().histogram(
            "repro_h_seconds", bounds=DEFAULT_LATENCY_BUCKETS
        )
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        exact = float(np.percentile(np.asarray(values), q, method="inverted_cdf"))
        edges = (0.0, *DEFAULT_LATENCY_BUCKETS)
        index = int(np.searchsorted(DEFAULT_LATENCY_BUCKETS, exact, side="left"))
        width = edges[index + 1] - edges[index]
        assert abs(estimate - exact) <= width + 1e-12

    def test_concurrent_observes_lose_nothing(self):
        histogram = MetricsRegistry().histogram("repro_i_seconds", bounds=(0.5,))
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                histogram.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == n_threads * per_thread


class TestSnapshotsAndRenderers:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_frames_total", labels={"stream": 1}, help="frames seen"
        ).inc(12)
        registry.gauge("repro_streams_active", help="live sessions").set(3)
        histogram = registry.histogram(
            "repro_lat_seconds", bounds=(0.001, 0.01, 0.1), help="latency"
        )
        for value in (0.0005, 0.004, 0.02, 0.5):
            histogram.observe(value)
        return registry

    def test_snapshot_lookup(self):
        snapshot = self._registry().collect()
        assert snapshot.value("repro_frames_total", {"stream": 1}) == 12.0
        assert snapshot.value("repro_streams_active") == 3.0
        sample = snapshot.get("repro_lat_seconds")
        assert sample.kind == "histogram"
        assert sample.bucket_counts == (1, 1, 1, 1)
        with pytest.raises(KeyError, match="no metric"):
            snapshot.value("repro_missing_total")
        with pytest.raises(KeyError, match="no scalar value"):
            snapshot.value("repro_lat_seconds")

    def test_collector_runs_at_collect_time(self):
        registry = MetricsRegistry()
        live = {"frames": 0}
        counter = registry.counter("repro_live_total")
        registry.register_collector(lambda: counter.set_total(live["frames"]))
        live["frames"] = 41
        assert registry.collect().value("repro_live_total") == 41.0
        live["frames"] = 42
        assert registry.collect().value("repro_live_total") == 42.0

    def test_prometheus_text_round_trips(self):
        snapshot = self._registry().collect()
        text = snapshot.render_prometheus()
        parsed = parse_prometheus(text)
        assert parsed[("repro_frames_total", (("stream", "1"),))] == 12.0
        assert parsed[("repro_streams_active", ())] == 3.0
        # Histogram exposition is cumulative, with +Inf as the last bucket.
        assert parsed[("repro_lat_seconds_bucket", (("le", "0.001"),))] == 1.0
        assert parsed[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 4.0
        assert parsed[("repro_lat_seconds_count", ())] == 4.0
        # Re-rendering the parsed-and-rebuilt snapshot is stable.
        assert parse_prometheus(text) == parsed

    def test_json_round_trips_losslessly(self):
        snapshot = self._registry().collect()
        assert MetricsSnapshot.from_json(snapshot.to_json()) == snapshot

    def test_help_text_and_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_tricky_total", labels={"name": 'a"b\\c\nd'}, help="line\nbreak"
        ).inc()
        text = registry.collect().render_prometheus()
        parsed = parse_prometheus(text)
        assert parsed[("repro_tricky_total", (("name", 'a"b\\c\nd'),))] == 1.0
        assert "line\\nbreak" in text


class TestLatencyQuantileGauges:
    def test_exports_p50_p90_p99(self):
        registry = MetricsRegistry()
        values = [float(i) for i in range(1, 101)]
        latency_quantile_gauges(registry, "repro_lat_quantile_seconds", values)
        snapshot = registry.collect()
        assert snapshot.value(
            "repro_lat_quantile_seconds", {"quantile": "0.5"}
        ) == pytest.approx(float(np.percentile(values, 50)))
        assert snapshot.value(
            "repro_lat_quantile_seconds", {"quantile": "0.99"}
        ) == pytest.approx(float(np.percentile(values, 99)))

    def test_empty_series_is_a_noop(self):
        registry = MetricsRegistry()
        latency_quantile_gauges(registry, "repro_lat_quantile_seconds", [])
        assert registry.collect().samples == ()
