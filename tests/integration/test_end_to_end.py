"""Integration tests: the full pipeline at the paper's native 64x64 scale."""

import numpy as np
import pytest

from repro.cs.metrics import psnr, ssim
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


@pytest.fixture(scope="module")
def imager_64():
    return CompressiveImager(SensorConfig(), seed=2018)


@pytest.fixture(scope="module")
def captured_64(imager_64):
    scene = make_scene("blobs", (64, 64), seed=11)
    conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
    return imager_64.capture(conversion.convert(scene), n_samples=1200)


class TestFullScalePipeline:
    def test_frame_respects_table_ii_budget(self, captured_64):
        config = captured_64.config
        assert captured_64.samples.max() < (1 << config.compressed_sample_bits)
        assert captured_64.compression_ratio < config.max_compression_ratio

    def test_reconstruction_quality_at_r_030(self, captured_64):
        result = reconstruct_frame(captured_64, max_iterations=150)
        assert result.metrics["psnr_db"] > 24.0
        assert ssim(captured_64.digital_image.astype(float), result.image) > 0.5

    def test_receiver_needs_only_seed_and_samples(self, captured_64):
        """Rebuild Φ from the seed alone and check it reproduces the samples."""
        phi = captured_64.measurement_matrix()
        # The behavioural capture includes a sprinkling of +1 LSB errors, so the
        # regenerated products agree up to that small perturbation.
        expected = phi.astype(np.int64) @ captured_64.digital_image.reshape(-1)
        relative = np.abs(expected - captured_64.samples) / expected
        assert relative.max() < 0.01

    def test_frame_transmits_fewer_bits_than_raw_readout(self, imager_64):
        scene = make_scene("natural", (64, 64), seed=12)
        frame = imager_64.capture_scene(scene, n_samples=1000)
        assert frame.compressed_bits < frame.raw_bits
        assert frame.bit_savings > 0.3


class TestNoiseRobustness:
    def test_reconstruction_survives_shot_noise_and_prnu(self):
        imager = CompressiveImager(SensorConfig(rows=32, cols=32), seed=5)
        scene = make_scene("blobs", (32, 32), seed=13)
        noisy_conversion = PhotoConversion(prnu_sigma=0.02, shot_noise=True, seed=3)
        frame = imager.capture(noisy_conversion.convert(scene), n_samples=400)
        result = reconstruct_frame(frame, max_iterations=120)
        assert result.metrics["psnr_db"] > 18.0

    def test_comparator_offset_degrades_gracefully(self):
        from repro.pixel.comparator import Comparator
        from repro.pixel.photodiode import Photodiode
        from repro.pixel.time_encoder import TimeEncoder

        config = SensorConfig(rows=32, cols=32)
        scene = make_scene("blobs", (32, 32), seed=14)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        current = conversion.convert(scene)

        clean_encoder = TimeEncoder(
            photodiode=Photodiode(), comparator=Comparator(offset_sigma=0.0, delay=0.0)
        )
        noisy_encoder = TimeEncoder(
            photodiode=Photodiode(),
            comparator=Comparator(offset_sigma=30e-3, autozero=False, delay=0.0, seed=9),
        )
        clean = CompressiveImager(config, encoder=clean_encoder, seed=6).capture(
            current, n_samples=400
        )
        noisy = CompressiveImager(config, encoder=noisy_encoder, seed=6).capture(
            current, n_samples=400
        )
        psnr_clean = reconstruct_frame(clean, max_iterations=100).metrics["psnr_db"]
        psnr_noisy = reconstruct_frame(noisy, max_iterations=100).metrics["psnr_db"]
        assert psnr_noisy <= psnr_clean + 1.0  # offset cannot help
        assert psnr_noisy > 15.0  # but the system still works


class TestScenesAcrossTheBoard:
    @pytest.mark.parametrize("scene_kind", ["gradient", "bars", "natural", "text"])
    def test_reconstruction_beats_trivial_baseline(self, scene_kind):
        """CS reconstruction must beat the best constant (DC-only) image."""
        imager = CompressiveImager(SensorConfig(rows=32, cols=32), seed=8)
        scene = make_scene(scene_kind, (32, 32), seed=21)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        frame = imager.capture(conversion.convert(scene), n_samples=500)
        result = reconstruct_frame(frame, max_iterations=120)
        reference = frame.digital_image.astype(float)
        dc_only = np.full_like(reference, reference.mean())
        assert result.metrics["psnr_db"] > psnr(reference, dc_only) + 3.0
