"""Tests for the shared experiment harness."""

import pytest

from repro.analysis.experiments import (
    ExperimentRecord,
    reconstruction_experiment,
    strategy_comparison,
    sweep_compression_ratio,
)


class TestReconstructionExperiment:
    def test_ca_xor_strategy_produces_sane_record(self):
        record = reconstruction_experiment(
            "blobs", "ca-xor", 0.3, image_shape=(32, 32), max_iterations=80, seed=1
        )
        assert record.strategy == "ca-xor"
        assert record.n_samples == int(round(0.3 * 1024))
        assert record.psnr_db > 15.0
        assert 0.0 <= record.ssim <= 1.0

    def test_block_strategy_embeds_block_size(self):
        record = reconstruction_experiment(
            "blobs", "block-8", 0.3, image_shape=(32, 32), max_iterations=60, seed=1
        )
        assert record.extra["block_size"] == 8.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            reconstruction_experiment("blobs", "quantum", 0.3, image_shape=(16, 16))

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            reconstruction_experiment("blobs", "ca-xor", 0.0, image_shape=(16, 16))

    def test_record_as_dict_contains_extras(self):
        record = ExperimentRecord(
            scene="s", strategy="x", compression_ratio=0.1, n_samples=10,
            psnr_db=20.0, snr_db=18.0, ssim=0.8, extra={"foo": 1.0},
        )
        row = record.as_dict()
        assert row["foo"] == 1.0
        assert row["psnr_db"] == 20.0


class TestSweepAndComparison:
    def test_sweep_produces_cartesian_product(self):
        records = sweep_compression_ratio(
            ["gradient"], ["ca-xor", "bernoulli"], [0.2, 0.4],
            image_shape=(16, 16), max_iterations=30, seed=2,
        )
        assert len(records) == 4

    def test_strategy_comparison_aggregates_by_ratio(self):
        records = sweep_compression_ratio(
            ["gradient", "blobs"], ["ca-xor"], [0.3],
            image_shape=(16, 16), max_iterations=30, seed=3,
        )
        summary = strategy_comparison(records)
        assert set(summary) == {"ca-xor"}
        assert 0.3 in summary["ca-xor"]

    def test_quality_increases_with_ratio(self):
        records = sweep_compression_ratio(
            ["blobs"], ["bernoulli"], [0.1, 0.5],
            image_shape=(32, 32), max_iterations=80, seed=4,
        )
        summary = strategy_comparison(records)["bernoulli"]
        assert summary[0.5] > summary[0.1]
