"""Chunked wire protocol for live compressive-sample streams.

The frame codec (:mod:`repro.io.framing`) serialises *one* capture; a camera
node needs to put many of them — tile by tile, frame by frame — onto one
byte channel and let the receiver cut the stream back apart while it is still
flowing.  This module is that layer:

* every transmission unit is a :class:`Chunk`: a fixed 12-byte header (magic,
  chunk type, stream id, sequence number, payload length) followed by the
  payload, so a receiver can re-synchronise and detect truncation without
  decoding payloads;
* :class:`ChunkDecoder` performs incremental parsing: feed it whatever byte
  slices the transport delivers (TCP segments, queue items) and it yields
  complete chunks, buffering partials;
* typed payload codecs for the four chunk kinds: the stream header
  (:class:`StreamHeader` — kind, scene/tile geometry, GOP size: everything a
  receiver needs to derive the tile grid and pre-size its reconstruction),
  frame/tile data (grid position + an embedded v2 frame from
  :func:`repro.io.framing.encode_frame`), the per-frame completion barrier,
  and the end-of-stream marker;
* :func:`advance_seed_state` — the GOP resynchronisation rule.  The
  free-running selection CA overlaps consecutive frames by one pattern, so
  frame ``k+1``'s seed is frame ``k``'s seed evolved through ``k``'s warm-up
  and its ``n_samples - 1`` pattern steps.  A GOP therefore carries the
  128-bit seed once (its keyframe); every later frame ships samples only and
  the receiver walks the chain.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

from repro.ca.automaton import ElementaryCellularAutomaton
from repro.ca.rules import RuleTable

#: First byte of every chunk ("CC": compressed chunk).
CHUNK_MAGIC = 0xCC
#: Version of the chunk layer itself (independent of the frame versions).
PROTOCOL_VERSION = 1
#: struct layout of the chunk header: magic, type, stream id, sequence, length.
_CHUNK_HEADER = struct.Struct(">BBHII")
#: Hard cap on a single chunk payload (a 64x64 v2 frame is ~10 kB; 16 MiB is
#: far beyond any legal frame and bounds a corrupt length field).
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

#: Stream kinds announced by the stream header.
STREAM_KINDS = ("frame", "video", "tiled", "tiled-video")


class StreamProtocolError(ValueError):
    """A malformed, out-of-order or impossible chunk was encountered."""


class ChunkType(enum.IntEnum):
    """Discriminator carried in every chunk header."""

    STREAM_START = 1
    FRAME_DATA = 2
    FRAME_COMPLETE = 3
    STREAM_END = 4


@dataclass(frozen=True)
class Chunk:
    """One wire chunk: typed header plus opaque payload bytes."""

    chunk_type: ChunkType
    stream_id: int
    sequence: int
    payload: bytes

    @property
    def n_bytes(self) -> int:
        """Size of the chunk on the wire, header included."""
        return _CHUNK_HEADER.size + len(self.payload)


def encode_chunk(chunk: Chunk) -> bytes:
    """Serialise a :class:`Chunk` (header + payload)."""
    if len(chunk.payload) > MAX_PAYLOAD_BYTES:
        raise StreamProtocolError(
            f"chunk payload of {len(chunk.payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte cap"
        )
    return (
        _CHUNK_HEADER.pack(
            CHUNK_MAGIC,
            int(chunk.chunk_type),
            chunk.stream_id,
            chunk.sequence,
            len(chunk.payload),
        )
        + chunk.payload
    )


class ChunkDecoder:
    """Incremental chunk parser over an arbitrary byte-slice stream.

    Transports deliver bytes in whatever granularity they like (a TCP read
    may end mid-header); :meth:`feed` buffers partial input and returns every
    chunk completed so far.  Malformed input raises
    :class:`StreamProtocolError` — the decoder never resynchronises silently.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete chunk."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Chunk]:
        """Absorb ``data`` and return the chunks it completed."""
        self._buffer.extend(data)
        chunks: list[Chunk] = []
        while len(self._buffer) >= _CHUNK_HEADER.size:
            magic, chunk_type, stream_id, sequence, length = _CHUNK_HEADER.unpack_from(
                self._buffer
            )
            if magic != CHUNK_MAGIC:
                raise StreamProtocolError(
                    f"bad chunk magic 0x{magic:02X} (stream corrupt or misaligned)"
                )
            try:
                chunk_type = ChunkType(chunk_type)
            except ValueError as error:
                raise StreamProtocolError(
                    f"unknown chunk type {chunk_type}"
                ) from error
            if length > MAX_PAYLOAD_BYTES:
                raise StreamProtocolError(
                    f"chunk announces an impossible payload of {length} bytes"
                )
            end = _CHUNK_HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_CHUNK_HEADER.size : end])
            del self._buffer[:end]
            chunks.append(
                Chunk(
                    chunk_type=chunk_type,
                    stream_id=stream_id,
                    sequence=sequence,
                    payload=payload,
                )
            )
        return chunks


# ---------------------------------------------------------------- payloads
@dataclass(frozen=True)
class StreamHeader:
    """Stream-level announcement: everything needed before the first frame.

    Attributes
    ----------
    kind:
        One of :data:`STREAM_KINDS`.  ``frame``/``video`` are single-sensor
        streams (one frame per :class:`~repro.stream.protocol.FrameData`
        chunk); the ``tiled`` kinds ship one chunk per mosaic tile and the
        receiver derives the grid from the two shapes below.
    scene_shape, tile_shape:
        Scene dimensions and nominal tile dimensions.  For single-sensor
        streams the two coincide.
    gop_size:
        Frames per group-of-pictures: the CA seed rides only on each GOP's
        first frame (``0``/``1`` mean every frame is a keyframe).
    n_frames:
        Announced sequence length, ``0`` when unbounded.
    """

    kind: str
    scene_shape: tuple[int, int]
    tile_shape: tuple[int, int]
    gop_size: int = 1
    n_frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STREAM_KINDS:
            raise StreamProtocolError(f"unknown stream kind {self.kind!r}")

    @property
    def tiled(self) -> bool:
        """True for mosaic streams (one chunk per tile)."""
        return self.kind in ("tiled", "tiled-video")


_STREAM_START = struct.Struct(">BBHHHHHI")
# 16-bit grid positions: anything tile_grid can produce from the 16-bit
# scene/tile shapes of the stream header is representable.
_FRAME_DATA = struct.Struct(">IHHB")
_FRAME_COMPLETE = struct.Struct(">IH")
_STREAM_END = struct.Struct(">I")


def encode_stream_header(header: StreamHeader) -> bytes:
    """Payload of a :data:`ChunkType.STREAM_START` chunk."""
    return _STREAM_START.pack(
        PROTOCOL_VERSION,
        STREAM_KINDS.index(header.kind),
        header.scene_shape[0],
        header.scene_shape[1],
        header.tile_shape[0],
        header.tile_shape[1],
        header.gop_size,
        header.n_frames,
    )


def decode_stream_header(payload: bytes) -> StreamHeader:
    """Inverse of :func:`encode_stream_header`."""
    try:
        version, kind, srows, scols, trows, tcols, gop, n_frames = _STREAM_START.unpack(
            payload
        )
    except struct.error as error:
        raise StreamProtocolError(f"malformed stream header: {error}") from error
    if version != PROTOCOL_VERSION:
        raise StreamProtocolError(f"unsupported stream protocol version {version}")
    if kind >= len(STREAM_KINDS):
        raise StreamProtocolError(f"unknown stream kind index {kind}")
    return StreamHeader(
        kind=STREAM_KINDS[kind],
        scene_shape=(srows, scols),
        tile_shape=(trows, tcols),
        gop_size=gop,
        n_frames=n_frames,
    )


@dataclass(frozen=True)
class FrameData:
    """One frame-data payload: grid position plus an embedded encoded frame.

    ``keyframe`` marks frames that carry their CA seed inline; non-keyframes
    are seedless v2 frames decoded against the receiver's seed chain.
    """

    frame_index: int
    grid_row: int
    grid_col: int
    keyframe: bool
    frame_bytes: bytes


def encode_frame_data(data: FrameData) -> bytes:
    """Payload of a :data:`ChunkType.FRAME_DATA` chunk."""
    return (
        _FRAME_DATA.pack(
            data.frame_index, data.grid_row, data.grid_col, int(data.keyframe)
        )
        + data.frame_bytes
    )


def decode_frame_data(payload: bytes) -> FrameData:
    """Inverse of :func:`encode_frame_data`."""
    if len(payload) < _FRAME_DATA.size:
        raise StreamProtocolError(
            f"frame-data payload of {len(payload)} bytes is shorter than its "
            f"{_FRAME_DATA.size}-byte header"
        )
    frame_index, grid_row, grid_col, keyframe = _FRAME_DATA.unpack_from(payload)
    return FrameData(
        frame_index=frame_index,
        grid_row=grid_row,
        grid_col=grid_col,
        keyframe=bool(keyframe),
        frame_bytes=payload[_FRAME_DATA.size :],
    )


def encode_frame_complete(frame_index: int, n_tiles: int) -> bytes:
    """Payload of a :data:`ChunkType.FRAME_COMPLETE` chunk."""
    return _FRAME_COMPLETE.pack(frame_index, n_tiles)


def decode_frame_complete(payload: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_frame_complete` → ``(frame_index, n_tiles)``."""
    try:
        return _FRAME_COMPLETE.unpack(payload)
    except struct.error as error:
        raise StreamProtocolError(f"malformed frame-complete payload: {error}") from error


def encode_stream_end(n_frames: int) -> bytes:
    """Payload of a :data:`ChunkType.STREAM_END` chunk."""
    return _STREAM_END.pack(n_frames)


def decode_stream_end(payload: bytes) -> int:
    """Inverse of :func:`encode_stream_end` → total frames sent."""
    try:
        return _STREAM_END.unpack(payload)[0]
    except struct.error as error:
        raise StreamProtocolError(f"malformed stream-end payload: {error}") from error


# ------------------------------------------------------------ seed chaining
def advance_seed_state(
    seed_state: np.ndarray,
    rule: int | RuleTable,
    *,
    n_samples: int,
    steps_per_sample: int = 1,
    warmup_steps: int = 0,
) -> np.ndarray:
    """Derive the next frame's CA seed from the current frame's.

    The hardware CA free-runs across frames: a frame's last selection pattern
    *is* the next frame's seed (with no further warm-up — the register is
    already mixed).  Given frame ``k``'s seed and header parameters, the next
    seed is the state after ``warmup_steps`` plus ``n_samples - 1`` pattern
    advances of ``steps_per_sample`` generations each.  This is the receiver
    side of the seed-once GOP encoding: only keyframes spend channel bits on
    the seed, every other frame's measurement matrix is derived by walking
    this chain — and it matches
    :meth:`repro.sensor.imager.CompressiveImager.capture_batch` exactly (the
    streaming tests pin the chain against captured ``seed_state`` values).
    """
    seed_state = np.asarray(seed_state)
    automaton = ElementaryCellularAutomaton(
        seed_state.size, rule, seed_state=seed_state
    )
    total_steps = int(warmup_steps) + (int(n_samples) - 1) * int(steps_per_sample)
    if total_steps:
        automaton.step(total_steps)
    return automaton.state
