"""Parametric power and area model used to regenerate Table II.

The prototype reports a die of 3.17 mm x 2.23 mm, a 22 µm pixel with 9.2 %
fill factor and a predicted power consumption below 100 mW.  Those numbers
come from layout and post-layout simulation, which we obviously cannot run;
instead this module provides a transparent bottom-up estimate built from
per-block contributions (pixel array, CA ring, column control and
sample-and-add, counter and clocking, pad ring and I/O).  The estimate is
calibrated so the default :class:`~repro.sensor.config.SensorConfig`
reproduces the Table II values, and it scales sensibly with resolution,
clock frequency and compressed-sample rate so the ablation benchmarks can
explore the design space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensor.config import SensorConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PowerAreaModel:
    """Bottom-up power/area estimator.

    Power terms (all per-unit, multiplied by counts/frequencies from the
    configuration):

    * ``pixel_static_power`` — comparator bias per pixel (the dominant term;
      a continuously-biased comparator in 0.18 µm draws a few µW).
    * ``pixel_event_energy`` — energy per emitted event (bus swing + logic).
    * ``ca_cell_dynamic_energy`` — energy per CA cell per update.
    * ``column_logic_power`` — sample-and-add plus control unit, per column.
    * ``counter_clock_power`` — global counter and clock tree, proportional
      to the clock frequency.
    * ``io_pad_power`` — output drivers, proportional to the delivered data
      rate.

    Area terms: pixel pitch (from the configuration), per-CA-cell area,
    per-column read-out area, pad-ring margin.
    """

    pixel_static_power: float = 4.0e-6
    pixel_event_energy: float = 0.4e-12
    ca_cell_dynamic_energy: float = 25.0e-15
    column_logic_power: float = 90.0e-6
    counter_clock_power_per_hz: float = 5.0e-10
    io_pad_power_per_bps: float = 8.0e-9
    ca_cell_area: float = 180.0e-12
    column_readout_area: float = 13000.0e-12
    pad_ring_margin: float = 280.0e-6

    def __post_init__(self) -> None:
        for name in (
            "pixel_static_power",
            "pixel_event_energy",
            "ca_cell_dynamic_energy",
            "column_logic_power",
            "counter_clock_power_per_hz",
            "io_pad_power_per_bps",
            "ca_cell_area",
            "column_readout_area",
            "pad_ring_margin",
        ):
            check_positive(name, getattr(self, name))

    # ---------------------------------------------------------------- power
    def power_breakdown(self, config: SensorConfig) -> dict[str, float]:
        """Per-block power estimate (W) for a sensor configuration."""
        n_pixels = config.n_pixels
        samples_per_second = config.compressed_sample_rate
        # Roughly half the pixels are selected per compressed sample.
        events_per_second = samples_per_second * n_pixels * 0.5
        ca_cells = config.rows + config.cols
        ca_updates_per_second = samples_per_second * ca_cells
        output_bits_per_second = samples_per_second * config.compressed_sample_bits

        breakdown = {
            "pixel_array": n_pixels * self.pixel_static_power
            + events_per_second * self.pixel_event_energy,
            "ca_ring": ca_updates_per_second * self.ca_cell_dynamic_energy,
            "column_readout": config.cols * self.column_logic_power,
            "counter_and_clock": config.clock_frequency * self.counter_clock_power_per_hz,
            "io_pads": output_bits_per_second * self.io_pad_power_per_bps,
        }
        breakdown["total"] = sum(breakdown.values())
        return breakdown

    def total_power(self, config: SensorConfig) -> float:
        """Total estimated power (W)."""
        return self.power_breakdown(config)["total"]

    # ----------------------------------------------------------------- area
    def area_breakdown(self, config: SensorConfig) -> dict[str, float]:
        """Per-block area estimate (m^2) and die dimensions (m)."""
        array_width = config.array_width
        array_height = config.array_height
        ca_cells = config.rows + config.cols
        periphery_area = (
            ca_cells * self.ca_cell_area + config.cols * self.column_readout_area
        )
        # Periphery is placed below/right of the array; approximate it as a
        # uniform band and add the pad ring margin on every side.
        periphery_band = periphery_area / max(array_width, 1e-9)
        die_width = array_width + periphery_band + 2.0 * self.pad_ring_margin
        die_height = array_height + periphery_band + 2.0 * self.pad_ring_margin
        return {
            "pixel_array": array_width * array_height,
            "ca_ring": ca_cells * self.ca_cell_area,
            "column_readout": config.cols * self.column_readout_area,
            "die_width": die_width,
            "die_height": die_height,
            "die_area": die_width * die_height,
        }


def chip_feature_summary(
    config: SensorConfig = None,
    model: PowerAreaModel = None,
) -> dict[str, object]:
    """Regenerate the rows of Table II for a configuration.

    Reported die size and power come from the parametric model; the purely
    architectural rows (resolution, pixel size, frame rate, clock, maximum
    compressed-sample rate, supplies) come straight from the configuration.
    """
    config = config or SensorConfig()
    model = model or PowerAreaModel()
    area = model.area_breakdown(config)
    power = model.power_breakdown(config)
    return {
        "technology": config.technology,
        "die_size_mm": (area["die_width"] * 1e3, area["die_height"] * 1e3),
        "pixel_size_um": (config.pixel_pitch * 1e6, config.pixel_pitch * 1e6),
        "fill_factor_percent": config.fill_factor * 100.0,
        "resolution": (config.rows, config.cols),
        "photodiode_type": "n-well/p-substrate",
        "power_supply_v": (config.io_voltage, config.supply_voltage),
        "predicted_power_mw": power["total"] * 1e3,
        "frame_rate_fps": config.frame_rate,
        "max_compressed_sample_rate_khz": config.compressed_sample_rate / 1e3,
        "clock_frequency_mhz": config.clock_frequency / 1e6,
        "compressed_sample_bits": config.compressed_sample_bits,
        "max_compression_ratio": config.max_compression_ratio,
    }


#: Table II of the paper, transcribed for direct comparison in EXPERIMENTS.md
#: and the E2 benchmark.
PAPER_TABLE_II: dict[str, object] = {
    "technology": "CMOS 0.18um 1P6M",
    "die_size_mm": (3.174, 2.227),
    "pixel_size_um": (22.0, 22.0),
    "fill_factor_percent": 9.2,
    "resolution": (64, 64),
    "photodiode_type": "n-well/p-substrate",
    "power_supply_v": (3.3, 1.8),
    "predicted_power_mw": 100.0,
    "frame_rate_fps": 30.0,
    "max_compressed_sample_rate_khz": 50.0,
    "clock_frequency_mhz": 24.0,
}
