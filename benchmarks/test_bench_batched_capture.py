"""E13 — batched capture engine throughput.

Times the layers the batched engines rewrote: the vectorised Φ builder (one
CA evolution + one broadcast XOR), the single-frame behavioural capture
(rank-structured matmul + one LSB draw per selected event), the multi-frame
``capture_batch`` fast path that shares one CA state stack across a whole
sequence, and — since PR 2 — the column-parallel event-accurate engine
(vectorised bus arbitration across all sample x column instances).  Together
with ``test_bench_throughput.py`` these numbers make hot-path regressions
visible; the capture-equivalence suites guarantee the speed does not come at
the cost of bit-fidelity, and CI's regression gate
(``benchmarks/check_regression.py``) fails when a tracked group's median
drifts more than 30 % past ``benchmarks/baseline.json``.
"""

import time

import numpy as np
import pytest

from repro.ca.selection import ca_measurement_matrix
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager
from repro.sensor.video import VideoSequencer


def make_inputs(rows=64, cols=64, seed=2018):
    config = SensorConfig(rows=rows, cols=cols)
    imager = CompressiveImager(config, seed=seed)
    scene = make_scene("natural", (rows, cols), seed=seed)
    current = PhotoConversion(prnu_sigma=0.0, shot_noise=False).convert(scene)
    return imager, current


@pytest.mark.benchmark(group="phi-build")
def test_batched_phi_build_full_frame(benchmark):
    """Φ for a full 64x64 frame (4096 samples) in one batched pass."""
    imager, _ = make_inputs()
    seed_state = imager.selection.seed_state
    phi = benchmark(
        lambda: ca_measurement_matrix(4096, 64, 64, seed_state, warmup_steps=8)
    )
    assert phi.shape == (4096, 4096)
    assert phi.dtype == np.uint8


@pytest.mark.benchmark(group="behavioural-capture")
def test_batched_behavioural_capture_no_lsb(benchmark):
    """The pure Φ@x path, isolating the matmul from the LSB draw cost."""
    imager, current = make_inputs()
    frame = benchmark(lambda: imager.capture(current, n_samples=512, lsb_error=False))
    assert frame.metadata["n_lsb_errors"] == 0


@pytest.mark.benchmark(group="behavioural-capture")
def test_batched_behavioural_capture_with_lsb(benchmark):
    """Same capture with the stochastic LSB error batched over every event."""
    imager, current = make_inputs()
    frame = benchmark(lambda: imager.capture(current, n_samples=512))
    assert frame.n_samples == 512


@pytest.mark.benchmark(group="behavioural-capture")
def test_capture_batch_eight_frames(benchmark):
    """Eight 512-sample frames through one shared CA state stack."""
    imager, current = make_inputs()
    currents = [current] * 8

    def run():
        frames = imager.capture_batch(currents, n_samples=512)
        return frames

    frames = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(frames) == 8
    assert all(frame.n_samples == 512 for frame in frames)


@pytest.mark.benchmark(group="behavioural-capture")
def test_video_sequencer_throughput(benchmark):
    """The video path end to end (conversion + batched multi-frame capture)."""
    imager, _ = make_inputs(rows=32, cols=32)
    sequencer = VideoSequencer(
        imager,
        conversion=PhotoConversion(prnu_sigma=0.0, shot_noise=False),
        samples_per_frame=256,
    )
    scenes = [make_scene("blobs", (32, 32), seed=s) for s in range(8)]
    result = benchmark.pedantic(
        lambda: sequencer.capture_sequence(scenes), rounds=3, iterations=1
    )
    assert result.n_frames == 8


# --------------------------------------------------------- event fidelity
@pytest.mark.benchmark(group="event-capture")
def test_batched_event_capture_64x64(benchmark):
    """Event-accurate capture (column-parallel arbitration) at 64x64."""
    imager, current = make_inputs()
    frame = benchmark.pedantic(
        lambda: imager.capture(current, n_samples=256, fidelity="event"),
        rounds=3,
        iterations=1,
    )
    assert frame.n_samples == 256
    assert frame.metadata["event_statistics"] == "exact"


@pytest.mark.benchmark(group="event-capture")
def test_batched_event_capture_heavy_contention(benchmark):
    """A constant scene fires every selected pixel of a column at once."""
    imager, _ = make_inputs(rows=32, cols=32)
    current = np.full((32, 32), 5e-9)
    frame = benchmark.pedantic(
        lambda: imager.capture(current, n_samples=128, fidelity="event"),
        rounds=3,
        iterations=1,
    )
    assert frame.metadata["n_queued_events"] > 0


@pytest.mark.benchmark(group="event-capture")
def test_capture_batch_event_fidelity(benchmark):
    """Four event-accurate frames through one shared CA state stack."""
    imager, current = make_inputs()
    currents = [current] * 4
    frames = benchmark.pedantic(
        lambda: imager.capture_batch(currents, n_samples=128, fidelity="event"),
        rounds=3,
        iterations=1,
    )
    assert len(frames) == 4


def test_event_capture_speedup_over_reference():
    """The batched engine must beat the per-event loop by >= 5x at 64x64.

    Measured on identical captures (same seed, same scene, byte-identical
    output — the equivalence suite's contract); a single round keeps the
    reference loop affordable in CI.
    """
    imager, current = make_inputs()
    start = time.perf_counter()
    reference = imager.capture(
        current, n_samples=32, fidelity="event", engine="reference"
    )
    reference_elapsed = time.perf_counter() - start

    imager, current = make_inputs()
    start = time.perf_counter()
    batched = imager.capture(current, n_samples=32, fidelity="event")
    batched_elapsed = time.perf_counter() - start

    assert batched.samples.tobytes() == reference.samples.tobytes()
    speedup = reference_elapsed / batched_elapsed
    print(
        f"\nevent-accurate 32-sample 64x64 capture: reference "
        f"{reference_elapsed * 1e3:.1f} ms, batched {batched_elapsed * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 5.0
