"""Light-to-time conversion: the pulse-modulation front end of the pixel.

Combining the photodiode and the comparator gives the pixel's light-to-time
transfer characteristic: the time between the global reset and the ``V_1``
edge is inversely proportional to the photocurrent (brighter pixels fire
earlier).  The time encoder also models the two knobs the paper highlights
as on-line adjustable — ``V_rst`` and ``V_ref`` — which scale the conversion
to different illumination ranges in real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pixel.comparator import Comparator
from repro.pixel.photodiode import Photodiode
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in_range, check_positive


def column_event_order(firing_times: np.ndarray, deadline: float):
    """Sort every column's firing times for bus arbitration, in one pass.

    Returns ``(order, sorted_times, valid)`` where ``valid`` marks pixels
    whose pulse can reach the column bus at all (finite fire time inside the
    conversion window — the rest are lost in any fidelity mode), ``order`` is
    the ``(rows, cols)`` per-column permutation placing valid pixels in
    ascending ``(fire_time, row)`` order (invalid pixels sink to the end) and
    ``sorted_times`` are the firing times so permuted.  The batched event
    engine computes this once per frame — the firing times do not depend on
    the selection pattern, so all compressed samples share one ordering.
    """
    firing_times = np.asarray(firing_times, dtype=float)
    valid = np.isfinite(firing_times) & (firing_times < deadline)
    keyed = np.where(valid, firing_times, np.inf)
    # A stable sort on the fire time preserves row order among exact ties,
    # which is precisely the (fire_time, row) key the scalar arbiter sorts by.
    order = np.argsort(keyed, axis=0, kind="stable")
    sorted_times = np.take_along_axis(keyed, order, axis=0)
    return order, sorted_times, valid


@dataclass
class TimeEncoder:
    """Per-pixel light-to-time converter.

    Attributes
    ----------
    photodiode:
        The integrating photodiode model (provides ``V_rst`` and the slew).
    comparator:
        The comparator model (provides offset and delay).
    reference_voltage:
        ``V_ref`` — the threshold the sense node must reach. Lower values
        (further from ``V_rst``) lengthen integration and favour dim scenes.
    """

    photodiode: Photodiode = field(default_factory=Photodiode)
    comparator: Comparator = field(default_factory=Comparator)
    reference_voltage: float = 1.0

    def __post_init__(self) -> None:
        check_positive("reference_voltage", self.reference_voltage)
        if self.reference_voltage >= self.photodiode.reset_voltage:
            raise ValueError(
                "reference_voltage must be below the photodiode reset voltage"
            )

    # ------------------------------------------------------------- controls
    @property
    def voltage_swing(self) -> float:
        """``V_rst - V_ref`` — the swing integrated before the comparator flips."""
        return self.photodiode.reset_voltage - self.reference_voltage

    def set_reference(self, reference_voltage: float) -> None:
        """On-line adjustment of ``V_ref`` (illumination adaptation)."""
        check_positive("reference_voltage", reference_voltage)
        if reference_voltage >= self.photodiode.reset_voltage:
            raise ValueError(
                "reference_voltage must be below the photodiode reset voltage"
            )
        self.reference_voltage = float(reference_voltage)

    def set_reset_voltage(self, reset_voltage: float) -> None:
        """On-line adjustment of ``V_rst`` (illumination adaptation)."""
        check_positive("reset_voltage", reset_voltage)
        if reset_voltage <= self.reference_voltage:
            raise ValueError("reset_voltage must be above the reference voltage")
        self.photodiode.reset_voltage = float(reset_voltage)

    def full_scale_time(self, min_photocurrent: float) -> float:
        """Integration time needed by the dimmest pixel of interest to fire."""
        check_positive("min_photocurrent", min_photocurrent)
        return float(self.voltage_swing * self.photodiode.capacitance / min_photocurrent)

    def adapt_to_range(
        self, min_photocurrent: float, conversion_time: float, *, margin: float = 0.9
    ) -> None:
        """Choose ``V_ref`` so the dimmest pixel of interest fires inside the window.

        This emulates the real-time adaptation loop the paper mentions: given
        the smallest photocurrent that must still be resolved and the length
        of the time-to-digital conversion window, place the threshold so that
        pixel fires at ``margin * conversion_time`` — near the end of the
        window but safely inside it, which spreads brighter pixels across the
        full code range.
        """
        check_positive("min_photocurrent", min_photocurrent)
        check_positive("conversion_time", conversion_time)
        check_in_range("margin", margin, 0.0, 1.0, inclusive=False)
        swing = margin * conversion_time * min_photocurrent / self.photodiode.capacitance
        swing = min(swing, self.photodiode.reset_voltage * 0.9)
        swing = max(swing, 1e-3)
        self.reference_voltage = self.photodiode.reset_voltage - swing

    # ------------------------------------------------------------ conversion
    def firing_times(
        self,
        photocurrent: np.ndarray,
        *,
        include_offset: bool = True,
        include_delay: bool = True,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Time (s) from reset to the ``V_1`` rising edge, per pixel.

        Entries are ``inf`` for pixels whose photocurrent cannot reach the
        threshold (zero current).
        """
        photocurrent = np.asarray(photocurrent, dtype=float)
        if include_offset and self.comparator.effective_offset_sigma() > 0.0:
            thresholds = self.comparator.effective_threshold(
                self.reference_voltage, photocurrent.shape, rng=rng
            )
            thresholds = np.clip(
                thresholds, 1e-6, self.photodiode.reset_voltage - 1e-6
            )
            swing = self.photodiode.reset_voltage - thresholds
        else:
            swing = np.full(photocurrent.shape, self.voltage_swing)
        rate = self.photodiode.discharge_rate(photocurrent)
        with np.errstate(divide="ignore"):
            times = np.where(rate > 0.0, swing / np.where(rate > 0.0, rate, 1.0), np.inf)
        if include_delay and self.comparator.delay > 0.0:
            finite = np.isfinite(times)
            delays = self.comparator.crossing_delay(photocurrent.shape, rng=rng)
            times = np.where(finite, times + delays, times)
        return times

    def ideal_firing_times(self, photocurrent: np.ndarray) -> np.ndarray:
        """Firing times with no offset, no delay — the ideal transfer curve."""
        return self.firing_times(photocurrent, include_offset=False, include_delay=False)

    def photocurrent_from_time(self, firing_time: np.ndarray) -> np.ndarray:
        """Invert the ideal transfer curve: recover photocurrent from a firing time."""
        firing_time = np.asarray(firing_time, dtype=float)
        if np.any(firing_time <= 0):
            raise ValueError("firing times must be positive")
        return self.voltage_swing * self.photodiode.capacitance / firing_time
