"""Tests for the bitstream and frame serialisation layer."""

import numpy as np
import pytest

from repro.io.bitstream import BitReader, BitWriter, pack_samples, unpack_samples
from repro.io.framing import (
    FRAME_MAGIC,
    BadMagicError,
    FrameHeader,
    FramingError,
    HeaderMismatchError,
    TruncatedPayloadError,
    UnsupportedVersionError,
    decode_frame,
    encode_frame,
    encoded_size_bits,
    frame_overhead_bits,
)
from repro.optics.photo import PhotoConversion
from repro.optics.scenes import make_scene
from repro.recon.pipeline import reconstruct_frame
from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressiveImager


class TestBitWriterReader:
    def test_round_trip_mixed_widths(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0xABCDE, 20)
        writer.write(1, 1)
        writer.write(255, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read(3) == 0b101
        assert reader.read(20) == 0xABCDE
        assert reader.read(1) == 1
        assert reader.read(8) == 255

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(256, 8)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(-1, 8)

    def test_bits_written_counter(self):
        writer = BitWriter()
        writer.write(3, 5)
        writer.write(1, 7)
        assert writer.n_bits_written == 12

    def test_reading_past_end_raises(self):
        writer = BitWriter()
        writer.write(1, 4)
        reader = BitReader(writer.getvalue())
        reader.read(8)  # padded byte is readable
        with pytest.raises(ValueError):
            reader.read(8)

    def test_bits_remaining(self):
        reader = BitReader(bytes([0xFF, 0x00]))
        assert reader.bits_remaining == 16
        reader.read(5)
        assert reader.bits_remaining == 11


class TestPackSamples:
    def test_round_trip_20_bit_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 1 << 20, size=137)
        packed = pack_samples(samples, 20)
        assert len(packed) == (137 * 20 + 7) // 8
        assert np.array_equal(unpack_samples(packed, 137, 20), samples)

    def test_packing_saves_space_vs_32_bit_words(self):
        samples = list(range(100))
        packed = pack_samples(samples, 20)
        assert len(packed) < 100 * 4

    def test_single_sample(self):
        packed = pack_samples([123456], 20)
        assert len(packed) == 3  # 20 bits padded to a byte boundary
        result = unpack_samples(packed, 1, 20)
        assert result.shape == (1,)
        assert result[0] == 123456

    def test_zero_samples(self):
        packed = pack_samples([], 20)
        assert packed == b""
        result = unpack_samples(packed, 0, 20)
        assert result.shape == (0,)
        assert result.dtype == np.int64

    def test_zero_samples_ignore_trailing_bytes(self):
        # A frame whose budget covered only the header still decodes cleanly.
        result = unpack_samples(b"\xaa\xbb", 0, 20)
        assert result.size == 0


class TestFrameHeader:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameHeader(rows=0, cols=64, pixel_bits=8, sample_bits=20,
                        rule_number=30, steps_per_sample=1, warmup_steps=0, n_samples=1)
        with pytest.raises(ValueError):
            FrameHeader(rows=64, cols=64, pixel_bits=8, sample_bits=20,
                        rule_number=300, steps_per_sample=1, warmup_steps=0, n_samples=1)


class TestFrameCodec:
    @pytest.fixture
    def frame(self):
        config = SensorConfig(rows=32, cols=32)
        imager = CompressiveImager(config, seed=21)
        scene = make_scene("blobs", (32, 32), seed=6)
        conversion = PhotoConversion(prnu_sigma=0.0, shot_noise=False)
        return imager.capture(conversion.convert(scene), n_samples=300)

    def test_round_trip_preserves_samples_and_seed(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert np.array_equal(decoded.samples, frame.samples)
        assert np.array_equal(decoded.seed_state, frame.seed_state)
        assert decoded.rule_number == frame.rule_number
        assert decoded.steps_per_sample == frame.steps_per_sample
        assert decoded.warmup_steps == frame.warmup_steps
        assert (decoded.config.rows, decoded.config.cols) == (32, 32)

    def test_decoded_frame_reconstructs_identically(self, frame):
        decoded = decode_frame(encode_frame(frame))
        original = reconstruct_frame(frame, max_iterations=60)
        received = reconstruct_frame(decoded, reference=frame.digital_image, max_iterations=60)
        assert np.allclose(original.image, received.image)

    def test_payload_size_matches_prediction(self, frame):
        encoded = encode_frame(frame)
        assert len(encoded) * 8 == encoded_size_bits(frame.config, frame.n_samples)

    def test_magic_is_checked(self, frame):
        data = bytearray(encode_frame(frame))
        data[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_frame(bytes(data))
        assert data[0] != FRAME_MAGIC

    def test_version_is_checked(self, frame):
        data = bytearray(encode_frame(frame))
        data[1] = 99
        with pytest.raises(ValueError, match="version"):
            decode_frame(bytes(data))

    def test_measurement_matrix_recoverable_after_transport(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert np.array_equal(decoded.measurement_matrix(), frame.measurement_matrix())


def _small_frame(**metadata):
    from repro.sensor.imager import CompressedFrame

    return CompressedFrame(
        samples=np.array([5, 0, 1023, 77], dtype=np.int64),
        seed_state=np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8),
        rule_number=30,
        steps_per_sample=1,
        warmup_steps=2,
        config=SensorConfig(rows=4, cols=4, pixel_bits=6),
        metadata=dict(metadata),
    )


class TestV1Compatibility:
    """The v1 byte layout is frozen; old streams decode unchanged."""

    #: encode_frame() output for ``_small_frame()`` as of the v1 codec.
    GOLDEN_V1_HEX = "c5010040043143c020400000964001400ffc4d"

    def test_v1_encoding_is_byte_stable(self):
        assert encode_frame(_small_frame()).hex() == self.GOLDEN_V1_HEX

    def test_golden_v1_bytes_decode(self):
        decoded = decode_frame(bytes.fromhex(self.GOLDEN_V1_HEX))
        assert np.array_equal(decoded.samples, [5, 0, 1023, 77])
        assert np.array_equal(decoded.seed_state, [1, 0, 1, 1, 0, 0, 1, 0])
        assert decoded.rule_number == 30
        assert decoded.warmup_steps == 2
        assert decoded.metadata["decoded_from_bytes"] == 19

    def test_v1_never_carries_stats(self):
        decoded = decode_frame(encode_frame(_small_frame(n_lost_events=3)))
        assert "n_lost_events" not in decoded.metadata


class TestV2Frames:
    def test_round_trip_with_statistics(self):
        frame = _small_frame(
            fidelity="event",
            event_statistics="exact",
            dtype="float64",
            n_lost_events=3,
            n_queued_events=12,
            n_lsb_errors=1,
            max_queue_delay=2.5e-9,
            lsb_error_probability=0.0625,
            n_saturated_pixels=0,
        )
        decoded = decode_frame(encode_frame(frame, version=2))
        for key, value in frame.metadata.items():
            assert decoded.metadata[key] == value
            assert type(decoded.metadata[key]) is type(value)
        assert np.array_equal(decoded.samples, frame.samples)
        assert np.array_equal(decoded.seed_state, frame.seed_state)

    def test_modelled_float_statistics_survive_exactly(self):
        frame = _small_frame(
            fidelity="behavioural",
            event_statistics="modelled",
            n_queued_events=17.31250001,
        )
        decoded = decode_frame(encode_frame(frame, version=2))
        assert decoded.metadata["n_queued_events"] == 17.31250001
        assert isinstance(decoded.metadata["n_queued_events"], float)

    def test_stats_can_be_omitted(self):
        frame = _small_frame(n_lost_events=3)
        decoded = decode_frame(encode_frame(frame, version=2, include_stats=False))
        assert "n_lost_events" not in decoded.metadata

    def test_seedless_round_trip(self):
        frame = _small_frame()
        data = encode_frame(frame, version=2, include_seed=False)
        assert len(data) < len(encode_frame(frame, version=2))
        decoded = decode_frame(data, seed_state=frame.seed_state)
        assert np.array_equal(decoded.seed_state, frame.seed_state)
        assert np.array_equal(decoded.samples, frame.samples)

    def test_seedless_without_chain_is_rejected(self):
        data = encode_frame(_small_frame(), version=2, include_seed=False)
        with pytest.raises(HeaderMismatchError, match="seed"):
            decode_frame(data)

    def test_seedless_with_wrong_chain_length_is_rejected(self):
        data = encode_frame(_small_frame(), version=2, include_seed=False)
        with pytest.raises(HeaderMismatchError, match="bits"):
            decode_frame(data, seed_state=np.zeros(5, dtype=np.uint8))

    def test_v1_cannot_drop_the_seed(self):
        with pytest.raises(ValueError, match="seed"):
            encode_frame(_small_frame(), version=1, include_seed=False)

    def test_unknown_encode_version_rejected(self):
        with pytest.raises(UnsupportedVersionError):
            encode_frame(_small_frame(), version=3)

    def test_overhead_bound_is_sound(self):
        frame = _small_frame(
            fidelity="event",
            event_statistics="exact",
            dtype="float64",
            n_lost_events=3,
            n_queued_events=12,
            n_lsb_errors=1,
            max_queue_delay=2.5e-9,
            lsb_error_probability=0.0625,
            n_saturated_pixels=0,
        )
        for version in (1, 2):
            encoded = encode_frame(frame, version=version)
            overhead = frame_overhead_bits(frame.config, version=version)
            sample_bits = frame.n_samples * frame.config.compressed_sample_bits
            assert len(encoded) * 8 <= overhead + sample_bits


class TestTypedDecodeErrors:
    def test_empty_and_tiny_payloads(self):
        for data in (b"", b"\xc5", b"\xc5\x01"):
            with pytest.raises(TruncatedPayloadError):
                decode_frame(data)

    def test_bad_magic_is_typed(self):
        data = bytearray(encode_frame(_small_frame()))
        data[0] = 0x00
        with pytest.raises(BadMagicError, match="magic"):
            decode_frame(bytes(data))

    def test_unknown_version_is_typed(self):
        data = bytearray(encode_frame(_small_frame()))
        data[1] = 99
        with pytest.raises(UnsupportedVersionError, match="version"):
            decode_frame(bytes(data))

    @pytest.mark.parametrize("version", [1, 2])
    def test_every_truncation_point_is_detected(self, version):
        frame = _small_frame(fidelity="event", n_lost_events=3)
        data = encode_frame(frame, version=version)
        for cut in range(2, len(data)):
            with pytest.raises(TruncatedPayloadError):
                decode_frame(data[:cut])

    def test_corrupt_header_fields_are_typed(self):
        # Zero the rows/cols bits: the header decodes to impossible geometry.
        frame = _small_frame()
        data = bytearray(encode_frame(frame))
        data[2] = 0
        data[3] = 0
        data[4] = 0
        with pytest.raises(FramingError):
            decode_frame(bytes(data))

    def test_header_config_mismatch_is_typed(self):
        data = encode_frame(_small_frame())
        with pytest.raises(HeaderMismatchError, match="rows"):
            decode_frame(data, expected_config=SensorConfig(rows=8, cols=4, pixel_bits=6))
        with pytest.raises(HeaderMismatchError, match="pixel_bits"):
            decode_frame(data, expected_config=SensorConfig(rows=4, cols=4, pixel_bits=8))

    def test_matching_expected_config_passes(self):
        data = encode_frame(_small_frame())
        decoded = decode_frame(
            data, expected_config=SensorConfig(rows=4, cols=4, pixel_bits=6)
        )
        assert np.array_equal(decoded.samples, [5, 0, 1023, 77])

    def test_typed_errors_are_value_errors(self):
        # Callers that predate the typed hierarchy keep working.
        for error in (
            TruncatedPayloadError,
            BadMagicError,
            UnsupportedVersionError,
            HeaderMismatchError,
        ):
            assert issubclass(error, FramingError)
            assert issubclass(error, ValueError)
