"""Property-based tests for the cellular-automaton substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ca.automaton import ElementaryCellularAutomaton
from repro.ca.rule30 import Rule30Register, rule30_next_state
from repro.ca.rules import RuleTable
from repro.ca.selection import CASelectionGenerator

seed_bits = st.lists(st.integers(0, 1), min_size=6, max_size=40).filter(lambda bits: any(bits))


@given(
    rule=st.integers(0, 255),
    left=st.integers(0, 1),
    center=st.integers(0, 1),
    right=st.integers(0, 1),
)
def test_rule_table_output_is_binary(rule, left, center, right):
    assert RuleTable(rule).next_state(left, center, right) in (0, 1)


@given(left=st.integers(0, 1), center=st.integers(0, 1), right=st.integers(0, 1))
def test_gate_level_rule30_matches_wolfram_code(left, center, right):
    assert rule30_next_state(left, center, right) == RuleTable(30).next_state(left, center, right)


@settings(max_examples=30, deadline=None)
@given(bits=seed_bits, rule=st.sampled_from([30, 90, 110, 150]), steps=st.integers(1, 30))
def test_automaton_is_deterministic(bits, rule, steps):
    """Two automata with the same seed always agree — the channel-sync property."""
    a = ElementaryCellularAutomaton(len(bits), rule, seed_state=bits)
    b = ElementaryCellularAutomaton(len(bits), rule, seed_state=bits)
    assert np.array_equal(a.step(steps), b.step(steps))


@settings(max_examples=30, deadline=None)
@given(bits=seed_bits, steps=st.integers(1, 20))
def test_state_stays_binary_and_size_constant(bits, steps):
    automaton = ElementaryCellularAutomaton(len(bits), 30, seed_state=bits)
    state = automaton.step(steps)
    assert state.shape == (len(bits),)
    assert set(np.unique(state)).issubset({0, 1})


@settings(max_examples=20, deadline=None)
@given(
    bits=st.lists(st.integers(0, 1), min_size=6, max_size=24).filter(lambda b: any(b)),
    steps=st.integers(1, 12),
)
def test_gate_level_register_matches_engine(bits, steps):
    """The Fig. 3 ring of cells and the vectorised engine are the same machine."""
    register = Rule30Register(seed_state=bits)
    automaton = ElementaryCellularAutomaton(len(bits), 30, seed_state=bits)
    register.clock(steps)
    automaton.step(steps)
    assert np.array_equal(register.state, automaton.state)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(4, 12),
    cols=st.integers(4, 12),
    n_samples=st.integers(1, 12),
    seed=st.integers(0, 10_000),
)
def test_selection_matrix_rebuildable_from_seed(rows, cols, n_samples, seed):
    """Φ is a pure function of (seed, parameters): sensor and receiver always agree."""
    sensor_side = CASelectionGenerator(rows, cols, seed=seed, warmup_steps=3)
    receiver_side = CASelectionGenerator(
        rows, cols, seed_state=sensor_side.seed_state, warmup_steps=3
    )
    assert np.array_equal(
        sensor_side.measurement_matrix(n_samples), receiver_side.measurement_matrix(n_samples)
    )


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(4, 12), cols=st.integers(4, 12), seed=st.integers(0, 10_000))
def test_selection_mask_is_xor_of_signals(rows, cols, seed):
    generator = CASelectionGenerator(rows, cols, seed=seed)
    pattern = generator.next_pattern()
    for i in range(rows):
        for j in range(cols):
            assert pattern.mask[i, j] == pattern.row_signals[i] ^ pattern.col_signals[j]
