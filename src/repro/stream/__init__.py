"""Live streaming of compressive captures: node → wire → receiver.

The paper's motivating scenario — an autonomous camera node delivering
images "over a network under a restricted data rate" by shipping compressed
samples plus only the CA seed — implemented as a working service on top of
the capture engines:

* :mod:`repro.stream.protocol` — the chunked wire protocol (v2 frames with
  capture statistics, seed-once GOPs, incremental chunk parsing);
* :mod:`repro.stream.transport` — bounded loopback and TCP byte transports,
  both exerting real backpressure on the sender;
* :mod:`repro.stream.node` — :class:`CameraNode`, the asyncio capture-and-
  send loop with its bits-per-frame :class:`BitrateGovernor`;
* :mod:`repro.stream.receiver` — :class:`StreamReceiver`, decoding chunks as
  they arrive and reconstructing incrementally (per tile, per frame),
  byte-identical to the in-process reconstruction pipeline.
"""

from repro.stream.node import (
    BitrateGovernor,
    CameraNode,
    ChannelBudgetError,
    StreamStats,
)
from repro.stream.protocol import (
    Chunk,
    ChunkDecoder,
    ChunkType,
    FrameData,
    StreamHeader,
    StreamProtocolError,
    advance_seed_state,
    encode_chunk,
)
from repro.stream.receiver import (
    ReceivedFrame,
    StreamReceiver,
    StreamResult,
    receive_stream,
)
from repro.stream.transport import (
    LoopbackTransport,
    TcpTransport,
    TransportClosedError,
    connect_tcp,
    serve_tcp,
)

__all__ = [
    "CameraNode",
    "BitrateGovernor",
    "ChannelBudgetError",
    "StreamStats",
    "StreamReceiver",
    "StreamResult",
    "ReceivedFrame",
    "receive_stream",
    "LoopbackTransport",
    "TcpTransport",
    "TransportClosedError",
    "connect_tcp",
    "serve_tcp",
    "Chunk",
    "ChunkType",
    "ChunkDecoder",
    "FrameData",
    "StreamHeader",
    "StreamProtocolError",
    "advance_seed_state",
    "encode_chunk",
]
