"""Sharded tiled-sensor capture: a mosaic of focal-plane arrays as one sensor.

The paper's prototype is a single 64x64 chip; scaling the architecture to
large scenes means scaling *out*, not up — an array of small compressive
sensors observing adjacent fields of view, each generating its compressed
samples concurrently at the focal plane, exactly the parallel one-shot
acquisition architecture of Björklund & Magli (PAPERS.md).  This module
models that system level:

* :class:`TiledSensorArray` splits a large scene into a grid of independent
  :class:`~repro.sensor.imager.CompressiveImager` tiles.  Each tile is its
  own chip: its own free-running selection CA with its own seed (derived from
  the array seed and the tile's grid position), its own exposure adaptation,
  its own compressed-sample stream.  Edge tiles shrink to fit scenes that are
  not multiples of the tile size, the way a mosaic camera crops its border
  chips.
* Tiles capture **concurrently** through a :mod:`concurrent.futures`
  executor (``executor="thread" | "process" | "serial"``, ``max_workers``
  configurable).  Every tile capture runs on a *copy* of the tile imager
  (so nothing mutates the array's state, whichever process captured it) and
  :meth:`CompressiveImager.capture` re-derives its noise streams from the
  imager seed — the captured samples are therefore byte-identical whichever
  executor runs them, and independent of capture history.  The executor is
  purely a wall-clock knob, and the tiled-capture benchmarks gate that
  ``max_workers > 1`` actually pays.
* The per-tile frames merge into one :class:`TiledCaptureResult`: the
  concatenated sample vector, the per-tile :class:`CompressedFrame` grid and
  the **summed** event statistics (``n_lost_events``, ``n_queued_events``,
  ``n_lsb_errors``, ``max_queue_delay`` as a maximum), which the
  reconstruction pipeline (:func:`repro.recon.pipeline.reconstruct_tiled`)
  reassembles tile-by-tile into the full frame — mirroring the block-CS
  reassembly of :mod:`repro.cs.block`, but with every block backed by real
  sensor hardware state instead of a shared synthetic matrix.

Per-tile invariants are exactly the single-sensor invariants: each tile's Φ
comes from the one shared builder (shared-Φ invariant) and each tile's
default-dtype behavioural capture stays byte-identical to the legacy loop
(bit-fidelity invariant).  The ``dtype="float32"`` fast mode of
:meth:`CompressiveImager.capture` composes with sharding for very large
scenes; see :data:`repro.sensor.imager.FLOAT32_SAMPLE_ATOL` for its accuracy
contract.
"""

from __future__ import annotations

import concurrent.futures
import copy
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sensor.config import SensorConfig
from repro.sensor.imager import CompressedFrame, CompressiveImager
from repro.utils.rng import derive_seed
from repro.utils.validation import check_choice, check_in_range, check_positive

EXECUTOR_KINDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class TileSlot:
    """Geometry of one tile: grid position and scene-pixel footprint.

    Attributes
    ----------
    grid_row, grid_col:
        Position of the tile in the sensor mosaic.
    row0, col0:
        Scene coordinates of the tile's top-left pixel.
    rows, cols:
        Tile dimensions; edge tiles may be smaller than the nominal tile
        shape when the scene is not divisible by it.
    """

    grid_row: int
    grid_col: int
    row0: int
    col0: int
    rows: int
    cols: int

    @property
    def row_slice(self) -> slice:
        """Scene-row slice covered by this tile."""
        return slice(self.row0, self.row0 + self.rows)

    @property
    def col_slice(self) -> slice:
        """Scene-column slice covered by this tile."""
        return slice(self.col0, self.col0 + self.cols)

    @property
    def n_pixels(self) -> int:
        """Pixels in this tile."""
        return self.rows * self.cols


@dataclass
class TiledCaptureResult:
    """The merged output of one tiled capture.

    Attributes
    ----------
    tiles:
        Row-major grid of per-tile :class:`CompressedFrame` objects.
    slots:
        The matching grid of :class:`TileSlot` geometry.
    scene_shape, tile_shape:
        Full scene dimensions and the nominal (non-edge) tile dimensions.
    metadata:
        Aggregated capture statistics: the per-tile event statistics summed
        (``max_queue_delay`` taken as the maximum), plus the capture options
        (``fidelity``, ``dtype``, ``executor``, ``max_workers``).
    """

    tiles: List[List[CompressedFrame]]
    slots: List[List[TileSlot]]
    scene_shape: Tuple[int, int]
    tile_shape: Tuple[int, int]
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------- geometry
    @property
    def grid_shape(self) -> Tuple[int, int]:
        """Tiles per scene edge, ``(grid_rows, grid_cols)``."""
        return (len(self.tiles), len(self.tiles[0]) if self.tiles else 0)

    @property
    def n_tiles(self) -> int:
        """Total number of tiles in the mosaic."""
        grid_rows, grid_cols = self.grid_shape
        return grid_rows * grid_cols

    @property
    def n_pixels(self) -> int:
        """Pixels in the full scene."""
        return self.scene_shape[0] * self.scene_shape[1]

    def frames(self) -> Iterator[Tuple[TileSlot, CompressedFrame]]:
        """Yield ``(slot, frame)`` pairs in row-major grid order."""
        for slot_row, tile_row in zip(self.slots, self.tiles):
            yield from zip(slot_row, tile_row)

    # -------------------------------------------------------------- payload
    @property
    def n_samples(self) -> int:
        """Total compressed samples over all tiles."""
        return sum(frame.n_samples for _, frame in self.frames())

    @property
    def samples(self) -> np.ndarray:
        """All compressed samples, concatenated in row-major tile order."""
        return np.concatenate([frame.samples for _, frame in self.frames()])

    @property
    def compression_ratio(self) -> float:
        """Delivered samples divided by scene pixels."""
        return self.n_samples / self.n_pixels

    @property
    def compressed_bits(self) -> int:
        """Total payload bits over all tile streams."""
        return sum(frame.compressed_bits for _, frame in self.frames())

    def digital_image(self) -> np.ndarray:
        """Stitch the per-tile ideal code images into the full scene.

        Requires the capture to have kept the digital images
        (``keep_digital_image=True``).
        """
        image = np.zeros(self.scene_shape, dtype=np.int64)
        for slot, frame in self.frames():
            if frame.digital_image is None:
                raise ValueError(
                    "tile digital images were not kept; capture with "
                    "keep_digital_image=True to stitch the ideal code image"
                )
            image[slot.row_slice, slot.col_slice] = frame.digital_image
        return image


def merge_tile_statistics(frames: List[CompressedFrame]) -> Dict[str, object]:
    """Aggregate per-tile capture statistics into mosaic-level counts.

    Counters (``n_lost_events``, ``n_queued_events``, ``n_lsb_errors``,
    ``n_saturated_pixels``) sum across tiles — behavioural tiles contribute
    modelled float expectations, event tiles exact integers, so the sums
    keep the per-tile numeric type discipline.  ``max_queue_delay`` is the
    maximum over tiles, and ``event_statistics`` stays ``"exact"`` only when
    every tile reported exact counts.
    """
    merged: Dict[str, object] = {}
    for key in ("n_lost_events", "n_queued_events", "n_lsb_errors", "n_saturated_pixels"):
        values = [frame.metadata[key] for frame in frames if key in frame.metadata]
        if values:
            total = sum(values)
            merged[key] = float(total) if isinstance(total, float) else int(total)
    delays = [
        frame.metadata["max_queue_delay"]
        for frame in frames
        if "max_queue_delay" in frame.metadata
    ]
    if delays:
        merged["max_queue_delay"] = float(max(delays))
    statistics = {frame.metadata.get("event_statistics") for frame in frames}
    merged["event_statistics"] = "exact" if statistics == {"exact"} else "modelled"
    return merged


def _capture_tile(job) -> CompressedFrame:
    """Capture one tile; module-level so process executors can pickle it.

    The chip is captured on a *copy*, so the parent's imagers are never
    mutated (auto-expose adapts the copy's ``V_ref`` only).  This is what
    makes tile captures stateless and the executors interchangeable: a
    process worker discards its copy just like the parent discards its own,
    so the samples cannot depend on which executor — or which previous
    capture — ran.
    """
    imager, photocurrent, kwargs = job
    return copy.deepcopy(imager).capture(photocurrent, **kwargs)


class TiledSensorArray:
    """A grid of independent compressive imagers covering one large scene.

    Parameters
    ----------
    scene_shape : tuple of int
        Full scene dimensions ``(rows, cols)``.
    tile_shape : tuple of int
        Nominal per-chip array size (default the paper's 64x64).  Edge tiles
        shrink when the scene is not divisible by the tile shape.
    config : SensorConfig, optional
        Template for the non-geometry chip parameters (clock, bit depths,
        frame rate, ...); each tile's configuration is this template with
        ``rows``/``cols`` replaced by the tile footprint.
    compression_ratio : float, optional
        Samples-per-pixel budget applied to every tile (each tile delivers
        ``round(ratio * tile_pixels)`` samples, so edge tiles automatically
        deliver proportionally fewer).  Defaults to the template's ratio.
    rule, steps_per_sample, warmup_steps:
        Selection-CA parameters shared by all tiles; each tile still draws
        its *own* CA seed, as independent chips would.
    executor : {"thread", "process", "serial"}
        How tile captures run: a thread pool (default — the capture hot path
        is numpy/BLAS work that releases the GIL), a process pool, or inline.
        The samples are byte-identical across all three.
    max_workers : int, optional
        Concurrency cap for the pool executors; ``None`` lets
        :mod:`concurrent.futures` pick, and the pool is never wider than the
        tile count.
    dtype : {"float64", "float32"}
        Default behavioural arithmetic width for :meth:`capture`; see
        :meth:`CompressiveImager.capture`.
    seed : int
        Array-level seed; tile ``(i, j)`` derives its chip seed as
        ``derive_seed(seed, "tile", i, j)``, giving every tile an
        independent, reproducible CA seed and noise stream.
    """

    def __init__(
        self,
        scene_shape: Tuple[int, int] = (256, 256),
        *,
        tile_shape: Tuple[int, int] = (64, 64),
        config: Optional[SensorConfig] = None,
        compression_ratio: Optional[float] = None,
        rule: int = 30,
        steps_per_sample: int = 1,
        warmup_steps: int = 8,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        dtype: str = "float64",
        seed: int = 2018,
    ) -> None:
        scene_rows, scene_cols = (int(scene_shape[0]), int(scene_shape[1]))
        tile_rows, tile_cols = (int(tile_shape[0]), int(tile_shape[1]))
        check_positive("scene rows", scene_rows)
        check_positive("scene cols", scene_cols)
        check_positive("tile rows", tile_rows)
        check_positive("tile cols", tile_cols)
        check_choice("executor", executor, EXECUTOR_KINDS)
        check_choice("dtype", dtype, ("float64", "float32"))
        if max_workers is not None:
            check_positive("max_workers", max_workers)
        template = config or SensorConfig()
        if compression_ratio is None:
            compression_ratio = template.compression_ratio
        check_in_range(
            "compression_ratio", compression_ratio, 0.0, 1.0, inclusive=False
        )
        self.scene_shape = (scene_rows, scene_cols)
        self.tile_shape = (min(tile_rows, scene_rows), min(tile_cols, scene_cols))
        self.compression_ratio = float(compression_ratio)
        self.executor = executor
        self.max_workers = max_workers
        self.dtype = dtype
        self.seed = int(seed)

        self.slots: List[List[TileSlot]] = []
        self.imagers: List[List[CompressiveImager]] = []
        nominal_rows, nominal_cols = self.tile_shape
        for grid_row, row0 in enumerate(range(0, scene_rows, nominal_rows)):
            slot_row: List[TileSlot] = []
            imager_row: List[CompressiveImager] = []
            for grid_col, col0 in enumerate(range(0, scene_cols, nominal_cols)):
                slot = TileSlot(
                    grid_row=grid_row,
                    grid_col=grid_col,
                    row0=row0,
                    col0=col0,
                    rows=min(nominal_rows, scene_rows - row0),
                    cols=min(nominal_cols, scene_cols - col0),
                )
                tile_config = replace(
                    template,
                    rows=slot.rows,
                    cols=slot.cols,
                    compression_ratio=self.compression_ratio,
                )
                imager_row.append(
                    CompressiveImager(
                        tile_config,
                        rule=rule,
                        steps_per_sample=steps_per_sample,
                        warmup_steps=warmup_steps,
                        seed=derive_seed(self.seed, "tile", grid_row, grid_col),
                    )
                )
                slot_row.append(slot)
            self.slots.append(slot_row)
            self.imagers.append(imager_row)

    # ------------------------------------------------------------- geometry
    @property
    def grid_shape(self) -> Tuple[int, int]:
        """Tiles per scene edge, ``(grid_rows, grid_cols)``."""
        return (len(self.slots), len(self.slots[0]))

    @property
    def n_tiles(self) -> int:
        """Total number of tiles in the mosaic."""
        grid_rows, grid_cols = self.grid_shape
        return grid_rows * grid_cols

    def samples_per_tile(self, slot: TileSlot) -> int:
        """Compressed-sample budget of one tile (``round(R x tile pixels)``)."""
        return max(1, int(round(self.compression_ratio * slot.n_pixels)))

    # -------------------------------------------------------------- capture
    def capture(
        self,
        photocurrent: np.ndarray,
        *,
        fidelity: str = "behavioural",
        auto_expose: bool = True,
        lsb_error: bool = True,
        keep_digital_image: bool = True,
        dtype: Optional[str] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> TiledCaptureResult:
        """Capture the whole scene, one concurrent frame per tile.

        Parameters
        ----------
        photocurrent : numpy.ndarray
            Full-scene photocurrent map (A), shape ``scene_shape``.
        fidelity : {"behavioural", "event"}
            Per-tile capture engine, as in :meth:`CompressiveImager.capture`.
        auto_expose : bool
            Per-tile ``V_ref`` adaptation (each chip exposes its own field of
            view, as independent hardware would).  Tiles whose field of view
            carries no light are captured without adaptation instead of
            failing the mosaic.
        lsb_error, keep_digital_image : bool
            As in :meth:`CompressiveImager.capture`, applied per tile.
        dtype : {"float64", "float32"}, optional
            Behavioural arithmetic width; defaults to the array's ``dtype``.
        executor, max_workers:
            Per-call override of the array's executor configuration.

        Returns
        -------
        TiledCaptureResult
            The per-tile frame grid plus merged samples and summed event
            statistics.
        """
        executor = executor or self.executor
        check_choice("executor", executor, EXECUTOR_KINDS)
        dtype = dtype or self.dtype
        photocurrent = np.asarray(photocurrent, dtype=float)
        if photocurrent.shape != self.scene_shape:
            raise ValueError(
                f"photocurrent must have shape {self.scene_shape}, "
                f"got {photocurrent.shape}"
            )
        jobs = []
        for slot_row, imager_row in zip(self.slots, self.imagers):
            for slot, imager in zip(slot_row, imager_row):
                tile_current = photocurrent[slot.row_slice, slot.col_slice]
                kwargs = dict(
                    n_samples=self.samples_per_tile(slot),
                    fidelity=fidelity,
                    # A fully dark tile cannot adapt its reference ramp; the
                    # chip falls back to its configured exposure.
                    auto_expose=auto_expose and bool((tile_current > 0.0).any()),
                    lsb_error=lsb_error,
                    keep_digital_image=keep_digital_image,
                    dtype=dtype,
                )
                jobs.append((imager, tile_current, kwargs))
        frames = self._run_jobs(jobs, executor, max_workers or self.max_workers)

        grid_rows, grid_cols = self.grid_shape
        tile_grid = [
            frames[row * grid_cols : (row + 1) * grid_cols] for row in range(grid_rows)
        ]
        metadata = merge_tile_statistics(frames)
        metadata.update(
            fidelity=fidelity,
            dtype=dtype,
            executor=executor,
            max_workers=max_workers or self.max_workers,
            n_tiles=self.n_tiles,
        )
        return TiledCaptureResult(
            tiles=tile_grid,
            slots=self.slots,
            scene_shape=self.scene_shape,
            tile_shape=self.tile_shape,
            metadata=metadata,
        )

    def capture_scene(
        self,
        scene: np.ndarray,
        *,
        conversion=None,
        **kwargs,
    ) -> TiledCaptureResult:
        """Convert a normalised scene to photocurrents and capture it.

        One :class:`~repro.optics.photo.PhotoConversion` spans the whole
        scene, so fixed-pattern noise varies across the mosaic the way it
        would across a wafer of chips.
        """
        from repro.optics.photo import PhotoConversion

        conversion = conversion or PhotoConversion(
            seed=derive_seed(self.seed, "tiled-photo")
        )
        return self.capture(
            conversion.convert(np.asarray(scene, dtype=float)), **kwargs
        )

    @staticmethod
    def _run_jobs(jobs, executor: str, max_workers: Optional[int]):
        """Run the per-tile capture jobs through the chosen executor."""
        if executor == "serial" or len(jobs) <= 1:
            return [_capture_tile(job) for job in jobs]
        if max_workers is not None:
            max_workers = min(int(max_workers), len(jobs))
        pool_class = (
            concurrent.futures.ThreadPoolExecutor
            if executor == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        with pool_class(max_workers=max_workers) as pool:
            return list(pool.map(_capture_tile, jobs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grid_rows, grid_cols = self.grid_shape
        return (
            f"TiledSensorArray(scene={self.scene_shape}, tiles={grid_rows}x{grid_cols}, "
            f"tile_shape={self.tile_shape}, executor={self.executor!r})"
        )
