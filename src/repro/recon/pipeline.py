"""End-to-end reconstruction pipeline.

``reconstruct_frame`` is the receiver: it takes a
:class:`~repro.sensor.imager.CompressedFrame` (compressed samples + CA seed),
rebuilds Φ, centres the measurements (the DC of the image is estimated from
the sample mean, since every sample selects ≈ half the pixels), runs a sparse
solver in the chosen dictionary and returns the reconstructed code image.
``reconstruct_samples`` is the matrix-level variant used by the pure-algorithm
benchmarks where Φ is given explicitly (Gaussian, Bernoulli, LFSR baselines).

Φ is rebuilt through :func:`repro.recon.operator.measurement_matrix_from_seed`,
which delegates to the one batched builder shared with the sensor's capture
path (:func:`repro.ca.selection.ca_measurement_matrix`) — the receiver is
guaranteed to invert exactly the matrix the sensor sampled with.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field

import numpy as np

from repro.cs.dictionaries import make_dictionary
from repro.cs.metrics import psnr, reconstruction_snr
from repro.cs.operators import BaseSensingOperator, SensingOperator, StepSizeCache
from repro.cs.solvers import SolverResult, cosamp, fista, iht, ista, omp
from repro.recon.operator import frame_operator, normalize_sample_mask
from repro.sensor.imager import CompressedFrame
from repro.sensor.shard import TiledCaptureResult
from repro.utils.validation import check_choice

_SOLVERS = {
    "fista": fista,
    "ista": ista,
    "omp": omp,
    "cosamp": cosamp,
    "iht": iht,
}

#: Per-solver iteration budgets used when the caller passes
#: ``max_iterations=None``: the proximal solvers and IHT get the image-scale
#: budget, CoSaMP keeps its classic small default (each CoSaMP iteration is
#: a full least-squares solve, so 30 is already generous), and OMP is driven
#: by its sparsity target.  An explicit ``max_iterations`` is honoured
#: verbatim by every solver — it is never silently clamped.
_DEFAULT_MAX_ITERATIONS = {
    "fista": 200,
    "ista": 200,
    "iht": 200,
    "cosamp": 30,
}

#: Solvers the batched multi-tile engine can stack (proximal-gradient family).
BATCHABLE_SOLVERS = ("fista", "ista")


@dataclass
class ReconstructionResult:
    """A reconstructed image plus the solver diagnostics that produced it.

    Attributes
    ----------
    image:
        The reconstructed image (code domain for sensor frames).
    solver_result:
        The underlying :class:`~repro.cs.solvers.SolverResult`.
    dictionary:
        Name of the sparsifying dictionary used.
    solver:
        Name of the solver used.
    metrics:
        Optional quality metrics against a reference image (filled when a
        reference is supplied).
    capture_metadata:
        The sensor-side capture statistics of the reconstructed frame
        (fidelity, lost/queued events, LSB errors — exact counts from the
        event-accurate engine, modelled expectations from the behavioural
        one, distinguished by the ``event_statistics`` key).  Empty for the
        matrix-level :func:`reconstruct_samples` path, where no frame exists.
    """

    image: np.ndarray
    solver_result: SolverResult
    dictionary: str
    solver: str
    metrics: dict[str, float]
    capture_metadata: dict[str, object] = field(default_factory=dict)


def _solve(
    operator: BaseSensingOperator,
    measurements: np.ndarray,
    *,
    solver: str,
    regularization: float,
    sparsity: int | None,
    max_iterations: int | None,
) -> SolverResult:
    check_choice("solver", solver, tuple(_SOLVERS))
    if max_iterations is None:
        max_iterations = _DEFAULT_MAX_ITERATIONS.get(solver)
    if solver in ("fista", "ista"):
        return _SOLVERS[solver](
            operator,
            measurements,
            regularization=regularization,
            max_iterations=max_iterations,
        )
    if sparsity is None:
        sparsity = max(1, operator.n_samples // 8)
    if solver == "iht":
        return iht(operator, measurements, sparsity=int(sparsity), max_iterations=max_iterations)
    if solver == "cosamp":
        return cosamp(
            operator, measurements, sparsity=int(sparsity), max_iterations=max_iterations
        )
    return omp(operator, measurements, sparsity=int(sparsity))


def reconstruct_samples(
    phi: np.ndarray,
    samples: np.ndarray,
    image_shape: tuple[int, int],
    *,
    dictionary: str = "dct",
    solver: str = "fista",
    regularization: float | None = None,
    sparsity: int | None = None,
    max_iterations: int | None = None,
    center: bool = True,
    reference: np.ndarray | None = None,
) -> ReconstructionResult:
    """Reconstruct an image from explicit measurements ``y = Φ x``.

    When ``center`` is true and Φ is a 0/1 selection matrix, the measurements
    are centred using the matrix density and the image DC estimated from the
    sample mean — the same normalisation the sensor pipeline uses.  The
    default l1 weight is scaled to the centred measurement magnitude, which
    works across pixel depths without tuning.

    Parameters
    ----------
    phi : numpy.ndarray
        Measurement matrix, shape ``(n_samples, n_pixels)``, any real dtype.
    samples : numpy.ndarray
        Measurements ``y``, shape ``(n_samples,)``.
    image_shape : tuple of int
        ``(rows, cols)`` of the image to recover.
    dictionary : str
        Sparsifying dictionary name (see :func:`repro.cs.dictionaries.make_dictionary`).
    solver : {"fista", "ista", "omp", "cosamp", "iht"}
        Sparse-recovery solver; greedy solvers use ``sparsity``.
    regularization : float, optional
        l1 weight for FISTA/ISTA; auto-scaled when omitted.
    sparsity : int, optional
        Sparsity target for the greedy solvers; defaults to
        ``n_samples // 8``.
    max_iterations : int, optional
        Iteration budget; per-solver defaults when omitted (200 for the
        proximal solvers and IHT, 30 for CoSaMP).  An explicit value is
        honoured verbatim by every solver.
    center : bool
        Apply the selection-matrix DC centring described above.
    reference : numpy.ndarray, optional
        Ground truth; when given, PSNR/SNR metrics are attached.

    Returns
    -------
    ReconstructionResult
        The recovered ``(rows, cols)`` float image plus solver diagnostics.
    """
    phi = np.asarray(phi, dtype=float)
    samples = np.asarray(samples, dtype=float).reshape(-1)
    psi = make_dictionary(dictionary, image_shape)
    density = float(phi.mean())
    dc_estimate = 0.0
    pixel_mean = 0.0
    if center and 0.0 < density < 1.0 and np.all((phi == 0.0) | (phi == 1.0)):
        dc_estimate = float(samples.mean() / density)
        pixel_mean = dc_estimate / phi.shape[1]
        phi = phi - density
        # Remove both the matrix DC and the image DC from the measurements and
        # solve only for the AC part of the image; reconstructing the large DC
        # coefficient through the solver would dominate its iteration budget.
        samples = samples - density * dc_estimate - phi @ np.full(phi.shape[1], pixel_mean)
    if regularization is None:
        regularization = 0.02 * float(np.abs(samples).max() + 1.0)
    operator = SensingOperator(phi, psi)
    result = _solve(
        operator,
        samples,
        solver=solver,
        regularization=regularization,
        sparsity=sparsity,
        max_iterations=max_iterations,
    )
    image = operator.coefficients_to_image(result.coefficients)
    if dc_estimate:
        image = image + pixel_mean
    metrics: dict[str, float] = {}
    if reference is not None:
        reference = np.asarray(reference, dtype=float)
        metrics = {
            "psnr_db": psnr(reference, image),
            "snr_db": reconstruction_snr(reference, image),
        }
    return ReconstructionResult(
        image=image,
        solver_result=result,
        dictionary=dictionary,
        solver=solver,
        metrics=metrics,
    )


def reconstruct_frame(
    frame: CompressedFrame,
    *,
    dictionary: str = "dct",
    solver: str = "fista",
    regularization: float | None = None,
    sparsity: int | None = None,
    max_iterations: int | None = None,
    reference: np.ndarray | None = None,
    operator: str = "structured",
    step_cache: StepSizeCache | None = None,
    sample_mask: np.ndarray | None = None,
) -> ReconstructionResult:
    """Reconstruct the code image of a captured :class:`CompressedFrame`.

    Parameters
    ----------
    frame:
        The sensor output (samples + CA seed + configuration).
    dictionary, solver:
        Sparsifying dictionary and solver names.
    regularization:
        FISTA/ISTA l1 weight.  Defaults to a value scaled to the code range
        and the measurement count, which works well across the synthetic
        scenes.
    max_iterations:
        Iteration budget; per-solver defaults when omitted (200 proximal /
        IHT, 30 CoSaMP), and an explicit value is honoured verbatim.
    reference:
        Optional ground-truth code image (e.g. ``frame.digital_image``); when
        given, PSNR/SNR metrics are attached to the result.
    operator : {"structured", "dense"}
        Operator flavour (see :func:`repro.recon.operator.frame_operator`):
        the matrix-free rank-structured fast path by default, the dense
        executable reference on request.
    step_cache:
        Optional :class:`~repro.cs.operators.StepSizeCache` shared across
        calls so the power-iteration step size is memoised and warm-started
        along a video/GOP chain.
    sample_mask:
        Optional boolean survival mask over the frame's samples (the lossy
        streaming path): only the masked samples and the matching rows of Φ
        enter the solve.  Dropped chunks are dropped rows of Φ — CS recovers
        from the surviving subset; an all-true mask is byte-identical to no
        mask at all.

    Returns
    -------
    ReconstructionResult
        The recovered code-domain image (shape ``(rows, cols)``, float),
        solver diagnostics, quality metrics when a reference is available,
        and the sensor-side ``capture_metadata`` carried over from the
        frame.
    """
    mask = normalize_sample_mask(sample_mask, frame.n_samples)
    sensing, density = frame_operator(
        frame,
        dictionary=dictionary,
        center=True,
        operator=operator,
        step_cache=step_cache,
        sample_mask=mask,
    )
    samples = frame.samples.astype(float)
    if mask is not None:
        samples = samples[mask]
    # Every sample selects ~half the pixels, so the sample mean estimates the
    # image DC: E[y] = density * sum(x).  The DC is handled outside the solver
    # (see reconstruct_samples): the solver only recovers the AC image.
    dc_estimate = float(samples.mean() / density) if density > 0 else 0.0
    pixel_mean = dc_estimate / frame.config.n_pixels
    centered = samples - density * dc_estimate
    centered = centered - sensing.phi_dot(np.full(frame.config.n_pixels, pixel_mean))
    if regularization is None:
        # Scale with the measurement magnitude so one default fits 8..12 bit codes.
        regularization = 0.02 * float(np.abs(centered).max() + 1.0)
    result = _solve(
        sensing,
        centered,
        solver=solver,
        regularization=regularization,
        sparsity=sparsity,
        max_iterations=max_iterations,
    )
    image = sensing.coefficients_to_image(result.coefficients)
    image = image + pixel_mean
    if reference is None and frame.digital_image is not None:
        reference = frame.digital_image
    metrics: dict[str, float] = {}
    if reference is not None:
        reference = np.asarray(reference, dtype=float)
        metrics = {
            "psnr_db": psnr(reference, image),
            "snr_db": reconstruction_snr(reference, image),
        }
    # Carry the sensor-side capture statistics (lost/queued events, LSB
    # errors, fidelity) alongside the reconstruction so receivers can weigh
    # the result — e.g. down-rank frames whose event-accurate capture
    # reported deadline losses.
    return ReconstructionResult(
        image=image,
        solver_result=result,
        dictionary=dictionary,
        solver=solver,
        metrics=metrics,
        capture_metadata=dict(frame.metadata),
    )


@dataclass
class TiledReconstructionResult:
    """A full scene reassembled from per-tile reconstructions.

    Attributes
    ----------
    image:
        The stitched code-domain image, shape ``scene_shape``.
    tile_results:
        Row-major grid of the per-tile :class:`ReconstructionResult` objects
        (each with its own solver diagnostics).
    dictionary, solver:
        Names of the sparsifying dictionary and solver used on every tile.
    metrics:
        Scene-level quality metrics against a reference image (filled when a
        reference is supplied or the capture kept its digital images).
    capture_metadata:
        The merged mosaic-level capture statistics of the
        :class:`~repro.sensor.shard.TiledCaptureResult` being reconstructed.
    """

    image: np.ndarray
    tile_results: list[list[ReconstructionResult]]
    dictionary: str
    solver: str
    metrics: dict[str, float]
    capture_metadata: dict[str, object] = field(default_factory=dict)


def reconstruct_tiled(
    capture: TiledCaptureResult,
    *,
    dictionary: str = "dct",
    solver: str = "fista",
    regularization: float | None = None,
    sparsity: int | None = None,
    max_iterations: int | None = None,
    reference: np.ndarray | None = None,
    executor: str = "batched",
    max_workers: int | None = None,
    operator: str = "structured",
    step_cache: StepSizeCache | None = None,
) -> TiledReconstructionResult:
    """Reconstruct a :class:`~repro.sensor.shard.TiledCaptureResult` scene.

    Every tile is an independent compressed frame carrying its own CA seed,
    so the receiver reconstructs the mosaic tile-by-tile — each through the
    one shared Φ builder — and stitches the tile images back at their scene
    offsets, mirroring the block-CS reassembly of
    :class:`repro.cs.block.BlockCompressiveSampler` with per-tile hardware
    matrices instead of one shared synthetic matrix.

    Parameters
    ----------
    capture : TiledCaptureResult
        The merged tiled capture to invert.
    dictionary, solver, regularization, sparsity, max_iterations:
        Per-tile reconstruction options, as in :func:`reconstruct_frame`.
    reference : numpy.ndarray, optional
        Ground-truth code image of the whole scene; when omitted, the
        stitched per-tile digital images are used if the capture kept them.
    executor : {"batched", "serial", "thread"}
        ``"batched"`` (default) stacks the rank-structured factors of every
        equal-shape tile and iterates all of them through one einsum-driven
        FISTA/ISTA pass (solvers outside that family, or the dense operator
        flavour, fall back to the per-tile loop inside the same call).
        ``"serial"`` / ``"thread"`` run the classic per-tile solves inline
        or on a thread pool.
    max_workers : int, optional
        Thread-pool width; ``None`` lets :mod:`concurrent.futures` pick.
    operator : {"structured", "dense"}
        Operator flavour for the per-tile solves, as in
        :func:`reconstruct_frame`.
    step_cache:
        Optional :class:`~repro.cs.operators.StepSizeCache` shared across
        frames of a video so per-tile step sizes are memoised and
        warm-started along the GOP chain.

    Returns
    -------
    TiledReconstructionResult
        The stitched scene, the per-tile solver results and scene-level
        PSNR/SNR metrics when a reference is available.

    Notes
    -----
    The per-tile solves and the stitching are delegated to
    :class:`repro.recon.incremental.IncrementalTiledReconstructor` — the same
    accumulator the streaming receiver feeds tile chunks into — so in-process
    and streamed reconstructions are one code path and stay byte-identical
    (the streaming receiver defaults to the same batched barrier solve).
    """
    from repro.recon.incremental import IncrementalTiledReconstructor

    check_choice("executor", executor, ("batched", "serial", "thread"))
    reconstructor = IncrementalTiledReconstructor(
        capture.scene_shape,
        capture.tile_shape,
        dictionary=dictionary,
        solver=solver,
        regularization=regularization,
        sparsity=sparsity,
        max_iterations=max_iterations,
        operator=operator,
        step_cache=step_cache,
    )
    pairs = list(capture.frames())
    if executor == "batched":
        for slot, frame in pairs:
            reconstructor.stage_tile(slot.grid_row, slot.grid_col, frame)
        reconstructor.solve_staged()
    elif executor == "thread" and len(pairs) > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            flat_results = list(
                pool.map(reconstructor.solve_tile, [frame for _, frame in pairs])
            )
        for (slot, frame), result in zip(pairs, flat_results):
            reconstructor.insert_result(slot.grid_row, slot.grid_col, frame, result)
    else:
        for slot, frame in pairs:
            reconstructor.add_tile(slot.grid_row, slot.grid_col, frame)
    return reconstructor.result(
        reference=reference, capture_metadata=dict(capture.metadata)
    )
