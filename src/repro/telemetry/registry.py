"""A dependency-free metrics registry: counters, gauges, histograms.

Design constraints, in order:

* **stdlib only** — the registry must be importable (and scrape-able) in any
  environment the library runs in, including the invariant linter's
  zero-dependency CI job;
* **deterministic** — no clocks, no threads of its own; every number in a
  snapshot is either pushed by instrumented code or pulled by a registered
  collector at :meth:`MetricsRegistry.collect` time (the pull path is how
  the pre-existing ``HubStats``/``SessionStats`` counters migrated onto the
  registry without adding a single instruction to their hot paths);
* **thread-safe where it must be** — solver spans observe histograms from
  executor threads, so every instrument guards its state with a lock;
* **renderer round-trip** — one typed :class:`MetricsSnapshot` renders to
  both the Prometheus text exposition and JSON, and both parse back
  losslessly (pinned by the telemetry suite).

Histograms use **fixed bucket boundaries** chosen at creation: observation
is O(#buckets) with zero allocation, snapshots are mergeable across
processes, and the quantile estimate (:meth:`Histogram.quantile`) is the
standard piecewise-linear interpolation over the cumulative counts —
property-tested against ``numpy.percentile`` to within one bucket width.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.telemetry.stats import percentile, quantile_summary

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "parse_prometheus",
]

#: Prometheus-style latency boundaries (seconds): sub-millisecond frames up
#: to ten-second mosaics, roughly geometric so relative error stays bounded.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

Labels = tuple[tuple[str, str], ...]


def _normalize_labels(labels: Mapping[str, object] | None) -> Labels:
    if not labels:
        return ()
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


class _Instrument:
    """State shared by every instrument: identity, help text, a lock."""

    kind = "untyped"

    def __init__(self, name: str, labels: Labels, help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, frames)."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Pin the absolute total — the *collector* path.

        Collectors own a counter outright (they re-derive the total from an
        authoritative source such as ``SessionStats`` at every collect), so
        unlike :meth:`inc` this overwrites.  Totals still cannot be negative.
        """
        if value < 0:
            raise ValueError(f"counter totals must be >= 0, got {value}")
        with self._lock:
            self._value = float(value)


class Gauge(_Instrument):
    """A value that can go up and down (active streams, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram(_Instrument):
    """Fixed-boundary histogram: O(#buckets) observe, mergeable snapshots.

    ``bounds`` are the *upper* bucket edges, strictly increasing and finite;
    an implicit ``+Inf`` bucket catches everything past the last edge.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Sequence[float],
        labels: Labels = (),
        help: str = "",
    ) -> None:
        super().__init__(name, labels, help)
        edges = tuple(float(bound) for bound in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(not math.isfinite(edge) for edge in edges):
            raise ValueError("bucket boundaries must be finite (+Inf is implicit)")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket boundaries must be strictly increasing: {edges}")
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; the last entry is ``+Inf``."""
        return tuple(self._counts)

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, float(value))
        with self._lock:
            self._counts[index] += 1
            self._sum += float(value)
            self._count += 1

    def rebuild(self, values: Iterable[float]) -> None:
        """Reset and re-observe — the collector path for migrated series."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
        for value in values:
            self.observe(value)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) from the bucket counts.

        Piecewise-linear interpolation inside the bucket that holds the
        target rank (the classic Prometheus ``histogram_quantile`` rule);
        the estimate is exact to within the width of that bucket.  The open
        ``+Inf`` bucket clamps to the last finite edge.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            raise ValueError("quantile of an empty histogram")
        rank = (q / 100.0) * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = 0.0 if index == 0 else self.bounds[index - 1]
                upper = self.bounds[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]


# ------------------------------------------------------------------ snapshots
@dataclass(frozen=True)
class MetricSample:
    """One metric family member, frozen at collect time.

    ``value`` is set for counters and gauges; the bucket fields, ``sum`` and
    ``count`` for histograms.
    """

    name: str
    kind: str
    labels: Labels = ()
    help: str = ""
    value: float | None = None
    bucket_bounds: tuple[float, ...] | None = None
    bucket_counts: tuple[int, ...] | None = None
    sum: float | None = None
    count: int | None = None

    def label(self, key: str) -> str | None:
        for name, value in self.labels:
            if name == key:
                return value
        return None


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _labels_text(labels: Labels) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class MetricsSnapshot:
    """A typed, immutable picture of every registered instrument.

    The object :meth:`MetricsRegistry.collect` (and thus
    ``ReceiverHub.metrics()``) returns: look values up with :meth:`value`,
    ship them with :meth:`render_prometheus` / :meth:`to_json`, and get them
    back with :meth:`from_json` — both renderings round-trip losslessly.
    """

    samples: tuple[MetricSample, ...] = ()

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.samples)

    def get(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> MetricSample | None:
        """The sample called ``name`` with exactly ``labels`` (or ``None``)."""
        wanted = _normalize_labels(labels)
        for sample in self.samples:
            if sample.name == name and sample.labels == wanted:
                return sample
        return None

    def value(self, name: str, labels: Mapping[str, object] | None = None) -> float:
        """Counter/gauge value (histograms: use :meth:`get`); raises if absent."""
        sample = self.get(name, labels)
        if sample is None:
            raise KeyError(f"no metric {name!r} with labels {dict(labels or {})}")
        if sample.value is None:
            raise KeyError(f"{name!r} is a {sample.kind}; it has no scalar value")
        return sample.value

    # ------------------------------------------------------------- renderers
    def render_prometheus(self) -> str:
        """The Prometheus text exposition (version 0.0.4) of every sample."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for sample in self.samples:
            if sample.name not in seen_headers:
                seen_headers.add(sample.name)
                if sample.help:
                    lines.append(f"# HELP {sample.name} {_escape(sample.help)}")
                lines.append(f"# TYPE {sample.name} {sample.kind}")
            if sample.kind == "histogram":
                assert sample.bucket_bounds is not None
                assert sample.bucket_counts is not None
                cumulative = 0
                edges = [*sample.bucket_bounds, math.inf]
                for edge, bucket_count in zip(edges, sample.bucket_counts):
                    cumulative += bucket_count
                    bucket_labels = (*sample.labels, ("le", _format_number(edge)))
                    lines.append(
                        f"{sample.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                labels_text = _labels_text(sample.labels)
                lines.append(
                    f"{sample.name}_sum{labels_text} {_format_number(sample.sum or 0.0)}"
                )
                lines.append(f"{sample.name}_count{labels_text} {cumulative}")
            else:
                assert sample.value is not None
                lines.append(
                    f"{sample.name}{_labels_text(sample.labels)} "
                    f"{_format_number(sample.value)}"
                )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict[str, object]:
        """The JSON-ready form (also what :meth:`to_json` serialises)."""
        metrics: list[dict[str, object]] = []
        for sample in self.samples:
            entry: dict[str, object] = {
                "name": sample.name,
                "kind": sample.kind,
                "labels": dict(sample.labels),
                "help": sample.help,
            }
            if sample.kind == "histogram":
                entry["bucket_bounds"] = list(sample.bucket_bounds or ())
                entry["bucket_counts"] = list(sample.bucket_counts or ())
                entry["sum"] = sample.sum
                entry["count"] = sample.count
            else:
                entry["value"] = sample.value
            metrics.append(entry)
        return {"metrics": metrics}

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> MetricsSnapshot:
        """Rebuild a snapshot from :meth:`to_json` output (lossless)."""
        payload = json.loads(text)
        samples = []
        for entry in payload["metrics"]:
            labels = _normalize_labels(entry.get("labels") or {})
            if entry["kind"] == "histogram":
                samples.append(
                    MetricSample(
                        name=entry["name"],
                        kind="histogram",
                        labels=labels,
                        help=entry.get("help", ""),
                        bucket_bounds=tuple(entry["bucket_bounds"]),
                        bucket_counts=tuple(entry["bucket_counts"]),
                        sum=entry["sum"],
                        count=entry["count"],
                    )
                )
            else:
                samples.append(
                    MetricSample(
                        name=entry["name"],
                        kind=entry["kind"],
                        labels=labels,
                        help=entry.get("help", ""),
                        value=entry["value"],
                    )
                )
        return cls(samples=tuple(samples))


_SAMPLE_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict[tuple[str, Labels], float]:
    """Parse a text exposition back to ``{(name, labels): value}``.

    Covers the subset :meth:`MetricsSnapshot.render_prometheus` emits — what
    the round-trip tests and the scrape examples need; not a general parser.
    """
    values: dict[tuple[str, Labels], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels: list[tuple[str, str]] = []
        if match.group("labels"):
            for key, raw in _LABEL_PAIR_RE.findall(match.group("labels")):
                value = raw.replace('\\"', '"').replace("\\n", "\n")
                value = value.replace("\\\\", "\\")
                labels.append((key, value))
        raw_value = match.group("value")
        number = math.inf if raw_value == "+Inf" else float(raw_value)
        values[(match.group("name"), tuple(labels))] = number
    return values


# ------------------------------------------------------------------- registry
class MetricsRegistry:
    """Instrument factory + snapshot point for one process/pipeline.

    Instruments are get-or-create by ``(name, labels)``: asking twice
    returns the same object, asking with a different kind raises.  Pull-style
    *collectors* (:meth:`register_collector`) run at the top of every
    :meth:`collect`, which is how pre-existing stats structures export
    themselves with zero hot-path cost.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, Labels], _Instrument] = {}
        self._collectors: list[Callable[[], None]] = []

    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, object] | None,
        help: str,
        **kwargs: object,
    ) -> _Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _normalize_labels(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, labels=key[1], help=help, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(
        self,
        name: str,
        *,
        labels: Mapping[str, object] | None = None,
        help: str = "",
    ) -> Counter:
        instrument = self._get_or_create(Counter, name, labels, help)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self,
        name: str,
        *,
        labels: Mapping[str, object] | None = None,
        help: str = "",
    ) -> Gauge:
        instrument = self._get_or_create(Gauge, name, labels, help)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        *,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Mapping[str, object] | None = None,
        help: str = "",
    ) -> Histogram:
        instrument = self._get_or_create(Histogram, name, labels, help, bounds=bounds)
        assert isinstance(instrument, Histogram)
        if instrument.bounds != tuple(float(bound) for bound in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}"
            )
        return instrument

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` at the top of every :meth:`collect`.

        The pull seam: a collector reads an authoritative live structure
        (``HubStats``, a governor, a tracer) and writes the registry's
        instruments via ``set_total``/``set``/``rebuild``, so the source's
        hot path stays untouched.
        """
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> MetricsSnapshot:
        """Run the collectors, then freeze every instrument into a snapshot."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        samples = []
        with self._lock:
            instruments = sorted(
                self._instruments.values(), key=lambda i: (i.name, i.labels)
            )
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                samples.append(
                    MetricSample(
                        name=instrument.name,
                        kind="histogram",
                        labels=instrument.labels,
                        help=instrument.help,
                        bucket_bounds=instrument.bounds,
                        bucket_counts=instrument.bucket_counts,
                        sum=instrument.sum,
                        count=instrument.count,
                    )
                )
            else:
                assert isinstance(instrument, (Counter, Gauge))
                samples.append(
                    MetricSample(
                        name=instrument.name,
                        kind=instrument.kind,
                        labels=instrument.labels,
                        help=instrument.help,
                        value=instrument.value,
                    )
                )
        return MetricsSnapshot(samples=tuple(samples))


def latency_quantile_gauges(
    registry: MetricsRegistry,
    name: str,
    values: Sequence[float],
    *,
    help: str = "",
) -> None:
    """Export p50/p90/p99 of ``values`` as ``{quantile=...}`` gauges.

    The summary companion to a latency histogram: exact quantiles via
    :func:`repro.telemetry.stats.percentile` over the raw series (histogram
    quantiles are estimates; these are not).  No-op on an empty series.
    """
    if not values:
        return
    for key, value in quantile_summary(values).items():
        quantile = float(key[1:]) / 100.0
        registry.gauge(
            name, labels={"quantile": f"{quantile:g}"}, help=help
        ).set(value)
