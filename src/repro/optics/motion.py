"""Moving synthetic scenes for multi-frame (video) experiments.

The video sequencer needs temporally-coherent input: the same scene content
drifting, orbiting or changing brightness from frame to frame.  These
generators produce short sequences with controlled motion so the video
examples and tests can reason about frame-to-frame sample correlation.
"""

from __future__ import annotations


import numpy as np

from repro.optics.scenes import make_scene
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


def translate_scene(scene: np.ndarray, shift_rows: int, shift_cols: int) -> np.ndarray:
    """Cyclically shift a scene (wrap-around translation)."""
    scene = np.asarray(scene, dtype=float)
    return np.roll(np.roll(scene, int(shift_rows), axis=0), int(shift_cols), axis=1)


def drifting_sequence(
    kind: str,
    n_frames: int,
    shape: tuple[int, int] = (64, 64),
    *,
    velocity: tuple[int, int] = (1, 2),
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """A static scene translating by ``velocity`` pixels per frame."""
    check_positive("n_frames", n_frames)
    base = make_scene(kind, shape, seed=seed)
    return [
        translate_scene(base, frame * velocity[0], frame * velocity[1])
        for frame in range(int(n_frames))
    ]


def orbiting_blob_sequence(
    n_frames: int,
    shape: tuple[int, int] = (64, 64),
    *,
    radius_fraction: float = 0.3,
    blob_sigma_fraction: float = 0.08,
    background: float = 0.1,
) -> list[np.ndarray]:
    """A bright Gaussian blob orbiting the image centre — a fully analytic sequence."""
    check_positive("n_frames", n_frames)
    rows, cols = shape
    row_axis = np.arange(rows)[:, None]
    col_axis = np.arange(cols)[None, :]
    radius = radius_fraction * min(rows, cols)
    sigma = blob_sigma_fraction * min(rows, cols)
    frames = []
    for index in range(int(n_frames)):
        angle = 2.0 * np.pi * index / max(1, n_frames)
        center_row = rows / 2.0 + radius * np.sin(angle)
        center_col = cols / 2.0 + radius * np.cos(angle)
        blob = np.exp(
            -((row_axis - center_row) ** 2 + (col_axis - center_col) ** 2) / (2.0 * sigma ** 2)
        )
        frames.append(np.clip(background + (1.0 - background) * blob, 0.0, 1.0))
    return frames


def brightness_ramp_sequence(
    kind: str,
    n_frames: int,
    shape: tuple[int, int] = (64, 64),
    *,
    low: float = 0.2,
    high: float = 1.0,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """The same scene under a global illumination ramp (tests exposure adaptation)."""
    check_positive("n_frames", n_frames)
    if not 0.0 < low <= high <= 1.0:
        raise ValueError(f"need 0 < low <= high <= 1, got low={low}, high={high}")
    base = make_scene(kind, shape, seed=seed)
    levels = np.linspace(low, high, int(n_frames))
    return [np.clip(base * level, 0.0, 1.0) for level in levels]


def random_walk_sequence(
    kind: str,
    n_frames: int,
    shape: tuple[int, int] = (64, 64),
    *,
    step_sigma: float = 1.5,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """A scene performing a random walk (integer shifts drawn per frame)."""
    check_positive("n_frames", n_frames)
    check_positive("step_sigma", step_sigma)
    rng = new_rng(seed)
    base = make_scene(kind, shape, seed=seed)
    position = np.zeros(2)
    frames = []
    for _ in range(int(n_frames)):
        frames.append(translate_scene(base, int(round(position[0])), int(round(position[1]))))
        position += rng.normal(0.0, step_sigma, size=2)
    return frames
