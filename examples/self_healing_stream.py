"""Runnable demo: a camera node killed mid-GOP heals itself.

A small loopback fleet streams into one :class:`ReceiverHub` with the PR-10
session-durability layer armed.  One node's connection is scripted to die
mid-GOP — after its keyframe but before the dependent frames — and the demo
shows the full recovery arc:

1. **Park** — the hub sees the connection EOF mid-stream and, instead of
   salvaging a half video, parks the session state (seed chain, frame
   assemblies, sequence FSM) for a resume grace window.
2. **Reconnect** — the node's :class:`ReconnectSupervisor` dials a fresh
   connection (exponential backoff + jitter, all through the injectable
   telemetry clock) and announces itself with a ``SESSION_RESUME`` chunk.
3. **Replay** — the node re-sends its bounded retransmission buffer
   verbatim; the session dedups what already landed and reclaims exactly
   the chunk the cut swallowed.  The GOP seed chain never re-anchors, so
   the resumed stream decodes byte-identically to an unbroken one.

The recovery counters printed at the end come from ``hub.metrics()`` — the
same typed snapshot a Prometheus scrape of ``hub.serve_metrics()`` renders.

See docs/OPERATIONS.md ("Recovery knobs") for the operator's guide to the
grace windows and tests/stream/test_self_healing.py for the pinned
counter-for-counter semantics this demo prints.

Run:  python examples/self_healing_stream.py
"""

import asyncio

import numpy as np

from repro import (
    CameraNode,
    CompressiveImager,
    LoopbackTransport,
    ReceiverHub,
    SensorConfig,
    make_scene,
)
from repro.sensor.video import VideoSequencer
from repro.stream.fault import DisconnectingTransport
from repro.stream.node import ReconnectSupervisor
from repro.stream.transport import loopback_duplex_pair

N_NODES = 3
FAULTY_NODE = 2
N_FRAMES = 6
DISCONNECT_AFTER = 9  # send index: segment 2 of frame 1 — mid-GOP
CONFIG = SensorConfig(rows=16, cols=16)
SCENES = [make_scene("blobs", (16, 16), seed=index) for index in range(N_FRAMES)]


def make_sequencer(stream_id):
    return VideoSequencer(
        CompressiveImager(CONFIG, seed=stream_id),
        samples_per_frame=48,
        seed=stream_id,
    )


async def healthy_node(hub, stream_id):
    """An unfaulted fleet member over a plain loopback pipe."""
    transport = LoopbackTransport(max_buffered=8)
    node = CameraNode(transport, stream_id=stream_id, gop_size=4)
    send = asyncio.create_task(
        node.stream_video(make_sequencer(stream_id), SCENES)
    )
    await hub.attach(transport)
    await send
    return node


async def killed_node(hub, stream_id):
    """The faulty member: its wire dies mid-GOP, the supervisor heals it."""
    node_end, hub_end = loopback_duplex_pair(max_buffered=8)
    cutter = DisconnectingTransport(node_end, disconnect_after=DISCONNECT_AFTER)
    attach_tasks = [asyncio.create_task(hub.attach(hub_end))]

    async def connect():
        await attach_tasks[0]  # the dead connection parks before we redial
        new_node_end, new_hub_end = loopback_duplex_pair(max_buffered=8)
        attach_tasks.append(asyncio.create_task(hub.attach(new_hub_end)))
        return new_node_end

    node = CameraNode(
        cutter,
        stream_id=stream_id,
        gop_size=4,
        segments_per_frame=4,
        parity=True,
        retransmit_capacity=64,
        reconnect=ReconnectSupervisor(connect),
    )
    await node.stream_video(make_sequencer(stream_id), SCENES)
    await attach_tasks[-1]
    return node


async def run_fleet():
    hub = ReceiverHub(reconstruct=False, resilient=True, resume_grace=60.0)
    jobs = [
        killed_node(hub, stream_id)
        if stream_id == FAULTY_NODE
        else healthy_node(hub, stream_id)
        for stream_id in range(1, N_NODES + 1)
    ]
    nodes = await asyncio.gather(*jobs)
    await hub.drain()
    await hub.close()
    return hub, nodes[FAULTY_NODE - 1]


def main() -> None:
    print(
        f"Fleet of {N_NODES} nodes x {N_FRAMES} frames; node {FAULTY_NODE}'s "
        f"wire is cut at send #{DISCONNECT_AFTER} (mid-GOP)\n"
    )
    hub, faulty = asyncio.run(run_fleet())

    metrics = hub.metrics()
    print("recovery counters (from hub.metrics()):")
    for name in (
        "repro_hub_sessions_parked_total",
        "repro_hub_sessions_resumed_total",
        "repro_hub_session_resumes_total",
        "repro_hub_duplicate_chunks_total",
        "repro_hub_reordered_chunks_total",
        "repro_hub_lost_chunks_total",
        "repro_hub_streams_completed_total",
        "repro_hub_frames_total",
    ):
        print(f"  {name:<40} {metrics.value(name):.0f}")
    print("node-side ledger:")
    print(f"  reconnect attempts                       {faulty.reconnect.n_attempts}")
    print(f"  resumes announced                        {faulty.n_resumes}")
    print(f"  chunks replayed from the buffer          {faulty.n_resume_retransmits}")

    # The healed stream matches an isolated capture with the same seed,
    # bit for bit — the GOP seed chain survived the disconnect.
    healed = next(r for r in hub.completed if r.stream_id == FAULTY_NODE)
    direct = make_sequencer(FAULTY_NODE).capture_sequence(SCENES).frames
    bit_exact = all(
        np.array_equal(received.capture.samples, expected.samples)
        for received, expected in zip(healed.frames, direct)
    )
    assert healed.n_frames == N_FRAMES
    assert bit_exact
    print(
        f"\nstream {FAULTY_NODE} resumed and decoded bit-exactly "
        f"({healed.n_frames}/{N_FRAMES} frames): {bit_exact}"
    )


if __name__ == "__main__":
    main()
