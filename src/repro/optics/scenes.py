"""Synthetic test-scene generation.

Compressive-sampling reconstruction quality depends on how sparse the scene
is under the chosen dictionary, so the generator provides a spread of
sparsity regimes:

* ``gradient`` / ``bars`` / ``checkerboard`` — highly structured, very sparse
  in DCT; the easy end of the range.
* ``blobs`` / ``natural`` — piecewise-smooth and 1/f-spectrum scenes that
  mimic the statistics of natural images (the paper's motivating workload).
* ``points`` — a few bright point sources on a dark background; sparse in the
  pixel basis, the classic CS phantom.
* ``text`` — high-contrast glyph-like rectangles, an edge-dominated scene.

All scenes are returned normalised to ``[0, 1]`` relative irradiance.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.utils.images import normalize_image
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


def _gradient(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    rows, cols = shape
    angle = rng.uniform(0.0, 2.0 * np.pi)
    row_axis = np.linspace(-1.0, 1.0, rows)[:, None]
    col_axis = np.linspace(-1.0, 1.0, cols)[None, :]
    return normalize_image(np.cos(angle) * row_axis + np.sin(angle) * col_axis)


def _bars(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    rows, cols = shape
    period = int(rng.integers(4, max(5, cols // 4)))
    phase = float(rng.uniform(0.0, period))
    horizontal = bool(rng.integers(2))
    axis = np.arange(cols if horizontal else rows)
    stripe = ((axis + phase) // period % 2).astype(float)
    if horizontal:
        return np.tile(stripe, (rows, 1))
    return np.tile(stripe[:, None], (1, cols))


def _checkerboard(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    rows, cols = shape
    cell = int(rng.integers(2, max(3, min(rows, cols) // 4)))
    row_idx = (np.arange(rows) // cell)[:, None]
    col_idx = (np.arange(cols) // cell)[None, :]
    return ((row_idx + col_idx) % 2).astype(float)


def _blobs(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    rows, cols = shape
    n_blobs = int(rng.integers(3, 8))
    row_axis = np.arange(rows)[:, None]
    col_axis = np.arange(cols)[None, :]
    image = np.zeros(shape, dtype=float)
    for _ in range(n_blobs):
        center_row = rng.uniform(0, rows)
        center_col = rng.uniform(0, cols)
        sigma = rng.uniform(min(rows, cols) / 16.0, min(rows, cols) / 4.0)
        amplitude = rng.uniform(0.3, 1.0)
        image += amplitude * np.exp(
            -((row_axis - center_row) ** 2 + (col_axis - center_col) ** 2)
            / (2.0 * sigma ** 2)
        )
    return normalize_image(image)


def _natural(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """1/f-spectrum random field — the standard natural-image surrogate."""
    rows, cols = shape
    freq_rows = np.fft.fftfreq(rows)[:, None]
    freq_cols = np.fft.fftfreq(cols)[None, :]
    radius = np.sqrt(freq_rows ** 2 + freq_cols ** 2)
    radius[0, 0] = 1.0
    spectrum = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / radius
    spectrum[0, 0] = 0.0
    field = np.real(np.fft.ifft2(spectrum))
    return normalize_image(field)


def _points(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    rows, cols = shape
    n_points = int(rng.integers(5, 20))
    image = np.full(shape, 0.05, dtype=float)
    for _ in range(n_points):
        row = int(rng.integers(rows))
        col = int(rng.integers(cols))
        image[row, col] = rng.uniform(0.7, 1.0)
    return image


def _text(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    rows, cols = shape
    image = np.full(shape, 0.9, dtype=float)
    n_strokes = int(rng.integers(8, 20))
    for _ in range(n_strokes):
        top = int(rng.integers(0, max(1, rows - 4)))
        left = int(rng.integers(0, max(1, cols - 4)))
        height = int(rng.integers(1, 4))
        width = int(rng.integers(2, max(3, cols // 6)))
        if rng.integers(2):
            height, width = width, height
        image[top:top + height, left:left + width] = 0.1
    return image


_SCENE_BUILDERS: dict[str, Callable[[tuple[int, int], np.random.Generator], np.ndarray]] = {
    "gradient": _gradient,
    "bars": _bars,
    "checkerboard": _checkerboard,
    "blobs": _blobs,
    "natural": _natural,
    "points": _points,
    "text": _text,
}


def list_scenes() -> list[str]:
    """Names of the available synthetic scene kinds."""
    return sorted(_SCENE_BUILDERS)


def make_scene(
    kind: str,
    shape: tuple[int, int] = (64, 64),
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate one scene of the given ``kind`` normalised to ``[0, 1]``."""
    if kind not in _SCENE_BUILDERS:
        raise ValueError(f"unknown scene kind {kind!r}; choose from {list_scenes()}")
    rows, cols = shape
    check_positive("rows", rows)
    check_positive("cols", cols)
    rng = new_rng(seed)
    scene = _SCENE_BUILDERS[kind]((int(rows), int(cols)), rng)
    return np.clip(scene, 0.0, 1.0)


class SceneGenerator:
    """Reproducible stream of test scenes.

    Parameters
    ----------
    shape:
        Image dimensions (defaults to the chip's 64x64).
    kinds:
        Scene kinds to cycle through; defaults to all available kinds.
    seed:
        Base seed; scene ``i`` of kind ``k`` is a deterministic function of
        ``(seed, k, i)``.
    """

    def __init__(
        self,
        shape: tuple[int, int] = (64, 64),
        *,
        kinds: tuple[str, ...] = (),
        seed: int = 2018,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.kinds = tuple(kinds) if kinds else tuple(list_scenes())
        for kind in self.kinds:
            if kind not in _SCENE_BUILDERS:
                raise ValueError(f"unknown scene kind {kind!r}")
        self.seed = int(seed)

    def scene(self, index: int) -> np.ndarray:
        """Return scene ``index`` of the stream (deterministic)."""
        kind = self.kinds[index % len(self.kinds)]
        return make_scene(kind, self.shape, seed=self.seed * 1009 + index)

    def batch(self, n_scenes: int) -> np.ndarray:
        """Return the first ``n_scenes`` scenes stacked into one array."""
        check_positive("n_scenes", n_scenes)
        return np.stack([self.scene(i) for i in range(int(n_scenes))])
