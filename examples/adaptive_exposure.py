"""On-line adaptation of V_rst / V_ref to the illumination level.

Section II-A points out that both the reset voltage and the comparator
reference of the pixel "can be adjusted on-line in order to adapt to different
illumination conditions in real-time".  This example shows why that matters:
the same scene is captured under a 100x range of illumination levels, once
with a fixed reference voltage and once with the auto-exposure loop that
retunes the voltage swing to the scene, and the code histograms and
reconstruction quality are compared.

Run:  python examples/adaptive_exposure.py
"""

import numpy as np

from repro import CompressiveImager, SensorConfig, make_scene, psnr, reconstruct_frame
from repro.optics.photo import PhotoConversion


def capture(imager, photocurrent, auto_expose):
    frame = imager.capture(photocurrent, n_samples=500, auto_expose=auto_expose)
    codes = frame.digital_image
    result = reconstruct_frame(frame, max_iterations=120)
    return {
        "saturated": int(np.count_nonzero(codes >= imager.tdc.max_code)),
        "clipped_low": int(np.count_nonzero(codes == 0)),
        "code_span": int(codes.max() - codes.min()),
        "psnr_db": psnr(codes.astype(float), result.image),
    }


def main() -> None:
    config = SensorConfig(rows=32, cols=32)
    scene = make_scene("blobs", (32, 32), seed=9)

    print(
        f"{'illumination':>13} {'mode':>12} {'saturated':>10} {'code span':>10} {'PSNR (dB)':>10}"
    )
    for illumination in (0.05, 0.3, 1.0):
        conversion = PhotoConversion(
            full_scale_current=10e-9 * illumination,
            dark_current=1e-9 * illumination,
            prnu_sigma=0.0,
            shot_noise=False,
        )
        photocurrent = conversion.convert(scene)
        for auto_expose, label in ((False, "fixed V_ref"), (True, "adaptive")):
            imager = CompressiveImager(config, seed=3)
            if not auto_expose:
                # A reference tuned for full illumination, left untouched.
                imager.encoder.adapt_to_range(1e-9, config.conversion_time)
            stats = capture(imager, photocurrent, auto_expose)
            print(
                f"{illumination:>13.2f} {label:>12} {stats['saturated']:>10} "
                f"{stats['code_span']:>10} {stats['psnr_db']:>10.2f}"
            )

    print(
        "\nWith a fixed reference the dim scenes saturate at the maximum count "
        "(the pulses never arrive inside the conversion window) and quality "
        "collapses; re-tuning the swing keeps the codes inside the 8-bit range "
        "at every illumination level."
    )


if __name__ == "__main__":
    main()
