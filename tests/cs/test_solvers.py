"""Tests for the sparse-recovery solvers.

Each solver is exercised on synthetic exactly-sparse problems where the
ground truth is known, plus edge cases (zero measurements, bad arguments).
"""

import numpy as np
import pytest

from repro.cs.dictionaries import DCT2Dictionary
from repro.cs.matrices import gaussian_matrix
from repro.cs.operators import SensingOperator
from repro.cs.solvers import basis_pursuit, cosamp, fista, iht, ista, omp
from repro.cs.solvers.iterative import hard_threshold, soft_threshold


def sparse_problem(n_samples=40, n_coefficients=100, sparsity=5, seed=0, noise=0.0):
    """Random Gaussian A, exactly k-sparse x, y = A x (+ noise)."""
    rng = np.random.default_rng(seed)
    matrix = gaussian_matrix(n_samples, n_coefficients, seed=seed)
    coefficients = np.zeros(n_coefficients)
    support = rng.choice(n_coefficients, sparsity, replace=False)
    coefficients[support] = rng.standard_normal(sparsity) + np.sign(rng.standard_normal(sparsity))
    measurements = matrix @ coefficients
    if noise > 0:
        measurements = measurements + noise * rng.standard_normal(n_samples)
    return matrix, coefficients, measurements


class TestThresholdOperators:
    def test_soft_threshold_shrinks_towards_zero(self):
        values = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        assert soft_threshold(values, 1.0).tolist() == [-2.0, 0.0, 0.0, 0.0, 2.0]

    def test_soft_threshold_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold(np.zeros(3), -1.0)

    def test_hard_threshold_keeps_k_largest(self):
        values = np.array([5.0, -1.0, 3.0, 0.1])
        result = hard_threshold(values, 2)
        assert np.count_nonzero(result) == 2
        assert result[0] == 5.0 and result[2] == 3.0

    def test_hard_threshold_with_k_larger_than_size(self):
        values = np.array([1.0, 2.0])
        assert np.array_equal(hard_threshold(values, 10), values)


class TestOMP:
    def test_exact_recovery_of_sparse_signal(self):
        matrix, truth, measurements = sparse_problem(sparsity=5, seed=1)
        result = omp(matrix, measurements, sparsity=5)
        assert np.allclose(result.coefficients, truth, atol=1e-6)
        assert result.converged

    def test_recovers_support(self):
        matrix, truth, measurements = sparse_problem(sparsity=4, seed=2)
        result = omp(matrix, measurements, sparsity=4)
        assert set(np.nonzero(result.coefficients)[0]) == set(np.nonzero(truth)[0])

    def test_residual_decreases_monotonically(self):
        matrix, _, measurements = sparse_problem(sparsity=8, seed=3)
        result = omp(matrix, measurements, sparsity=8)
        assert all(b <= a + 1e-9 for a, b in zip(result.history, result.history[1:]))

    def test_sparsity_budget_respected(self):
        matrix, _, measurements = sparse_problem(sparsity=10, seed=4)
        result = omp(matrix, measurements, sparsity=3)
        assert result.sparsity <= 3

    def test_invalid_sparsity_rejected(self):
        matrix, _, measurements = sparse_problem(seed=5)
        with pytest.raises(ValueError):
            omp(matrix, measurements, sparsity=0)


class TestCoSaMP:
    def test_exact_recovery(self):
        matrix, truth, measurements = sparse_problem(n_samples=60, sparsity=6, seed=6)
        result = cosamp(matrix, measurements, sparsity=6)
        assert np.allclose(result.coefficients, truth, atol=1e-5)

    def test_solution_is_k_sparse(self):
        matrix, _, measurements = sparse_problem(n_samples=60, sparsity=6, seed=7)
        result = cosamp(matrix, measurements, sparsity=6)
        assert result.sparsity <= 6

    def test_noisy_recovery_close(self):
        matrix, truth, measurements = sparse_problem(n_samples=60, sparsity=4, seed=8, noise=0.01)
        result = cosamp(matrix, measurements, sparsity=4)
        assert np.linalg.norm(result.coefficients - truth) < 0.2


class TestIHT:
    def test_recovery_of_very_sparse_signal(self):
        matrix, truth, measurements = sparse_problem(n_samples=60, sparsity=3, seed=9)
        result = iht(matrix, measurements, sparsity=3, max_iterations=300)
        assert np.linalg.norm(result.coefficients - truth) < 1e-2

    def test_solution_is_k_sparse(self):
        matrix, _, measurements = sparse_problem(n_samples=50, sparsity=5, seed=10)
        result = iht(matrix, measurements, sparsity=5)
        assert result.sparsity <= 5


class TestISTAAndFISTA:
    def test_fista_recovers_sparse_signal_approximately(self):
        matrix, truth, measurements = sparse_problem(n_samples=50, sparsity=5, seed=11)
        result = fista(matrix, measurements, regularization=1e-3, max_iterations=500)
        assert np.linalg.norm(result.coefficients - truth) / np.linalg.norm(truth) < 0.05

    def test_fista_converges_faster_than_ista(self):
        matrix, _, measurements = sparse_problem(n_samples=50, sparsity=5, seed=12)
        slow = ista(matrix, measurements, regularization=1e-3, max_iterations=60)
        fast = fista(matrix, measurements, regularization=1e-3, max_iterations=60)
        assert fast.residual_norm <= slow.residual_norm + 1e-9

    def test_large_regularization_gives_zero_solution(self):
        matrix, _, measurements = sparse_problem(seed=13)
        huge = float(np.abs(matrix.T @ measurements).max() * 10)
        result = fista(matrix, measurements, regularization=huge, max_iterations=50)
        assert result.sparsity == 0

    def test_zero_measurements_give_zero_solution(self):
        matrix, _, _ = sparse_problem(seed=14)
        result = fista(matrix, np.zeros(matrix.shape[0]), regularization=0.1)
        assert np.allclose(result.coefficients, 0.0)

    def test_warm_start_initial_vector(self):
        matrix, truth, measurements = sparse_problem(n_samples=50, sparsity=5, seed=15)
        warm = fista(
            matrix, measurements, regularization=1e-3, max_iterations=10, initial=truth
        )
        assert np.linalg.norm(warm.coefficients - truth) < 0.1

    def test_wrong_initial_length_rejected(self):
        matrix, _, measurements = sparse_problem(seed=16)
        with pytest.raises(ValueError):
            fista(matrix, measurements, initial=np.zeros(3))

    def test_works_with_sensing_operator_and_dictionary(self):
        """FISTA through a Φ Ψ operator recovers a DCT-sparse image."""
        dictionary = DCT2Dictionary((8, 8))
        coefficients = np.zeros(64)
        coefficients[[0, 3, 17, 40]] = [8.0, 4.0, -3.0, 2.0]
        phi = gaussian_matrix(40, 64, seed=18)
        operator = SensingOperator(phi, dictionary)
        measurements = operator.matvec(coefficients)
        result = fista(operator, measurements, regularization=1e-3, max_iterations=400)
        # The l1 penalty leaves a small shrinkage bias on the large coefficients.
        assert np.linalg.norm(result.coefficients - coefficients) < 0.25
        assert set(np.argsort(np.abs(result.coefficients))[::-1][:4]) == {0, 3, 17, 40}


class TestBasisPursuit:
    def test_exact_recovery_noiseless(self):
        matrix, truth, measurements = sparse_problem(
            n_samples=40, n_coefficients=80, sparsity=5, seed=19
        )
        result = basis_pursuit(matrix, measurements)
        assert result.converged
        assert np.allclose(result.coefficients, truth, atol=1e-6)

    def test_noise_tolerance_variant(self):
        matrix, truth, measurements = sparse_problem(
            n_samples=40, n_coefficients=80, sparsity=4, seed=20, noise=0.01
        )
        result = basis_pursuit(matrix, measurements, noise_tolerance=0.05)
        assert result.converged
        assert np.linalg.norm(result.coefficients - truth) < 0.3

    def test_dimension_guard(self):
        matrix = gaussian_matrix(10, 100, seed=21)
        with pytest.raises(ValueError):
            basis_pursuit(matrix, np.zeros(10), max_dimension=50)

    def test_measurement_length_validated(self):
        matrix, _, _ = sparse_problem(seed=22)
        with pytest.raises(ValueError):
            basis_pursuit(matrix, np.zeros(3))
