"""Tests for the coherence / RIP-proxy analysis."""

import numpy as np
import pytest

from repro.cs.dictionaries import DCT2Dictionary
from repro.cs.matrices import bernoulli_matrix, ca_xor_matrix, center_matrix, gaussian_matrix
from repro.cs.rip import (
    babel_function,
    effective_rank,
    matrix_quality_report,
    mutual_coherence,
    restricted_isometry_estimate,
)


class TestMutualCoherence:
    def test_orthogonal_matrix_has_zero_coherence(self):
        assert mutual_coherence(np.eye(8)) == pytest.approx(0.0)

    def test_duplicate_columns_have_unit_coherence(self):
        column = np.random.default_rng(0).standard_normal((10, 1))
        matrix = np.hstack([column, column, np.random.default_rng(1).standard_normal((10, 3))])
        assert mutual_coherence(matrix) == pytest.approx(1.0)

    def test_gaussian_coherence_in_expected_range(self):
        phi = gaussian_matrix(64, 128, seed=2)
        coherence = mutual_coherence(phi)
        assert 0.1 < coherence < 0.7

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            mutual_coherence(np.zeros(5))


class TestBabelFunction:
    def test_monotone_nondecreasing(self):
        phi = gaussian_matrix(32, 64, seed=3)
        babel = babel_function(phi, max_order=8)
        assert np.all(np.diff(babel) >= -1e-12)

    def test_first_value_is_coherence(self):
        phi = gaussian_matrix(32, 64, seed=4)
        assert babel_function(phi, max_order=4)[0] == pytest.approx(mutual_coherence(phi))

    def test_orthogonal_matrix_babel_is_zero(self):
        assert np.allclose(babel_function(np.eye(16), max_order=4), 0.0)


class TestRipEstimate:
    def test_orthogonal_matrix_has_zero_delta(self):
        report = restricted_isometry_estimate(np.eye(32), sparsity=4, n_trials=50, seed=0)
        assert report["delta_estimate"] == pytest.approx(0.0, abs=1e-10)

    def test_gaussian_better_than_rank_deficient(self):
        phi_good = gaussian_matrix(64, 128, seed=5)
        # A rank-deficient matrix: every row identical.
        phi_bad = np.tile(phi_good[:1], (64, 1))
        good = restricted_isometry_estimate(phi_good, sparsity=6, n_trials=100, seed=1)
        bad = restricted_isometry_estimate(phi_bad, sparsity=6, n_trials=100, seed=1)
        assert good["delta_estimate"] < bad["delta_estimate"]

    def test_delta_grows_with_sparsity(self):
        phi = gaussian_matrix(40, 120, seed=6)
        small = restricted_isometry_estimate(phi, sparsity=2, n_trials=150, seed=2)
        large = restricted_isometry_estimate(phi, sparsity=20, n_trials=150, seed=2)
        assert large["delta_estimate"] >= small["delta_estimate"]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            restricted_isometry_estimate(np.eye(4), sparsity=0)


class TestEffectiveRank:
    def test_full_rank_identity(self):
        assert effective_rank(np.eye(16)) == 16

    def test_rank_one_matrix(self):
        matrix = np.outer(np.ones(8), np.ones(8))
        assert effective_rank(matrix) == 1

    def test_invalid_energy_rejected(self):
        with pytest.raises(ValueError):
            effective_rank(np.eye(4), energy=0.0)


class TestMatrixQualityReport:
    def test_report_fields(self):
        phi = bernoulli_matrix(40, 64, seed=7)
        report = matrix_quality_report(phi, sparsity=4, n_trials=30, seed=3)
        for key in ("mutual_coherence", "delta_estimate", "effective_rank", "row_mean"):
            assert key in report

    def test_centred_ca_matrix_comparable_to_bernoulli(self):
        """The paper's claim in spirit: CA-XOR selection behaves like a random matrix."""
        shape = (16, 16)
        n_samples = 96
        ca = center_matrix(ca_xor_matrix(n_samples, shape, seed=8, warmup_steps=8))
        bern = center_matrix(bernoulli_matrix(n_samples, 256, seed=9))
        dictionary = DCT2Dictionary(shape)
        ca_report = matrix_quality_report(
            ca, sparsity=8, n_trials=40, seed=4, dictionary=dictionary
        )
        bern_report = matrix_quality_report(
            bern, sparsity=8, n_trials=40, seed=4, dictionary=dictionary
        )
        # The CA-XOR matrix has structure (rank-2 masks), so allow a factor but
        # require the same order of magnitude of conditioning.
        assert ca_report["delta_estimate"] < 3.0 * bern_report["delta_estimate"] + 0.5
        assert ca_report["effective_rank"] > 0.5 * bern_report["effective_rank"]
