"""Tests for fixed-point / bit-manipulation helpers."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bit_width,
    bits_to_int,
    dequantize_from_bits,
    gray_decode,
    gray_encode,
    int_to_bits,
    log2_ceil,
    popcount,
    quantize_to_bits,
    required_accumulator_bits,
    saturate,
    wrap_unsigned,
)


class TestBitWidth:
    @pytest.mark.parametrize(
        "value,expected", [(0, 1), (1, 1), (2, 2), (255, 8), (256, 9), (1044480, 20)]
    )
    def test_known_widths(self, value, expected):
        assert bit_width(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_width(-1)


class TestSaturate:
    def test_within_range_unchanged(self):
        assert saturate(100, 8) == 100

    def test_clips_high(self):
        assert saturate(300, 8) == 255

    def test_clips_negative_to_zero(self):
        assert saturate(-5, 8) == 0

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            saturate(1, 0)


class TestWrapUnsigned:
    def test_wraps_like_counter_overflow(self):
        assert wrap_unsigned(256, 8) == 0
        assert wrap_unsigned(257, 8) == 1

    def test_no_wrap_in_range(self):
        assert wrap_unsigned(200, 8) == 200


class TestBitConversion:
    def test_round_trip(self):
        for value in (0, 1, 37, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_msb_first_ordering(self):
        assert int_to_bits(0b10000001, 8) == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestPopcount:
    def test_counts_ones(self):
        assert popcount(np.array([1, 0, 1, 1])) == 3

    def test_empty_is_zero(self):
        assert popcount(np.array([])) == 0


class TestRequiredAccumulatorBits:
    def test_paper_eq1_full_frame(self):
        """Eq. (1): 64x64 pixels of 8 bits need a 20-bit compressed sample."""
        assert required_accumulator_bits(64 * 64, 8) == 20

    def test_paper_eq1_single_column(self):
        """One column of 64 8-bit codes needs 14 bits."""
        assert required_accumulator_bits(64, 8) == 14

    def test_single_value_needs_value_bits(self):
        assert required_accumulator_bits(1, 8) == 8


class TestGrayCode:
    @pytest.mark.parametrize("value", list(range(0, 64, 7)) + [255])
    def test_round_trip(self, value):
        assert gray_decode(gray_encode(value)) == value

    def test_adjacent_codes_differ_by_one_bit(self):
        for value in range(63):
            diff = gray_encode(value) ^ gray_encode(value + 1)
            assert bin(diff).count("1") == 1


class TestQuantization:
    def test_full_scale_maps_to_max_code(self):
        codes = quantize_to_bits(np.array([0.0, 0.5, 1.0]), 8, 1.0)
        assert codes.tolist() == [0, 128, 255]

    def test_values_above_full_scale_clip(self):
        assert quantize_to_bits(np.array([2.0]), 8, 1.0)[0] == 255

    def test_round_trip_error_bounded_by_half_lsb(self):
        values = np.linspace(0, 1, 100)
        codes = quantize_to_bits(values, 8, 1.0)
        recovered = dequantize_from_bits(codes, 8, 1.0)
        assert np.max(np.abs(values - recovered)) <= 0.5 / 255 + 1e-12


class TestLog2Ceil:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (3, 2), (4096, 12), (4097, 13)])
    def test_known_values(self, value, expected):
        assert log2_ceil(value) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_ceil(0)
