"""Tests for elementary CA rule tables — including Table I of the paper."""

import numpy as np
import pytest

from repro.ca.rules import (
    NEIGHBORHOOD_ORDER,
    PAPER_TABLE_I,
    RULE_30,
    RULE_90,
    RULE_110,
    RuleTable,
)


class TestRuleTableBasics:
    def test_rejects_out_of_range_rule_numbers(self):
        with pytest.raises(ValueError):
            RuleTable(256)
        with pytest.raises(ValueError):
            RuleTable(-1)

    def test_next_state_rejects_non_binary_inputs(self):
        with pytest.raises(ValueError):
            RULE_30.next_state(2, 0, 0)

    def test_rule_zero_always_outputs_zero(self):
        rule = RuleTable(0)
        for left, center, right in NEIGHBORHOOD_ORDER:
            assert rule.next_state(left, center, right) == 0

    def test_rule_255_always_outputs_one(self):
        rule = RuleTable(255)
        for left, center, right in NEIGHBORHOOD_ORDER:
            assert rule.next_state(left, center, right) == 1

    def test_output_column_matches_table(self):
        column = RULE_30.output_column()
        assert column.tolist() == [row[3] for row in RULE_30.as_table()]


class TestTableI:
    """Table I of the paper is exactly the Rule 30 truth table."""

    def test_rule30_reproduces_paper_table(self):
        assert tuple(RULE_30.as_table()) == PAPER_TABLE_I

    def test_paper_table_ns_column(self):
        assert RULE_30.output_column().tolist() == [0, 0, 0, 1, 1, 1, 1, 0]

    def test_rule_number_recovered_from_table(self):
        """Reading the NS column as a binary number in neighbourhood order gives 30."""
        number = 0
        for left, center, right, next_state in RULE_30.as_table():
            index = (left << 2) | (center << 1) | right
            number |= next_state << index
        assert number == 30

    def test_as_dict_consistent_with_table(self):
        table = {(l, s, r): ns for l, s, r, ns in RULE_30.as_table()}
        assert RULE_30.as_dict() == table


class TestVectorisedApply:
    def test_apply_matches_scalar_next_state(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 2, 200).astype(np.uint8)
        center = rng.integers(0, 2, 200).astype(np.uint8)
        right = rng.integers(0, 2, 200).astype(np.uint8)
        vectorised = RULE_30.apply(left, center, right)
        scalar = [
            RULE_30.next_state(int(l), int(c), int(r)) for l, c, r in zip(left, center, right)
        ]
        assert vectorised.tolist() == scalar

    @pytest.mark.parametrize("rule", [RULE_30, RULE_90, RULE_110])
    def test_apply_output_is_binary(self, rule):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, (3, 500)).astype(np.uint8)
        out = rule.apply(bits[0], bits[1], bits[2])
        assert set(np.unique(out)).issubset({0, 1})


class TestRuleProperties:
    def test_rule90_is_xor_of_neighbours(self):
        for left, center, right in NEIGHBORHOOD_ORDER:
            assert RULE_90.next_state(left, center, right) == left ^ right

    def test_rule30_is_left_xor_center_or_right(self):
        """The gate-level identity used by the Fig. 3 cell."""
        for left, center, right in NEIGHBORHOOD_ORDER:
            assert RULE_30.next_state(left, center, right) == left ^ (center | right)

    def test_rule90_is_legal_rule30_is_not(self):
        assert RULE_90.is_legal
        assert not RULE_30.is_legal
