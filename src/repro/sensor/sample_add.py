"""The 'Sample & Add' chain: per-column accumulation and the final adder.

Each column terminates in a 'Sample & Add' block (Fig. 2): every time a pixel
pulse arrives, the 8-bit global counter is sampled and added to the column's
running sum.  After the 256-clock conversion window the column holds a 14-bit
word (up to 64 pixel values of 8 bits each); the 64 column sums are then
added into the 20-bit compressed sample.  The bit widths here are exactly
Eq. (1) and the module enforces them, so any configuration that would clip is
caught rather than silently wrapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.bitops import bit_width
from repro.utils.validation import check_positive


class AccumulatorOverflowError(RuntimeError):
    """Raised when an accumulator receives a value its register cannot hold."""


@dataclass
class ColumnAccumulator:
    """Per-column sample-and-add register.

    Attributes
    ----------
    n_bits:
        Register width; 14 bits for 64 rows of 8-bit codes (Eq. 1 applied to
        a single column).
    strict:
        When true (default) an addition that would overflow raises
        :class:`AccumulatorOverflowError`; when false the value saturates,
        which is what a defensively-designed digital block would do.
    """

    n_bits: int = 14
    strict: bool = True
    _value: int = field(default=0, repr=False)
    _n_samples: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive("n_bits", self.n_bits)

    @property
    def value(self) -> int:
        """Current accumulated sum."""
        return self._value

    @property
    def n_samples(self) -> int:
        """Number of codes added since the last reset."""
        return self._n_samples

    @property
    def max_value(self) -> int:
        """Largest value the register can hold."""
        return (1 << self.n_bits) - 1

    def reset(self) -> None:
        """Clear the register (start of a new compressed sample)."""
        self._value = 0
        self._n_samples = 0

    def add(self, code: int) -> int:
        """Add one sampled counter code to the running sum."""
        code = int(code)
        if code < 0:
            raise ValueError(f"sampled codes are unsigned, got {code}")
        total = self._value + code
        if total > self.max_value:
            if self.strict:
                raise AccumulatorOverflowError(
                    f"column accumulator of {self.n_bits} bits overflowed: "
                    f"{self._value} + {code} > {self.max_value}"
                )
            total = self.max_value
        self._value = total
        self._n_samples += 1
        return self._value

    def add_many(self, codes: Iterable[int]) -> int:
        """Add a sequence of codes and return the final sum."""
        for code in codes:
            self.add(code)
        return self._value


@dataclass
class SampleAndAdd:
    """The full read-out adder tree: one accumulator per column plus the final adder.

    Attributes
    ----------
    n_columns:
        Number of columns in the array.
    column_bits:
        Width of each per-column accumulator (14 for the prototype).
    sample_bits:
        Width of the final compressed-sample register — Eq. (1) (20 for the
        prototype).
    strict:
        Overflow behaviour, forwarded to the column accumulators.
    """

    n_columns: int = 64
    column_bits: int = 14
    sample_bits: int = 20
    strict: bool = True
    _columns: list[ColumnAccumulator] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        check_positive("n_columns", self.n_columns)
        check_positive("column_bits", self.column_bits)
        check_positive("sample_bits", self.sample_bits)
        self._columns = [
            ColumnAccumulator(n_bits=self.column_bits, strict=self.strict)
            for _ in range(self.n_columns)
        ]

    @property
    def column_sums(self) -> np.ndarray:
        """Current contents of the per-column accumulators."""
        return np.array([column.value for column in self._columns], dtype=np.int64)

    def reset(self) -> None:
        """Clear every column accumulator (start of a new compressed sample)."""
        for column in self._columns:
            column.reset()

    def add_code(self, column: int, code: int) -> int:
        """Route one sampled code to its column accumulator."""
        if not 0 <= column < self.n_columns:
            raise ValueError(f"column {column} outside 0..{self.n_columns - 1}")
        return self._columns[column].add(code)

    def compressed_sample(self) -> int:
        """Add the column sums into the final compressed-sample word."""
        total = int(self.column_sums.sum())
        max_value = (1 << self.sample_bits) - 1
        if total > max_value:
            if self.strict:
                raise AccumulatorOverflowError(
                    f"compressed-sample register of {self.sample_bits} bits overflowed: "
                    f"{total} > {max_value}"
                )
            total = max_value
        return total

    def accumulate_events(self, events: Sequence) -> int:
        """Accumulate a full compressed sample from annotated pixel events.

        ``events`` are :class:`~repro.pixel.event.PixelEvent` instances whose
        ``sampled_code`` has been filled in by the TDC.
        """
        self.reset()
        for event in events:
            if event.sampled_code is None:
                raise ValueError("events must carry a sampled_code before accumulation")
            self.add_code(event.col, event.sampled_code)
        return self.compressed_sample()


def fold_column_sums(
    column_sums: np.ndarray,
    *,
    column_bits: int,
    sample_bits: int,
    strict: bool = True,
) -> np.ndarray:
    """Batched read-out adder tree: per-column sums in, compressed samples out.

    ``column_sums`` has shape ``(n_samples, n_columns)`` — the already
    accumulated per-column code totals of a whole frame.  The same Eq. (1)
    bit-width discipline as the scalar :class:`SampleAndAdd` is enforced:
    because sampled codes are non-negative, a column accumulator overflows at
    some point during a sample iff its final sum exceeds the register, so the
    check on the folded arrays is equivalent to the per-addition check.
    """
    check_positive("column_bits", column_bits)
    check_positive("sample_bits", sample_bits)
    column_sums = np.asarray(column_sums, dtype=np.int64)
    if column_sums.ndim != 2:
        raise ValueError("column_sums must have shape (n_samples, n_columns)")
    column_max = (1 << int(column_bits)) - 1
    sample_max = (1 << int(sample_bits)) - 1
    if strict and column_sums.size and column_sums.max() > column_max:
        sample, column = np.argwhere(column_sums > column_max)[0]
        raise AccumulatorOverflowError(
            f"column accumulator of {column_bits} bits overflowed: column "
            f"{column} of sample {sample} holds {column_sums[sample, column]} "
            f"> {column_max}"
        )
    column_sums = np.minimum(column_sums, column_max)
    samples = column_sums.sum(axis=1)
    if strict and samples.size and samples.max() > sample_max:
        sample = int(np.argmax(samples > sample_max))
        raise AccumulatorOverflowError(
            f"compressed-sample register of {sample_bits} bits overflowed: "
            f"{samples[sample]} > {sample_max}"
        )
    return np.minimum(samples, sample_max)


def required_sample_bits(n_pixels: int, pixel_bits: int) -> int:
    """Eq. (1): bits needed for a compressed sample over ``n_pixels`` pixels."""
    check_positive("n_pixels", n_pixels)
    check_positive("pixel_bits", pixel_bits)
    return bit_width(n_pixels * ((1 << pixel_bits) - 1))
